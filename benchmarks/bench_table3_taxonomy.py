"""Table 3 — taxonomy of the six SpMSpM dataflow variants.

Static property table: loop order, stationary/streaming tensors, operand
formats and intersection/merging style for each dataflow, as encoded in
:mod:`repro.dataflows.base`.
"""

from conftest import run_once

from repro.dataflows import DATAFLOW_PROPERTIES, Dataflow
from repro.metrics import format_table
from repro.sparse import Layout


def bench_table3_dataflow_taxonomy(benchmark, session):
    figure = run_once(benchmark, session.figure, "table3")
    rows = figure.rows
    print()
    print(format_table(rows, title=figure.title))

    assert len(rows) == 6
    # Spot-check the paper's rows.
    assert DATAFLOW_PROPERTIES[Dataflow.IP_M].b_format is Layout.CSC
    assert DATAFLOW_PROPERTIES[Dataflow.GUST_M].merging == "Fiber(M)"
    assert DATAFLOW_PROPERTIES[Dataflow.OP_N].c_format is Layout.CSC
