"""Table 3 — taxonomy of the six SpMSpM dataflow variants.

Static property table: loop order, stationary/streaming tensors, operand
formats and intersection/merging style for each dataflow, as encoded in
:mod:`repro.dataflows.base`.
"""

from conftest import run_once

from repro.dataflows import DATAFLOW_PROPERTIES, Dataflow, taxonomy_table
from repro.metrics import format_table
from repro.sparse import Layout


def bench_table3_dataflow_taxonomy(benchmark, settings):
    rows = run_once(benchmark, taxonomy_table)
    print()
    print(format_table(rows, title="Table 3 — dataflow taxonomy"))

    assert len(rows) == 6
    # Spot-check the paper's rows.
    assert DATAFLOW_PROPERTIES[Dataflow.IP_M].b_format is Layout.CSC
    assert DATAFLOW_PROPERTIES[Dataflow.GUST_M].merging == "Fiber(M)"
    assert DATAFLOW_PROPERTIES[Dataflow.OP_N].c_format is Layout.CSC
