"""Fig. 13 — layer-wise speed-up of the four designs on the nine Table 6 layers.

Prints, per layer and design, the speed-up relative to the SIGMA-like design
and the fraction of time spent in the multiplying vs merging phases (the
stacked bars of the original figure), then checks the grouping the paper
reports: the first three layers favour IP, the last three favour Gustavson,
and Flexagon always performs within a small tolerance of the best design.
"""

from conftest import run_once

from repro.metrics import format_table

IP_FRIENDLY = ("SQ5", "SQ11", "R4")
GUST_FRIENDLY = ("MB215", "V7", "A2")


def bench_fig13_layerwise_speedup(benchmark, session):
    figure = run_once(benchmark, session.figure, "fig13")
    rows = figure.rows
    print()
    print(format_table(
        rows,
        columns=["layer", "design", "dataflow", "speedup_vs_sigma",
                 "mult_fraction", "merge_fraction"],
        title=figure.title,
    ))

    by_layer = {}
    for row in rows:
        by_layer.setdefault(row["layer"], {})[row["design"]] = row

    # Grouping claim: IP wins its group, Gustavson wins its group.
    for layer in IP_FRIENDLY:
        cells = by_layer[layer]
        assert cells["SIGMA-like"]["speedup_vs_sigma"] >= max(
            cells["SpArch-like"]["speedup_vs_sigma"],
            cells["GAMMA-like"]["speedup_vs_sigma"],
        )
    for layer in GUST_FRIENDLY:
        cells = by_layer[layer]
        assert cells["GAMMA-like"]["speedup_vs_sigma"] >= max(
            cells["SIGMA-like"]["speedup_vs_sigma"],
            cells["SpArch-like"]["speedup_vs_sigma"],
        )

    # Flexagon reaches (or nearly reaches) the best design on every layer.
    for layer, cells in by_layer.items():
        best = max(cells[d]["speedup_vs_sigma"] for d in cells if d != "Flexagon")
        assert cells["Flexagon"]["speedup_vs_sigma"] >= 0.9 * best, layer

    # The Inner-Product design never spends time merging.
    for layer, cells in by_layer.items():
        assert cells["SIGMA-like"]["merge_fraction"] == 0.0
