"""Table 6 — the nine representative DNN layers selected for the layer-wise study."""

from conftest import run_once

from repro.metrics import format_table
from repro.workloads.representative import TABLE6_COMPRESSED_KIB


def bench_table6_representative_layers(benchmark, session):
    rows = run_once(benchmark, session.figure, "table6").rows
    for row in rows:
        paper = TABLE6_COMPRESSED_KIB[row["layer"]]
        row["paper csA/csB/csC (KiB)"] = f"{paper[0]}/{paper[1]}/{paper[2]}"
    print()
    print(format_table(rows, title="Table 6 — representative DNN layers"))

    assert [row["layer"] for row in rows] == [
        "SQ5", "SQ11", "R4", "R6", "S-R3", "V0", "MB215", "V7", "A2",
    ]
    # The reconstructed compressed sizes should be the same order of magnitude
    # as the paper's (they are synthetic matrices with the same shape/sparsity).
    for row in rows:
        paper_cs_b = TABLE6_COMPRESSED_KIB[row["layer"]][1]
        assert 0.2 * paper_cs_b <= row["csB(KiB)"] <= 5.0 * paper_cs_b
