"""Table 2 — the DNN models used in the evaluation.

Prints, for each of the eight models, the layer count, average sparsities,
compressed-size statistics of the reconstructed layers and the CPU-baseline
cycles (both the paper's reported number and this model's estimate on the
sampled, scaled chain).
"""

from conftest import run_once

from repro.metrics import format_table
from repro.workloads import MODEL_REGISTRY


def bench_table2_model_statistics(benchmark, session):
    figure = run_once(benchmark, session.figure, "table2")
    rows = figure.rows
    print()
    print(format_table(rows, title=figure.title))

    assert len(rows) == 8
    expected_layers = {"A": 7, "SQ": 26, "V": 8, "R": 54, "S-R": 37, "S-M": 29,
                       "DB": 36, "MB": 316}
    for short, model in MODEL_REGISTRY.items():
        assert model.num_layers == expected_layers[short]
