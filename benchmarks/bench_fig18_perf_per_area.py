"""Fig. 18 — performance / area of the four designs over the eight models."""

from conftest import run_once

from repro.metrics import format_table


def bench_fig18_performance_per_area(benchmark, session):
    figure = run_once(benchmark, session.figure, "fig18")
    rows = figure.rows
    print()
    print(format_table(rows, title=figure.title))

    geomean = next(row for row in rows if row["model"] == "GEOMEAN")
    per_model = [row for row in rows if row["model"] != "GEOMEAN"]

    # The paper's headline: Flexagon achieves the best average
    # performance/area compromise among the four designs.
    assert geomean["Flexagon"] > geomean["SIGMA-like"]
    assert geomean["Flexagon"] > geomean["SpArch-like"] * 0.95
    # On at least one NLP-style model a fixed Gustavson design may edge out
    # Flexagon (the paper observes this for DistilBERT/MobileBERT), but
    # Flexagon must stay competitive on every model.
    for row in per_model:
        best = max(row[d] for d in ("SIGMA-like", "SpArch-like", "GAMMA-like"))
        assert row["Flexagon"] >= 0.75 * best, row["model"]
