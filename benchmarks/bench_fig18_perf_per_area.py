"""Fig. 18 — performance / area of the four designs over the eight models."""

from conftest import run_once

from repro.experiments import performance_per_area_rows, run_end_to_end
from repro.metrics import format_table


def bench_fig18_performance_per_area(benchmark, settings):
    results = run_once(benchmark, run_end_to_end, settings)
    rows = performance_per_area_rows(results)
    print()
    print(format_table(
        rows, title="Fig. 18 — performance/area normalised to SIGMA-like",
    ))

    geomean = next(row for row in rows if row["model"] == "GEOMEAN")
    per_model = [row for row in rows if row["model"] != "GEOMEAN"]

    # The paper's headline: Flexagon achieves the best average
    # performance/area compromise among the four designs.
    assert geomean["Flexagon"] > geomean["SIGMA-like"]
    assert geomean["Flexagon"] > geomean["SpArch-like"] * 0.95
    # On at least one NLP-style model a fixed Gustavson design may edge out
    # Flexagon (the paper observes this for DistilBERT/MobileBERT), but
    # Flexagon must stay competitive on every model.
    for row in per_model:
        best = max(row[d] for d in ("SIGMA-like", "SpArch-like", "GAMMA-like"))
        assert row["Flexagon"] >= 0.75 * best, row["model"]
