"""Shared fixtures for the benchmark harness.

Every benchmark uses the same :class:`ExperimentSettings`, so the expensive
layer-wise and end-to-end simulations are executed once per pytest session
(the experiment functions cache per settings object) and the individual
benchmark files only slice and print their figure's rows.

Environment knobs:

* ``REPRO_FULL_SCALE=1`` — run the full-size (unscaled) layers.  Only do this
  with a lot of patience; the default scaled runs preserve the trends.
* ``REPRO_MAX_DENSE_MACS`` — override the per-layer dense-MAC budget used to
  pick the scale factor (default used by the benches: 2e6).
* ``REPRO_MAX_LAYERS`` — cap on simulated layers per model (default 8).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import default_settings

#: Defaults tuned so the whole benchmark suite completes in a few minutes.
_BENCH_MAC_BUDGET = float(os.environ.get("REPRO_MAX_DENSE_MACS", 2e6))
_BENCH_MAX_LAYERS = int(os.environ.get("REPRO_MAX_LAYERS", 8))


@pytest.fixture(scope="session")
def settings():
    """Experiment settings shared by every benchmark in the session."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return default_settings(max_layers_per_model=_BENCH_MAX_LAYERS)
    return default_settings(
        max_dense_macs=_BENCH_MAC_BUDGET, max_layers_per_model=_BENCH_MAX_LAYERS
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations (not microbenchmarks), so a
    single round is both sufficient and necessary to keep the suite fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
