"""Shared fixtures for the benchmark harness.

Every benchmark drives the public :class:`repro.api.Session` facade over the
same :class:`ExperimentSettings`: the expensive layer-wise and end-to-end
grids are executed once per pytest session (fanned out over a process pool),
persisted in the runtime's on-disk result cache, and the individual benchmark
files only ask the session for their figure's rows.  A second benchmark
invocation with the same settings therefore re-simulates nothing — it is
answered entirely from the cache (run ``python -m repro cache stats`` to
inspect it).

Environment knobs:

* ``REPRO_FULL_SCALE=1`` — run the full-size (unscaled) layers.  Only do this
  with a lot of patience; the default scaled runs preserve the trends.
* ``REPRO_MAX_DENSE_MACS`` — override the per-layer dense-MAC budget used to
  pick the scale factor (default used by the benches: 2e6).
* ``REPRO_MAX_LAYERS`` — cap on simulated layers per model (default 8).
* ``REPRO_WORKERS`` / ``REPRO_PARALLEL=0`` — process-pool width / force the
  serial executor (see :mod:`repro.runtime.runner`).
* ``REPRO_CACHE_DIR`` / ``REPRO_CACHE=0`` — result-cache directory / disable
  the persistent cache (see :mod:`repro.runtime.cache`).
"""

from __future__ import annotations

import os

import pytest

from repro.api import shared_session
from repro.experiments import default_settings
from repro.runtime import default_runner

#: Defaults tuned so the whole benchmark suite completes in a few minutes.
_BENCH_MAC_BUDGET = float(os.environ.get("REPRO_MAX_DENSE_MACS", 2e6))
_BENCH_MAX_LAYERS = int(os.environ.get("REPRO_MAX_LAYERS", 8))


@pytest.fixture(scope="session")
def settings():
    """Experiment settings shared by every benchmark in the session."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return default_settings(max_layers_per_model=_BENCH_MAX_LAYERS)
    return default_settings(
        max_dense_macs=_BENCH_MAC_BUDGET, max_layers_per_model=_BENCH_MAX_LAYERS
    )


@pytest.fixture(scope="session")
def session(settings):
    """The shared :class:`repro.api.Session` every benchmark submits through.

    Backed by the process-wide runner, so the end-to-end and layer-wise grids
    run (at most) once per pytest session and each figure benchmark only
    slices rows out of the memoized results.
    """
    return shared_session(settings)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Report what the simulation runtime did for this benchmark session."""
    from repro.engine_vec import resolve_engine_backend

    runner = default_runner()
    stats = runner.stats
    if stats.submitted == 0:
        return
    terminalreporter.write_sep("-", "repro.runtime job summary")
    terminalreporter.write_line(
        "   ".join(f"{name}: {value}" for name, value in stats.as_row().items())
    )
    executor = (
        f"parallel x{runner.max_workers} ({runner.pool_mode} pool, "
        f"{runner.schedule} schedule)"
        if runner.parallel
        else "serial"
    )
    terminalreporter.write_line(
        f"executor: {executor}"
        # BENCH trajectories must be attributable to the backend that
        # produced them (REPRO_ENGINE; both backends are bit-equivalent).
        + f"   engine backend: {resolve_engine_backend()}"
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations (not microbenchmarks), so a
    single round is both sufficient and necessary to keep the suite fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
