"""Ablation — streaming-cache capacity sweep (design decision from DESIGN.md).

Sweeps the STR cache size on a layer whose streaming operand is larger than
the smallest cache and shows the crossover the paper's Section 5.2 explains:
the Gustavson design's miss rate (and hence runtime) improves sharply once
the streaming matrix fits, while the Outer-Product design — which reads the
streaming matrix exactly once — is largely insensitive.
"""

from conftest import run_once

from repro.accelerators import GammaLikeAccelerator, SparchLikeAccelerator
from repro.arch.config import default_config
from repro.metrics import format_table
from repro.workloads import get_representative_layer, materialize_layer

CACHE_SIZES_KIB = (8, 32, 128, 512)


def _sweep():
    spec = get_representative_layer("R6")
    a, b = materialize_layer(spec, scale=0.2)
    rows = []
    for size_kib in CACHE_SIZES_KIB:
        config = default_config(
            num_multipliers=16,
            distribution_bandwidth=4,
            reduction_bandwidth=4,
            str_cache_bytes=size_kib * 1024,
        )
        gamma = GammaLikeAccelerator(config).run_layer(a, b)
        sparch = SparchLikeAccelerator(config).run_layer(a, b)
        rows.append(
            {
                "cache_kib": size_kib,
                "gamma_cycles": gamma.total_cycles,
                "gamma_miss_pct": 100 * gamma.str_cache_miss_rate,
                "sparch_cycles": sparch.total_cycles,
                "sparch_miss_pct": 100 * sparch.str_cache_miss_rate,
            }
        )
    return rows


def bench_ablation_str_cache_size(benchmark, settings):
    rows = run_once(benchmark, _sweep)
    print()
    print(format_table(rows, title="Ablation — STR cache capacity sweep (layer R6)"))

    # Gustavson gets monotonically (weakly) faster with more cache...
    gamma_cycles = [row["gamma_cycles"] for row in rows]
    assert gamma_cycles[0] >= gamma_cycles[-1]
    # ...and its miss rate shrinks substantially across the sweep.
    assert rows[0]["gamma_miss_pct"] > rows[-1]["gamma_miss_pct"]
    # The Outer-Product design is far less sensitive to the cache size.
    sparch_cycles = [row["sparch_cycles"] for row in rows]
    sparch_span = max(sparch_cycles) / min(sparch_cycles)
    gamma_span = max(gamma_cycles) / min(gamma_cycles)
    assert sparch_span <= gamma_span
