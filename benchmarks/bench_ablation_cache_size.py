"""Ablation — streaming-cache capacity sweep (design decision from DESIGN.md).

Sweeps the STR cache size on a layer whose streaming operand is larger than
the smallest cache and shows the crossover the paper's Section 5.2 explains:
the Gustavson design's miss rate (and hence runtime) improves sharply once
the streaming matrix fits, while the Outer-Product design — which reads the
streaming matrix exactly once — is largely insensitive.

Each capacity point is a declarative :class:`repro.api.SweepSpec` (a design
grid plus configuration overrides and a pinned operand scale), so the jobs
run through the session's batched runner and repeat invocations are answered
from the persistent result cache.
"""

from conftest import run_once

from repro.api import SweepSpec
from repro.metrics import format_table

CACHE_SIZES_KIB = (8, 32, 128, 512)


def _sweep(session):
    rows = []
    for size_kib in CACHE_SIZES_KIB:
        spec = SweepSpec(
            layers="R6",
            designs=("GAMMA-like", "SpArch-like"),
            scale=0.2,
            config_overrides={
                "num_multipliers": 16,
                "distribution_bandwidth": 4,
                "reduction_bandwidth": 4,
                "str_cache_bytes": size_kib * 1024,
            },
        )
        by_design = {row["design"]: row for row in session.sweep(spec).rows}
        gamma, sparch = by_design["GAMMA-like"], by_design["SpArch-like"]
        rows.append(
            {
                "cache_kib": size_kib,
                "gamma_cycles": gamma["cycles"],
                "gamma_miss_pct": gamma["miss_rate_pct"],
                "sparch_cycles": sparch["cycles"],
                "sparch_miss_pct": sparch["miss_rate_pct"],
            }
        )
    return rows


def bench_ablation_str_cache_size(benchmark, session):
    rows = run_once(benchmark, _sweep, session)
    print()
    print(format_table(rows, title="Ablation — STR cache capacity sweep (layer R6)"))

    # Gustavson gets monotonically (weakly) faster with more cache...
    gamma_cycles = [row["gamma_cycles"] for row in rows]
    assert gamma_cycles[0] >= gamma_cycles[-1]
    # ...and its miss rate shrinks substantially across the sweep.
    assert rows[0]["gamma_miss_pct"] > rows[-1]["gamma_miss_pct"]
    # The Outer-Product design is far less sensitive to the cache size.
    sparch_cycles = [row["sparch_cycles"] for row in rows]
    sparch_span = max(sparch_cycles) / min(sparch_cycles)
    gamma_span = max(gamma_cycles) / min(gamma_cycles)
    assert sparch_span <= gamma_span
