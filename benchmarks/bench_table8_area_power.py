"""Table 8 — post-layout area and power of the four accelerator designs."""

import pytest
from conftest import run_once

from repro.metrics import format_table


def bench_table8_area_power(benchmark, session):
    figure = run_once(benchmark, session.figure, "table8")
    rows = figure.rows
    print()
    print(format_table(rows, title=figure.title))

    by_design = {row["design"]: row for row in rows}
    # The paper's headline overheads: Flexagon is ~25% / ~3% / ~14% larger than
    # the SIGMA-like, SpArch-like and GAMMA-like designs respectively.
    flexagon = by_design["Flexagon"]["Total (mm2)"]
    assert flexagon / by_design["SIGMA-like"]["Total (mm2)"] == pytest.approx(1.25, abs=0.04)
    assert flexagon / by_design["SpArch-like"]["Total (mm2)"] == pytest.approx(1.03, abs=0.04)
    assert flexagon / by_design["GAMMA-like"]["Total (mm2)"] == pytest.approx(1.14, abs=0.04)
    # The memory structures dominate the area of every design.
    for row in rows:
        sram = row["Cache (mm2)"] + row["PSRAM (mm2)"]
        assert sram > 0.7 * row["Total (mm2)"]
