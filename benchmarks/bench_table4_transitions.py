"""Table 4 — inter-layer dataflow transitions that avoid explicit conversions.

Reproduces the 6x6 legality matrix: rows are the dataflow of layer i (which
fixes the layout its output is produced in), columns the dataflow of layer
i+1 (which fixes the layout it needs its activations in); ``ok`` marks
transitions that need no explicit format conversion.
"""

from conftest import run_once

from repro.dataflows import Dataflow, transition_table
from repro.metrics import format_table


def bench_table4_transition_matrix(benchmark, settings):
    table = run_once(benchmark, transition_table)
    rows = table.as_rows()
    print()
    print(format_table(rows, title="Table 4 — transitions without explicit conversion"))

    # Structural property the paper highlights: every dataflow has exactly
    # three conversion-free successors (and three that need an EC).
    for previous in Dataflow:
        assert len(table.allowed_without_conversion(previous)) == 3
