"""Ablation — tick-level MRN micro-simulation vs the closed-form cycle model.

The accelerator engine charges ``inputs / bandwidth + tree depth`` cycles for
a merge pass (Section "Simulation fidelity model" of DESIGN.md).  This
ablation merges randomly generated partial-sum fibers on the tick-level MRN
micro-simulator and compares the measured cycles against that closed form,
checking the engine's assumption holds within a small factor.
"""

from conftest import run_once

from repro.arch.mrn import MergerReductionNetwork, merge_cycles
from repro.metrics import format_table
from repro.sparse import random_sparse


def _compare():
    rows = []
    for leaves, nnz_cols, density in ((8, 64, 0.4), (16, 128, 0.3), (16, 256, 0.15)):
        matrix = random_sparse(leaves, nnz_cols, density, seed=leaves * nnz_cols)
        fibers = [matrix.fiber(i) for i in range(leaves)]
        mrn = MergerReductionNetwork(leaves)
        merged, measured = mrn.merge(fibers)
        total_inputs = sum(f.nnz for f in fibers)
        # The micro-simulated tree emits one element per cycle at the root.
        predicted = merge_cycles(total_inputs, bandwidth=1, tree_depth=mrn.levels)
        rows.append(
            {
                "leaves": leaves,
                "input_elements": total_inputs,
                "output_elements": merged.nnz,
                "micro_sim_cycles": measured,
                "closed_form_cycles": predicted,
                "ratio": measured / predicted if predicted else 0.0,
            }
        )
    return rows


def bench_ablation_mrn_cycle_model(benchmark, settings):
    rows = run_once(benchmark, _compare)
    print()
    print(format_table(rows, title="Ablation — MRN micro-simulation vs closed-form model"))

    for row in rows:
        # The closed form is a throughput bound on the *inputs*: queueing can
        # add a bounded constant factor above it, while heavy accumulation
        # (many equal coordinates combining inside the tree) lets the
        # micro-simulated tree retire more than one input per root emission,
        # landing below it.  Either way the two stay within a small factor.
        assert 0.2 <= row["ratio"] <= 4.0
        # Merging never loses elements.
        assert row["output_elements"] <= row["input_elements"]
