"""Fig. 15 — streaming-cache (STR) miss rate per layer and design."""

from conftest import run_once

from repro.metrics import format_table

#: Layers whose streaming operand is far larger than the cache (the paper's
#: OP-friendly group): the Gustavson design must show a clearly higher miss
#: rate than on the small-B layers.
LARGE_B_LAYERS = ("R6", "S-R3", "V0")
SMALL_B_LAYERS = ("MB215", "V7", "A2")


def bench_fig15_str_cache_miss_rate(benchmark, session):
    figure = run_once(benchmark, session.figure, "fig15")
    rows = figure.rows
    print()
    print(format_table(
        rows, title=figure.title,
        columns=["layer", "design", "miss_rate_pct", "accesses"],
    ))

    by_layer = {}
    for row in rows:
        by_layer.setdefault(row["layer"], {})[row["design"]] = row

    # Miss rates are small in absolute terms (the paper's axis tops out at 3.5%).
    for row in rows:
        assert row["miss_rate_pct"] <= 25.0

    # GAMMA-like suffers markedly more misses when B does not fit the cache
    # than when it does (the paper's explanation for the OP-friendly group).
    gamma_large = sum(by_layer[l]["GAMMA-like"]["miss_rate_pct"] for l in LARGE_B_LAYERS)
    gamma_small = sum(by_layer[l]["GAMMA-like"]["miss_rate_pct"] for l in SMALL_B_LAYERS)
    assert gamma_large > gamma_small
