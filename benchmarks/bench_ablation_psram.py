"""Ablation — PSRAM capacity sweep (design decision from DESIGN.md).

The Outer-Product dataflow holds every partial sum on chip until the merging
phase; when the PSRAM is too small the excess spills to DRAM and the merging
phase becomes memory-bound.  The sweep shows the spill volume and merge-phase
time shrinking as the PSRAM grows, while an Inner-Product execution of the
same layer is completely insensitive (it never produces partial sums).
"""

from conftest import run_once

from repro.accelerators import SigmaLikeAccelerator, SparchLikeAccelerator
from repro.arch.config import default_config
from repro.metrics import format_table
from repro.workloads import get_representative_layer, materialize_layer

PSRAM_SIZES_KIB = (4, 16, 64, 256)


def _sweep():
    spec = get_representative_layer("R6")
    a, b = materialize_layer(spec, scale=0.15)
    rows = []
    for size_kib in PSRAM_SIZES_KIB:
        config = default_config(
            num_multipliers=16,
            distribution_bandwidth=4,
            reduction_bandwidth=4,
            str_cache_bytes=64 * 1024,
            psram_bytes=size_kib * 1024,
        )
        sparch = SparchLikeAccelerator(config).run_layer(a, b)
        sigma = SigmaLikeAccelerator(config).run_layer(a, b)
        rows.append(
            {
                "psram_kib": size_kib,
                "op_merge_cycles": sparch.cycles.merging,
                "op_spill_kb": sparch.dram.psum_spill_bytes / 1e3,
                "op_total_cycles": sparch.total_cycles,
                "ip_total_cycles": sigma.total_cycles,
            }
        )
    return rows


def bench_ablation_psram_capacity(benchmark, settings):
    rows = run_once(benchmark, _sweep)
    print()
    print(format_table(rows, title="Ablation — PSRAM capacity sweep (layer R6, OP dataflow)"))

    # Spills shrink monotonically as the PSRAM grows.
    spills = [row["op_spill_kb"] for row in rows]
    assert all(a >= b for a, b in zip(spills, spills[1:]))
    assert spills[0] > spills[-1]
    # The Inner-Product design does not care about the PSRAM at all.
    ip_cycles = {row["ip_total_cycles"] for row in rows}
    assert len(ip_cycles) == 1
