"""Ablation — PSRAM capacity sweep (design decision from DESIGN.md).

The Outer-Product dataflow holds every partial sum on chip until the merging
phase; when the PSRAM is too small the excess spills to DRAM and the merging
phase becomes memory-bound.  The sweep shows the spill volume and merge-phase
time shrinking as the PSRAM grows, while an Inner-Product execution of the
same layer is completely insensitive (it never produces partial sums).

Each capacity point is a declarative :class:`repro.api.SweepSpec`, so the
jobs run through the session's batched runner and repeat invocations are
answered from the persistent result cache.
"""

from conftest import run_once

from repro.api import SweepSpec
from repro.metrics import format_table

PSRAM_SIZES_KIB = (4, 16, 64, 256)


def _sweep(session):
    rows = []
    for size_kib in PSRAM_SIZES_KIB:
        spec = SweepSpec(
            layers="R6",
            designs=("SpArch-like", "SIGMA-like"),
            scale=0.15,
            config_overrides={
                "num_multipliers": 16,
                "distribution_bandwidth": 4,
                "reduction_bandwidth": 4,
                "str_cache_bytes": 64 * 1024,
                "psram_bytes": size_kib * 1024,
            },
        )
        by_design = {row["design"]: row for row in session.sweep(spec).rows}
        sparch, sigma = by_design["SpArch-like"], by_design["SIGMA-like"]
        rows.append(
            {
                "psram_kib": size_kib,
                "op_merge_cycles": sparch["merging_cycles"],
                "op_spill_kb": sparch["psum_spill_bytes"] / 1e3,
                "op_total_cycles": sparch["cycles"],
                "ip_total_cycles": sigma["cycles"],
            }
        )
    return rows


def bench_ablation_psram_capacity(benchmark, session):
    rows = run_once(benchmark, _sweep, session)
    print()
    print(format_table(rows, title="Ablation — PSRAM capacity sweep (layer R6, OP dataflow)"))

    # Spills shrink monotonically as the PSRAM grows.
    spills = [row["op_spill_kb"] for row in rows]
    assert all(a >= b for a, b in zip(spills, spills[1:]))
    assert spills[0] > spills[-1]
    # The Inner-Product design does not care about the PSRAM at all.
    ip_cycles = {row["ip_total_cycles"] for row in rows}
    assert len(ip_cycles) == 1
