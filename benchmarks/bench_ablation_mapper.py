"""Ablation — heuristic mapper vs oracle dataflow selection.

The paper leaves the mapper/compiler as future work and evaluates Flexagon
with the best dataflow per layer.  This ablation quantifies how close the
closed-form heuristic mapper gets to the oracle (exhaustive simulation) on
the nine representative layers.
"""

from conftest import run_once

from repro.accelerators.engine import SpmspmEngine
from repro.core import HeuristicMapper, OracleMapper
from repro.metrics import format_table, geometric_mean
from repro.workloads.representative import REPRESENTATIVE_LAYERS
from repro.workloads.layers import materialize_layer


def _compare(settings):
    rows = []
    for spec in REPRESENTATIVE_LAYERS:
        scale = settings.layer_scale(spec)
        config = settings.scaled_config(scale)
        a, b = materialize_layer(spec, scale=scale)
        engine = SpmspmEngine(config)
        heuristic_choice = HeuristicMapper(config).select(a, b)
        oracle_choice = OracleMapper(config).select(a, b)
        heuristic_cycles = engine.run_layer(heuristic_choice, a, b).total_cycles
        oracle_cycles = engine.run_layer(oracle_choice, a, b).total_cycles
        rows.append(
            {
                "layer": spec.name,
                "heuristic": heuristic_choice.name,
                "oracle": oracle_choice.name,
                "heuristic_cycles": heuristic_cycles,
                "oracle_cycles": oracle_cycles,
                "slowdown_vs_oracle": heuristic_cycles / oracle_cycles,
            }
        )
    return rows


def bench_ablation_mapper_quality(benchmark, settings):
    rows = run_once(benchmark, _compare, settings)
    print()
    print(format_table(rows, title="Ablation — heuristic vs oracle dataflow selection"))

    slowdowns = [row["slowdown_vs_oracle"] for row in rows]
    # The heuristic never beats the oracle (by definition)...
    assert all(s >= 0.999 for s in slowdowns)
    # ...and stays within 2x of it on average on the representative layers.
    assert geometric_mean(slowdowns) < 2.0
    # It picks the oracle-best family on most of the nine layers.
    family_matches = sum(
        1 for row in rows if row["heuristic"].split("_")[0] == row["oracle"].split("_")[0]
    )
    assert family_matches >= 5
