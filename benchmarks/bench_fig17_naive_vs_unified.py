"""Fig. 17 — unified MRN vs a naive design with three separate networks."""

import pytest
from conftest import run_once

from repro.metrics import format_table


def bench_fig17_naive_vs_unified(benchmark, session):
    figure = run_once(benchmark, session.figure, "fig17")
    rows = figure.rows
    print()
    print(format_table(rows, title=figure.title))

    by_design = {row["design"]: row for row in rows}
    flexagon = by_design["Flexagon"]
    naive = by_design["Naive"]

    # The three replicated networks alone add only a little datapath area...
    assert naive["datapath_mm2"] < 1.10 * flexagon["total_mm2"] - flexagon["sram_mm2"] + flexagon["datapath_mm2"]
    # ...but the muxes/demuxes push the naive design ~25% above Flexagon.
    assert naive["total_mm2"] / flexagon["total_mm2"] == pytest.approx(1.27, abs=0.08)
    assert naive["mux_demux_mm2"] > 0
    assert flexagon["mux_demux_mm2"] == 0
