"""Fig. 16 — off-chip traffic (STR cache <-> DRAM) per layer and design."""

from conftest import run_once

from repro.metrics import format_table

LARGE_B_LAYERS = ("R6", "S-R3", "V0")


def bench_fig16_offchip_traffic(benchmark, session):
    figure = run_once(benchmark, session.figure, "fig16")
    rows = figure.rows
    print()
    print(format_table(
        rows, title=figure.title,
        columns=["layer", "design", "offchip_kb", "total_dram_kb"],
    ))

    by_layer = {}
    for row in rows:
        by_layer.setdefault(row["layer"], {})[row["design"]] = row

    # On the large-B layers the GAMMA-like design refetches streaming data
    # from DRAM, moving more off-chip bytes than the SpArch-like design that
    # reads B exactly once (the 6.25x observation of Section 5.2, relaxed).
    for layer in LARGE_B_LAYERS:
        gamma = by_layer[layer]["GAMMA-like"]["offchip_kb"]
        sparch = by_layer[layer]["SpArch-like"]["offchip_kb"]
        assert gamma >= sparch * 0.9, layer

    # Off-chip traffic is never negative and Flexagon matches its chosen
    # dataflow's traffic (i.e. it is one of the three fixed designs' values).
    for layer, cells in by_layer.items():
        assert all(row["offchip_kb"] >= 0 for row in cells.values())
