"""Fig. 1 — the dataflow that obtains the best performance per layer.

The paper's motivating figure: for every layer of the eight DNN models, which
of the three dataflow families (IP, OP, Gust) executes fastest on a
64-multiplier substrate.  The reproduction prints, per model, how many of the
simulated layers favour each family and what Flexagon actually configured.
"""

from collections import Counter

from conftest import run_once

from repro.experiments import best_dataflow_per_layer_rows
from repro.metrics import format_table


def bench_fig01_best_dataflow_per_layer(benchmark, session):
    results = run_once(benchmark, session.end_to_end)
    rows = best_dataflow_per_layer_rows(results)

    summary = []
    for model in results.model_names():
        model_rows = [r for r in rows if r["model"] == model]
        wins = Counter(r["best"] for r in model_rows)
        flexagon = Counter(r["flexagon_choice"] for r in model_rows)
        summary.append(
            {
                "model": model,
                "layers": len(model_rows),
                "IP wins": wins.get("IP", 0),
                "OP wins": wins.get("OP", 0),
                "Gust wins": wins.get("Gust", 0),
                "Flexagon IP/OP/Gust": (
                    f"{flexagon.get('IP', 0)}/{flexagon.get('OP', 0)}/{flexagon.get('Gust', 0)}"
                ),
            }
        )
    print()
    print(format_table(summary, title="Fig. 1 — best dataflow per layer (simulated layers)"))

    # Sanity: every simulated layer has a winner and Flexagon made a choice.
    assert all(r["best"] in ("IP", "OP", "Gust") for r in rows)
    assert len(rows) == sum(results.sampled_layers.values())
