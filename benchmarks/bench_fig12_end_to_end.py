"""Fig. 12 — end-to-end speed-up over CPU MKL for the five designs x eight models.

The reproduction prints each design's speed-up (in wall-clock time) over the
CPU baseline, per model and as the geometric mean, and checks the paper's two
qualitative claims: no fixed-dataflow design wins everywhere, and Flexagon is
never beaten by any fixed-dataflow design.
"""

from conftest import run_once

from repro.metrics import format_table

FIXED_DESIGNS = ("SIGMA-like", "SpArch-like", "GAMMA-like")


def bench_fig12_end_to_end_speedup(benchmark, session):
    figure = run_once(benchmark, session.figure, "fig12")
    rows = figure.rows
    print()
    print(format_table(rows, title=figure.title + " (higher is better)"))

    per_model = [row for row in rows if row["model"] != "GEOMEAN"]
    geomean = next(row for row in rows if row["model"] == "GEOMEAN")

    # Claim 1: every accelerator is faster than the CPU on average.
    for design in FIXED_DESIGNS + ("Flexagon",):
        assert geomean[design] > 1.0

    # Claim 2: Flexagon is at least as fast as the best fixed design per model
    # (small tolerance: the sampled chains are approximations).
    for row in per_model:
        best_fixed = max(row[design] for design in FIXED_DESIGNS)
        assert row["Flexagon"] >= 0.95 * best_fixed, row["model"]

    # Claim 3: no single fixed-dataflow design is the best for every model.
    winners = {
        max(FIXED_DESIGNS, key=lambda design: row[design]) for row in per_model
    }
    assert len(winners) > 1
