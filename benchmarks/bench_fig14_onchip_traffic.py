"""Fig. 14 — on-chip memory traffic (STA / STR / psum) per layer and design."""

from conftest import run_once

from repro.metrics import format_table


def bench_fig14_onchip_traffic(benchmark, session):
    figure = run_once(benchmark, session.figure, "fig14")
    rows = figure.rows
    print()
    print(format_table(
        rows, title=figure.title,
        columns=["layer", "design", "sta_mb", "str_mb", "psum_mb", "total_mb"],
    ))

    by_layer = {}
    for row in rows:
        by_layer.setdefault(row["layer"], {})[row["design"]] = row

    for layer, cells in by_layer.items():
        # The stationary operand contributes little traffic (it is read once);
        # the bound is looser than the paper's "negligible" because scaling
        # shortens the streamed fibers and therefore shrinks the denominator.
        for design, row in cells.items():
            assert row["sta_mb"] <= 0.35 * row["total_mb"] + 1e-9, (layer, design)
        # The Inner-Product design never touches the PSRAM...
        assert cells["SIGMA-like"]["psum_mb"] == 0.0
        # ...while the Outer-Product design always pays partial-sum traffic.
        assert cells["SpArch-like"]["psum_mb"] > 0.0
        # Flexagon never moves more on-chip data than the worst fixed design.
        worst = max(
            cells[d]["total_mb"] for d in ("SIGMA-like", "SpArch-like", "GAMMA-like")
        )
        assert cells["Flexagon"]["total_mb"] <= worst * 1.01
