"""Unit and property tests for the fiber abstraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import Element, Fiber


def fiber_strategy(max_coord=64, max_len=20):
    """Hypothesis strategy producing valid (sorted, unique-coordinate) fibers."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=max_coord),
            st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
        ),
        max_size=max_len,
        unique_by=lambda t: t[0],
    ).map(lambda pairs: Fiber(sorted(pairs)))


class TestConstruction:
    def test_empty_fiber(self):
        f = Fiber()
        assert f.nnz == 0
        assert f.is_empty()
        assert list(f) == []

    def test_sorted_input_accepted(self):
        f = Fiber([(0, 1.0), (3, 2.0), (7, -1.5)])
        assert f.coords == [0, 3, 7]
        assert f.values == [1.0, 2.0, -1.5]

    def test_unsorted_input_rejected(self):
        with pytest.raises(ValueError):
            Fiber([(3, 1.0), (1, 2.0)])

    def test_duplicate_coordinate_rejected(self):
        with pytest.raises(ValueError):
            Fiber([(1, 1.0), (1, 2.0)])

    def test_sort_flag_sorts_and_accumulates(self):
        f = Fiber([(3, 1.0), (1, 2.0), (3, 4.0)], sort=True)
        assert f.coords == [1, 3]
        assert f.values == [2.0, 5.0]

    def test_from_dense_drops_zeros(self):
        f = Fiber.from_dense([0.0, 1.0, 0.0, -2.0])
        assert f.coords == [1, 3]
        assert f.values == [1.0, -2.0]

    def test_to_dense_roundtrip(self):
        dense = [0.0, 1.0, 0.0, -2.0, 0.0]
        assert Fiber.from_dense(dense).to_dense(5) == dense

    def test_to_dense_out_of_range(self):
        with pytest.raises(ValueError):
            Fiber([(4, 1.0)]).to_dense(3)


class TestAccessors:
    def test_value_at_present_and_absent(self):
        f = Fiber([(2, 5.0), (8, -1.0)])
        assert f.value_at(2) == 5.0
        assert f.value_at(8) == -1.0
        assert f.value_at(5) == 0.0
        assert f.value_at(5, default=9.0) == 9.0

    def test_indexing_and_len(self):
        f = Fiber([(1, 1.0), (2, 2.0)])
        assert len(f) == 2
        assert f[0] == Element(1, 1.0)
        assert f[1] == Element(2, 2.0)

    def test_equality(self):
        assert Fiber([(1, 1.0)]) == Fiber([(1, 1.0)])
        assert Fiber([(1, 1.0)]) != Fiber([(1, 2.0)])


class TestOperations:
    def test_scaled(self):
        f = Fiber([(0, 1.0), (5, -2.0)]).scaled(3.0)
        assert f.values == [3.0, -6.0]
        assert f.coords == [0, 5]

    def test_merged_disjoint(self):
        a = Fiber([(0, 1.0), (4, 2.0)])
        b = Fiber([(1, 3.0), (5, 4.0)])
        merged = a.merged(b)
        assert merged.coords == [0, 1, 4, 5]
        assert merged.values == [1.0, 3.0, 2.0, 4.0]

    def test_merged_accumulates_equal_coordinates(self):
        a = Fiber([(0, 1.0), (4, 2.0)])
        b = Fiber([(0, 3.0), (4, 4.0)])
        merged = a.merged(b)
        assert merged.coords == [0, 4]
        assert merged.values == [4.0, 6.0]

    def test_intersect_coords(self):
        a = Fiber([(0, 1.0), (2, 1.0), (5, 1.0)])
        b = Fiber([(2, 1.0), (3, 1.0), (5, 1.0)])
        assert a.intersect_coords(b) == [2, 5]

    def test_dot_product(self):
        a = Fiber([(0, 2.0), (2, 3.0), (5, 1.0)])
        b = Fiber([(2, 4.0), (5, -1.0), (7, 9.0)])
        value, matches = a.dot(b)
        assert value == pytest.approx(3.0 * 4.0 + 1.0 * -1.0)
        assert matches == 2

    def test_dot_empty(self):
        value, matches = Fiber().dot(Fiber([(1, 1.0)]))
        assert value == 0.0
        assert matches == 0

    def test_pruned(self):
        f = Fiber([(0, 0.0), (1, 1e-12), (2, 3.0)])
        assert f.pruned().coords == [1, 2]
        assert f.pruned(tolerance=1e-9).coords == [2]

    def test_merge_many_matches_sequential_merges(self):
        fibers = [
            Fiber([(0, 1.0), (3, 1.0)]),
            Fiber([(0, 2.0), (5, 1.0)]),
            Fiber([(3, 4.0)]),
        ]
        expected = fibers[0].merged(fibers[1]).merged(fibers[2])
        assert Fiber.merge_many(fibers) == expected

    def test_merge_many_empty(self):
        assert Fiber.merge_many([]).is_empty()
        assert Fiber.merge_many([Fiber(), Fiber()]).is_empty()


class TestProperties:
    @given(fiber_strategy(), fiber_strategy())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative(self, a, b):
        assert a.merged(b) == b.merged(a)

    @given(fiber_strategy(), fiber_strategy())
    @settings(max_examples=60, deadline=None)
    def test_merge_output_is_sorted_and_unique(self, a, b):
        merged = a.merged(b)
        coords = merged.coords
        assert coords == sorted(coords)
        assert len(coords) == len(set(coords))

    @given(fiber_strategy(), fiber_strategy())
    @settings(max_examples=60, deadline=None)
    def test_merge_preserves_dense_sum(self, a, b):
        length = 70
        dense_sum = [x + y for x, y in zip(a.to_dense(length), b.to_dense(length))]
        merged_dense = a.merged(b).to_dense(length)
        assert merged_dense == pytest.approx(dense_sum)

    @given(fiber_strategy(), st.floats(-10, 10, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_scaling_matches_dense_scaling(self, f, scalar):
        length = 70
        expected = [scalar * v for v in f.to_dense(length)]
        assert f.scaled(scalar).to_dense(length) == pytest.approx(expected)

    @given(fiber_strategy(), fiber_strategy())
    @settings(max_examples=60, deadline=None)
    def test_dot_matches_dense_dot(self, a, b):
        length = 70
        dense = sum(x * y for x, y in zip(a.to_dense(length), b.to_dense(length)))
        value, _ = a.dot(b)
        assert value == pytest.approx(dense)

    @given(st.lists(fiber_strategy(), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_merge_many_matches_dense_sum(self, fibers):
        length = 70
        dense = [0.0] * length
        for f in fibers:
            for i, v in enumerate(f.to_dense(length)):
                dense[i] += v
        assert Fiber.merge_many(fibers).to_dense(length) == pytest.approx(dense)
