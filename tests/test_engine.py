"""Tests for the cycle-accounting SpMSpM engine."""

import pytest

from repro.accelerators.engine import SpmspmEngine, _pack_whole_fibers
from repro.arch.config import default_config
from repro.dataflows import Dataflow, run_dataflow
from repro.sparse import Layout, matrices_allclose, random_sparse, spgemm_reference

ALL_DATAFLOWS = list(Dataflow)
M_DATAFLOWS = [Dataflow.IP_M, Dataflow.OP_M, Dataflow.GUST_M]


@pytest.fixture(scope="module")
def engine():
    return SpmspmEngine(default_config())


@pytest.fixture(scope="module")
def small_engine():
    return SpmspmEngine(default_config(num_multipliers=8))


def pair(m=50, k=60, n=45, da=0.3, db=0.25, seed=0):
    return (
        random_sparse(m, k, da, seed=seed),
        random_sparse(k, n, db, seed=seed + 777),
    )


class TestEngineBasics:
    def test_shape_mismatch_rejected(self, engine):
        a = random_sparse(4, 5, 0.5, seed=1)
        b = random_sparse(6, 4, 0.5, seed=2)
        with pytest.raises(ValueError):
            engine.run_layer(Dataflow.IP_M, a, b)

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS, ids=lambda d: d.name)
    def test_result_record_fields(self, engine, dataflow):
        a, b = pair(seed=3)
        result = engine.run_layer(dataflow, a, b, layer_name="unit", accelerator_name="X")
        assert result.accelerator == "X"
        assert result.layer_name == "unit"
        assert result.dataflow is dataflow
        assert result.total_cycles > 0
        assert result.traffic.onchip_bytes > 0
        assert 0.0 <= result.str_cache_miss_rate <= 1.0

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS, ids=lambda d: d.name)
    def test_capture_output_matches_reference(self, small_engine, dataflow):
        a, b = pair(m=15, k=18, n=12, seed=4)
        result = small_engine.run_layer(dataflow, a, b, capture_output=True)
        assert matrices_allclose(result.output, spgemm_reference(a, b))

    def test_output_not_captured_by_default(self, engine):
        a, b = pair(seed=5)
        assert engine.run_layer(Dataflow.GUST_M, a, b).output is None

    def test_empty_a_operand(self, engine):
        a = random_sparse(10, 12, 0.0, seed=1)
        b = random_sparse(12, 9, 0.4, seed=2)
        for dataflow in ALL_DATAFLOWS:
            result = engine.run_layer(dataflow, a, b)
            assert result.stats.multiplications == 0
            assert result.stats.output_elements == 0


class TestCrossValidationWithFunctionalDataflows:
    """The engine's work counters must match the functional implementations."""

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS, ids=lambda d: d.name)
    def test_multiplications_match(self, small_engine, dataflow):
        a, b = pair(m=30, k=40, n=25, seed=6)
        sim = small_engine.run_layer(dataflow, a, b)
        functional = run_dataflow(dataflow, a, b, num_multipliers=8)
        assert sim.stats.multiplications == functional.stats.multiplications

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS, ids=lambda d: d.name)
    def test_output_elements_match(self, small_engine, dataflow):
        a, b = pair(m=30, k=40, n=25, seed=7)
        sim = small_engine.run_layer(dataflow, a, b)
        functional = run_dataflow(dataflow, a, b, num_multipliers=8)
        assert sim.stats.output_elements == functional.stats.output_elements

    @pytest.mark.parametrize("dataflow", M_DATAFLOWS, ids=lambda d: d.name)
    def test_stationary_and_streaming_reads_match(self, small_engine, dataflow):
        a, b = pair(m=30, k=40, n=25, seed=8)
        sim = small_engine.run_layer(dataflow, a, b)
        functional = run_dataflow(dataflow, a, b, num_multipliers=8)
        assert sim.stats.stationary_elements_read == functional.stats.stationary_elements_read
        assert sim.stats.streaming_elements_read == functional.stats.streaming_elements_read
        assert sim.stats.stationary_iterations == functional.stats.stationary_iterations

    def test_outer_product_psum_writes_match(self, small_engine):
        a, b = pair(m=30, k=40, n=25, seed=9)
        sim = small_engine.run_layer(Dataflow.OP_M, a, b)
        functional = run_dataflow(Dataflow.OP_M, a, b, num_multipliers=8)
        # First-pass partial sums (one per multiplication) are counted exactly;
        # the engine bounds the *respill* volume of multi-pass merges from
        # above instead of computing each intermediate union, so it may
        # slightly over-estimate (never under-estimate) the total.
        assert sim.stats.psum_writes >= functional.stats.psum_writes
        assert sim.stats.psum_writes <= functional.stats.psum_writes * 1.05
        assert sim.stats.psum_reads >= functional.stats.psum_reads
        assert sim.stats.psum_reads <= functional.stats.psum_reads * 1.05

    def test_gustavson_psum_behaviour_matches(self, small_engine):
        a, b = pair(m=20, k=60, n=30, da=0.5, seed=10)
        sim = small_engine.run_layer(Dataflow.GUST_M, a, b)
        functional = run_dataflow(Dataflow.GUST_M, a, b, num_multipliers=8)
        assert sim.stats.psum_writes == functional.stats.psum_writes
        assert sim.stats.psum_reads == functional.stats.psum_reads


class TestDataflowCharacteristics:
    """The engine must reproduce the qualitative behaviours the paper describes."""

    def test_inner_product_has_no_psum_traffic(self, engine):
        a, b = pair(seed=11)
        result = engine.run_layer(Dataflow.IP_M, a, b)
        assert result.traffic.psum_bytes == 0
        assert result.cycles.merging == 0.0

    def test_outer_product_psum_traffic_exceeds_output(self, engine):
        a, b = pair(seed=12)
        result = engine.run_layer(Dataflow.OP_M, a, b)
        output_bytes = result.stats.output_elements * 4
        assert result.traffic.psum_bytes > output_bytes

    def test_gustavson_merges_in_place_when_rows_fit(self, engine):
        a, b = pair(m=40, k=50, n=30, da=0.2, seed=13)
        max_row = max(a.fiber_nnz(i) for i in range(a.nrows))
        assert max_row <= engine.config.num_multipliers
        result = engine.run_layer(Dataflow.GUST_M, a, b)
        assert result.traffic.psum_bytes == 0
        assert result.cycles.merging == 0.0

    def test_gustavson_spills_when_row_exceeds_array(self, small_engine):
        a = random_sparse(5, 200, 0.5, seed=14)  # rows with ~100 nnz > 8 multipliers
        b = random_sparse(200, 40, 0.3, seed=15)
        result = small_engine.run_layer(Dataflow.GUST_M, a, b)
        assert result.traffic.psum_bytes > 0
        assert result.cycles.merging > 0.0

    def test_inner_product_restreams_when_a_is_large(self, engine):
        small_a, b = pair(m=10, k=60, n=45, da=0.1, seed=16)
        large_a = random_sparse(400, 60, 0.5, seed=17)
        small = engine.run_layer(Dataflow.IP_M, small_a, b)
        large = engine.run_layer(Dataflow.IP_M, large_a, b)
        assert large.stats.stationary_iterations > small.stats.stationary_iterations
        assert (
            large.stats.streaming_elements_read
            == large.stats.stationary_iterations * b.nnz
        )

    def test_streaming_matrix_bigger_than_cache_raises_ip_miss_rate(self):
        config = default_config(str_cache_bytes=8 * 1024)
        engine = SpmspmEngine(config)
        a = random_sparse(100, 64, 0.5, seed=18)
        big_b = random_sparse(64, 2000, 0.5, seed=19)   # ~256 KB compressed
        small_b = random_sparse(64, 200, 0.5, seed=20)  # fits in 8 KB? ~25 KB, still big
        tiny_b = random_sparse(64, 60, 0.3, seed=21)    # ~4.6 KB compressed
        big = engine.run_layer(Dataflow.IP_M, a, big_b)
        tiny = engine.run_layer(Dataflow.IP_M, a, tiny_b)
        del small_b
        assert big.str_cache_miss_rate > tiny.str_cache_miss_rate

    def test_offchip_traffic_includes_all_streams(self, engine):
        a, b = pair(seed=22)
        result = engine.run_layer(Dataflow.OP_M, a, b)
        assert result.traffic.offchip_bytes == result.dram.total_bytes
        assert result.dram.sta_read_bytes > 0
        assert result.dram.output_write_bytes > 0

    def test_mirrored_dataflows_are_symmetric(self, engine):
        """Running the N-variant equals running the M-variant on transposed operands."""
        a, b = pair(seed=23)
        n_variant = engine.run_layer(Dataflow.GUST_N, a, b)
        m_mirrored = engine.run_layer(Dataflow.GUST_M, b.transposed(), a.transposed())
        assert n_variant.total_cycles == pytest.approx(m_mirrored.total_cycles)
        assert n_variant.stats.multiplications == m_mirrored.stats.multiplications
        assert n_variant.dataflow is Dataflow.GUST_N


class TestPackWholeFibers:
    def test_covers_all_elements_once(self):
        a = random_sparse(20, 30, 0.4, seed=24)
        batches = _pack_whole_fibers(a, 16)
        covered = sum(end - start for batch in batches for _, start, end in batch)
        assert covered == a.nnz

    def test_batches_respect_capacity(self):
        a = random_sparse(20, 30, 0.4, seed=25)
        for batch in _pack_whole_fibers(a, 16):
            total = sum(end - start for _, start, end in batch)
            assert total <= 16 or len(batch) == 1

    def test_long_rows_split(self):
        a = random_sparse(3, 100, 0.9, seed=26)
        for batch in _pack_whole_fibers(a, 8):
            assert len(batch) == 1
            _, start, end = batch[0]
            assert end - start <= 8

    def test_empty_matrix(self):
        a = random_sparse(5, 5, 0.0, seed=1)
        assert _pack_whole_fibers(a, 8) == []


class TestLayoutInsensitivity:
    @pytest.mark.parametrize("dataflow", M_DATAFLOWS, ids=lambda d: d.name)
    def test_input_layout_does_not_change_results(self, small_engine, dataflow):
        a, b = pair(m=25, k=30, n=20, seed=27)
        base = small_engine.run_layer(dataflow, a, b)
        alt = small_engine.run_layer(
            dataflow, a.with_layout(Layout.CSC), b.with_layout(Layout.CSC)
        )
        assert base.stats.multiplications == alt.stats.multiplications
        assert base.total_cycles == pytest.approx(alt.total_cycles)
