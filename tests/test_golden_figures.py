"""Golden regression tests for the reproduced figures' ordering invariants.

The exact cycle counts of the scaled harness are allowed to drift as the
models evolve, but the *orderings* the paper's figures report are not: these
tests pin the structural shape of the Fig. 12 and Fig. 18 row sets and the
dominance relations the oracle-mapped Flexagon must satisfy, so a runtime or
executor refactor can never silently change a reproduced figure.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    default_settings,
    end_to_end_speedup_rows,
    performance_per_area_rows,
    run_end_to_end,
)
from repro.metrics.results import geometric_mean
from repro.runtime import DESIGN_ORDER

FIXED_DESIGNS = ("SIGMA-like", "SpArch-like", "GAMMA-like")

#: Same tiny budgets as tests/test_experiments.py, so the in-process memo is
#: shared and this module adds no extra simulation time to the suite.
TINY = default_settings(max_dense_macs=2e5, max_layers_per_model=3)


@pytest.fixture(scope="module")
def end_to_end():
    return run_end_to_end(TINY)


@pytest.fixture(scope="module")
def speedup_rows(end_to_end):
    return end_to_end_speedup_rows(end_to_end)


@pytest.fixture(scope="module")
def perf_area_rows(end_to_end):
    return performance_per_area_rows(end_to_end)


# ----------------------------------------------------------------------
# Figure 12: end-to-end speed-up over the CPU baseline
# ----------------------------------------------------------------------
class TestEndToEndSpeedupGolden:
    def test_row_order_matches_table2_plus_geomean(self, end_to_end, speedup_rows):
        assert [row["model"] for row in speedup_rows] == end_to_end.model_names() + [
            "GEOMEAN"
        ]

    def test_row_columns_are_the_design_order(self, speedup_rows):
        for row in speedup_rows:
            assert list(row) == ["model", "CPU-MKL", *DESIGN_ORDER]

    def test_cpu_column_is_the_unit_baseline(self, speedup_rows):
        assert all(row["CPU-MKL"] == 1.0 for row in speedup_rows)

    def test_all_speedups_positive_and_finite(self, speedup_rows):
        for row in speedup_rows:
            for design in DESIGN_ORDER:
                assert 0.0 < row[design] < float("inf"), (row["model"], design)

    def test_flexagon_geomean_dominates_every_fixed_baseline(self, speedup_rows):
        geomean = speedup_rows[-1]
        for design in FIXED_DESIGNS:
            assert geomean["Flexagon"] >= 0.999 * geomean[design], design

    def test_flexagon_cycles_never_exceed_the_best_fixed_design(self, end_to_end):
        """The oracle mapper picks per-layer, so Flexagon lower-bounds the
        fixed designs on every model — the core claim of Fig. 12."""
        for model in end_to_end.model_names():
            per_design = end_to_end.accelerator_results[model]
            flexagon = per_design["Flexagon"].total_cycles
            best_fixed = min(per_design[d].total_cycles for d in FIXED_DESIGNS)
            assert flexagon <= best_fixed * (1 + 1e-9), model

    def test_geomean_row_is_the_geometric_mean_of_the_columns(self, speedup_rows):
        body, geomean = speedup_rows[:-1], speedup_rows[-1]
        for design in DESIGN_ORDER:
            expected = geometric_mean([float(row[design]) for row in body])
            assert geomean[design] == pytest.approx(expected, rel=1e-12), design


# ----------------------------------------------------------------------
# Figure 18: performance per area
# ----------------------------------------------------------------------
class TestPerformancePerAreaGolden:
    def test_row_order_matches_table2_plus_geomean(self, end_to_end, perf_area_rows):
        assert [row["model"] for row in perf_area_rows] == end_to_end.model_names() + [
            "GEOMEAN"
        ]

    def test_sigma_is_its_own_unit_baseline(self, perf_area_rows):
        for row in perf_area_rows:
            assert row["SIGMA-like"] == pytest.approx(1.0, rel=1e-12), row["model"]

    def test_flexagon_geomean_dominates_every_fixed_baseline(self, perf_area_rows):
        geomean = perf_area_rows[-1]
        for design in FIXED_DESIGNS:
            assert geomean["Flexagon"] >= 0.999 * geomean[design], design

    def test_geomean_row_is_the_geometric_mean_of_the_columns(self, perf_area_rows):
        body, geomean = perf_area_rows[:-1], perf_area_rows[-1]
        for design in DESIGN_ORDER:
            expected = geometric_mean([float(row[design]) for row in body])
            assert geomean[design] == pytest.approx(expected, rel=1e-12), design
