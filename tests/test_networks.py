"""Tests for the on-chip networks: distribution, multipliers and the MRN."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.distribution import DistributionNetwork
from repro.arch.mrn import (
    MergerReductionNetwork,
    NodeMode,
    merge_cycles,
    reduction_cycles,
)
from repro.arch.multiplier import MultiplierMode, MultiplierNetwork, MultiplierSwitch
from repro.sparse.fiber import Element, Fiber


# ----------------------------------------------------------------------
# Distribution network
# ----------------------------------------------------------------------
class TestDistributionNetwork:
    def test_benes_structure(self):
        dn = DistributionNetwork(num_outputs=64, bandwidth=16)
        assert dn.levels == 2 * 6 + 1
        assert dn.num_switches == dn.levels * 32

    def test_delivery_cycles_bandwidth_bound(self):
        dn = DistributionNetwork(num_outputs=64, bandwidth=16)
        assert dn.deliver(32) == pytest.approx(2.0)
        assert dn.cycles_for(8) == pytest.approx(0.5)
        assert dn.cycles_for(0) == 0.0

    def test_delivery_modes_counted(self):
        dn = DistributionNetwork(num_outputs=8, bandwidth=4)
        dn.deliver(3, destinations=1)
        dn.deliver(5, destinations=4)
        dn.deliver(2, destinations=8)
        assert dn.stats.unicasts == 3
        assert dn.stats.multicasts == 5
        assert dn.stats.broadcasts == 2
        assert dn.stats.elements_delivered == 10

    def test_multicast_cost_independent_of_fanout(self):
        dn = DistributionNetwork(num_outputs=64, bandwidth=16)
        assert dn.deliver(16, destinations=2) == dn.deliver(16, destinations=60)

    def test_zero_elements_free(self):
        dn = DistributionNetwork(num_outputs=4, bandwidth=2)
        assert dn.deliver(0) == 0.0
        assert dn.deliver(5, destinations=0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DistributionNetwork(0, 16)
        with pytest.raises(ValueError):
            DistributionNetwork(8, 0)
        with pytest.raises(ValueError):
            DistributionNetwork(8, 4).deliver(-1)


# ----------------------------------------------------------------------
# Multiplier network
# ----------------------------------------------------------------------
class TestMultiplierSwitch:
    def test_multiplier_mode(self):
        switch = MultiplierSwitch(0)
        switch.configure(MultiplierMode.MULTIPLIER)
        switch.load_stationary(3.0, coord=(1, 2))
        out = switch.process(Element(7, 2.0))
        assert out == Element(7, 6.0)
        assert switch.stats.multiplications == 1

    def test_forwarder_mode_passes_through(self):
        switch = MultiplierSwitch(0)
        switch.configure(MultiplierMode.FORWARDER)
        element = Element(3, 1.5)
        assert switch.process(element) == element
        assert switch.stats.forwards == 1

    def test_multiplier_without_stationary_value_raises(self):
        switch = MultiplierSwitch(0)
        switch.configure(MultiplierMode.MULTIPLIER)
        with pytest.raises(RuntimeError):
            switch.process(Element(0, 1.0))

    def test_idle_switch_rejects_data(self):
        switch = MultiplierSwitch(0)
        with pytest.raises(RuntimeError):
            switch.process(Element(0, 1.0))

    def test_clear_stationary(self):
        switch = MultiplierSwitch(0)
        switch.load_stationary(2.0)
        switch.clear_stationary()
        assert switch.stationary_value is None


class TestMultiplierNetwork:
    def test_network_size_and_access(self):
        mn = MultiplierNetwork(8)
        assert len(mn) == 8
        assert mn[3].index == 3

    def test_configure_all(self):
        mn = MultiplierNetwork(4)
        mn.configure_all(MultiplierMode.FORWARDER)
        assert all(s.mode is MultiplierMode.FORWARDER for s in mn.switches)

    def test_load_stationary_elements_truncates(self):
        mn = MultiplierNetwork(3)
        loaded = mn.load_stationary_elements([(1.0, (0, 0)), (2.0, (0, 1)),
                                              (3.0, (1, 0)), (4.0, (1, 1))])
        assert loaded == 3
        assert mn[0].stationary_value == 1.0
        assert mn[2].stationary_value == 3.0

    def test_load_fewer_clears_rest(self):
        mn = MultiplierNetwork(4)
        mn.load_stationary_elements([(1.0, None)] * 4)
        mn.load_stationary_elements([(9.0, None)])
        assert mn[0].stationary_value == 9.0
        assert mn[1].stationary_value is None

    def test_total_stats_aggregates(self):
        mn = MultiplierNetwork(2)
        mn.configure_all(MultiplierMode.MULTIPLIER)
        mn[0].load_stationary(2.0)
        mn[1].load_stationary(3.0)
        mn[0].process(Element(0, 1.0))
        mn[1].process(Element(1, 1.0))
        totals = mn.total_stats()
        assert totals.multiplications == 2
        assert totals.stationary_loads == 2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MultiplierNetwork(0)


# ----------------------------------------------------------------------
# Merger-Reduction Network
# ----------------------------------------------------------------------
def sorted_fiber(pairs):
    return Fiber(sorted(pairs), sort=True)


class TestMrnStructure:
    def test_node_count(self):
        mrn = MergerReductionNetwork(16)
        assert mrn.num_nodes == 15
        assert mrn.levels == 4

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            MergerReductionNetwork(12)
        with pytest.raises(ValueError):
            MergerReductionNetwork(1)

    def test_configure_sets_all_nodes(self):
        mrn = MergerReductionNetwork(8)
        mrn.configure(NodeMode.ADDER)
        assert all(n.mode is NodeMode.ADDER for level in mrn.nodes for n in level)


class TestMrnReduce:
    def test_reduce_sums_values(self):
        mrn = MergerReductionNetwork(8)
        total, cycles = mrn.reduce([1.0, 2.0, 3.0, 4.0])
        assert total == pytest.approx(10.0)
        assert cycles == 2  # log2(4)

    def test_reduce_empty(self):
        mrn = MergerReductionNetwork(4)
        assert mrn.reduce([]) == (0.0, 0)

    def test_reduce_too_many_rejected(self):
        mrn = MergerReductionNetwork(4)
        with pytest.raises(ValueError):
            mrn.reduce([1.0] * 5)

    def test_reduce_clusters_parallel_cost(self):
        mrn = MergerReductionNetwork(8)
        sums, cycles = mrn.reduce_clusters([[1.0, 2.0], [3.0, 4.0, 5.0], [6.0]])
        assert sums == [pytest.approx(3.0), pytest.approx(12.0), pytest.approx(6.0)]
        assert cycles == 2  # depth of the largest cluster

    def test_reduce_clusters_capacity_check(self):
        mrn = MergerReductionNetwork(4)
        with pytest.raises(ValueError):
            mrn.reduce_clusters([[1.0, 1.0, 1.0], [1.0, 1.0]])

    def test_addition_count(self):
        mrn = MergerReductionNetwork(8)
        mrn.reduce([1.0] * 6)
        assert mrn.stats.additions == 5


class TestMrnMerge:
    def test_merge_two_sorted_fibers(self):
        mrn = MergerReductionNetwork(4)
        a = Fiber([(0, 1.0), (3, 2.0)])
        b = Fiber([(1, 5.0), (3, 1.0)])
        merged, cycles = mrn.merge([a, b])
        assert merged == a.merged(b)
        assert cycles >= len(merged)

    def test_merge_matches_reference_k_way(self):
        mrn = MergerReductionNetwork(8)
        fibers = [
            Fiber([(0, 1.0), (4, 2.0), (9, 1.0)]),
            Fiber([(1, 1.0), (4, -2.0)]),
            Fiber([(2, 3.0)]),
            Fiber([(0, 1.0), (9, 4.0)]),
            Fiber([(7, 2.0)]),
        ]
        merged, _ = mrn.merge(fibers)
        assert merged == Fiber.merge_many(fibers)

    def test_merge_empty_inputs(self):
        mrn = MergerReductionNetwork(4)
        merged, _ = mrn.merge([Fiber(), Fiber()])
        assert merged.is_empty()

    def test_merge_single_fiber_passthrough(self):
        mrn = MergerReductionNetwork(4)
        fiber = Fiber([(2, 1.0), (5, -1.0)])
        merged, _ = mrn.merge([fiber])
        assert merged == fiber

    def test_merge_capacity_check(self):
        mrn = MergerReductionNetwork(2)
        with pytest.raises(ValueError):
            mrn.merge([Fiber()] * 3)

    def test_merge_cycles_close_to_pipelined_estimate(self):
        mrn = MergerReductionNetwork(8)
        fibers = [sorted_fiber([(i * 3 + j, 1.0) for i in range(10)]) for j in range(3)]
        total_inputs = sum(f.nnz for f in fibers)
        _, cycles = mrn.merge(fibers)
        # Root emits at most one element per cycle; pipeline depth adds a few.
        assert total_inputs <= cycles <= 3 * total_inputs + 4 * mrn.levels + 8

    def test_stats_accumulate(self):
        mrn = MergerReductionNetwork(4)
        mrn.merge([Fiber([(0, 1.0)]), Fiber([(0, 2.0)])])
        assert mrn.stats.additions >= 1
        assert mrn.stats.elements_out == 1

    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 30), st.floats(-5, 5, allow_nan=False)),
                max_size=12,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_reference_merge_property(self, raw_fibers):
        fibers = [sorted_fiber(pairs) for pairs in raw_fibers]
        mrn = MergerReductionNetwork(8)
        merged, _ = mrn.merge(fibers)
        expected = Fiber.merge_many(fibers)
        assert merged.coords == expected.coords
        for got, want in zip(merged.values, expected.values):
            assert got == pytest.approx(want)


class TestClosedFormEstimates:
    def test_reduction_cycles(self):
        assert reduction_cycles(0, 16, 6) == 0.0
        assert reduction_cycles(32, 16, 6) == pytest.approx(2 + 6)

    def test_merge_cycles(self):
        assert merge_cycles(0, 16, 6) == 0.0
        assert merge_cycles(160, 16, 6) == pytest.approx(10 + 6)

    def test_bandwidth_floor(self):
        assert reduction_cycles(10, 0, 2) == pytest.approx(10 + 2)
