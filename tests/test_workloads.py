"""Tests for the workload package: layer specs, DNN models and Table 6 layers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import Layout
from repro.workloads import (
    MODEL_REGISTRY,
    LayerSpec,
    get_model,
    get_representative_layer,
    list_models,
    materialize_layer,
)
from repro.workloads.layers import (
    effective_scale,
    layer_summary,
    scale_for_budget,
)
from repro.workloads.representative import (
    FAVOURED_DATAFLOW_CLASS,
    REPRESENTATIVE_LAYERS,
    representative_layer_names,
)


class TestLayerSpec:
    def test_basic_properties(self):
        spec = LayerSpec("t", m=10, k=20, n=30, sparsity_a=0.7, sparsity_b=0.4)
        assert spec.density_a == pytest.approx(0.3)
        assert spec.density_b == pytest.approx(0.6)
        assert spec.dense_macs == 6000
        assert spec.expected_nnz_a() == pytest.approx(60)
        assert spec.expected_nnz_b() == pytest.approx(360)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec("bad", m=0, k=1, n=1, sparsity_a=0.5, sparsity_b=0.5)

    def test_invalid_sparsity_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec("bad", m=1, k=1, n=1, sparsity_a=1.5, sparsity_b=0.5)

    def test_scaled_shrinks_dimensions(self):
        spec = LayerSpec("t", m=100, k=200, n=300, sparsity_a=0.5, sparsity_b=0.5)
        small = spec.scaled(0.1)
        assert (small.m, small.k, small.n) == (10, 20, 30)
        assert small.sparsity_a == spec.sparsity_a

    def test_scaled_never_reaches_zero(self):
        spec = LayerSpec("t", m=3, k=3, n=3, sparsity_a=0.5, sparsity_b=0.5)
        tiny = spec.scaled(0.01)
        assert min(tiny.m, tiny.k, tiny.n) >= 1

    def test_scaled_identity(self):
        spec = LayerSpec("t", m=3, k=4, n=5, sparsity_a=0.5, sparsity_b=0.5)
        assert spec.scaled(1.0) is spec

    def test_deterministic_seed_stable(self):
        spec = LayerSpec("t", m=3, k=4, n=5, sparsity_a=0.5, sparsity_b=0.5)
        assert spec.deterministic_seed() == spec.deterministic_seed()
        assert spec.deterministic_seed(1) != spec.deterministic_seed(2)

    def test_layer_summary_rows(self):
        row = layer_summary(REPRESENTATIVE_LAYERS[0])
        assert row["layer"] == "SQ5"
        assert row["M"] == 64

    @given(st.floats(0.01, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_scale_for_budget_respects_budget(self, fraction):
        spec = LayerSpec("t", m=200, k=300, n=400, sparsity_a=0.5, sparsity_b=0.5)
        budget = spec.dense_macs * fraction
        scale = scale_for_budget(spec, budget)
        assert 0 < scale <= 1.0
        assert spec.scaled(scale).dense_macs <= budget * 1.2  # rounding slack

    def test_effective_scale_uses_largest_layer(self):
        small = LayerSpec("s", m=10, k=10, n=10, sparsity_a=0.5, sparsity_b=0.5)
        large = LayerSpec("l", m=1000, k=1000, n=1000, sparsity_a=0.5, sparsity_b=0.5)
        scale = effective_scale([small, large], max_dense_macs=1e6)
        assert scale == scale_for_budget(large, 1e6)
        assert effective_scale([], 1e6) == 1.0


class TestMaterialization:
    def test_materialize_shapes_and_layouts(self):
        spec = LayerSpec("t", m=40, k=50, n=60, sparsity_a=0.6, sparsity_b=0.3)
        a, b = materialize_layer(spec, layout_a=Layout.CSR, layout_b=Layout.CSC)
        assert a.shape == (40, 50)
        assert b.shape == (50, 60)
        assert a.layout is Layout.CSR
        assert b.layout is Layout.CSC

    def test_materialize_density_close_to_spec(self):
        spec = LayerSpec("t", m=80, k=80, n=80, sparsity_a=0.7, sparsity_b=0.4)
        a, b = materialize_layer(spec)
        assert a.density == pytest.approx(spec.density_a, abs=0.05)
        assert b.density == pytest.approx(spec.density_b, abs=0.05)

    def test_materialize_is_deterministic(self):
        spec = REPRESENTATIVE_LAYERS[1]
        a1, b1 = materialize_layer(spec, scale=0.3)
        a2, b2 = materialize_layer(spec, scale=0.3)
        assert a1 == a2
        assert b1 == b2

    def test_scale_shrinks_matrices(self):
        spec = REPRESENTATIVE_LAYERS[2]
        full_a, _ = materialize_layer(spec, scale=0.3)
        small_a, _ = materialize_layer(spec, scale=0.15)
        assert small_a.nrows < full_a.nrows


class TestModels:
    def test_registry_has_eight_models(self):
        assert len(MODEL_REGISTRY) == 8
        assert list_models() == ["A", "SQ", "V", "R", "S-R", "S-M", "DB", "MB"]

    def test_layer_counts_match_table2(self):
        expected = {"A": 7, "SQ": 26, "V": 8, "R": 54, "S-R": 37, "S-M": 29,
                    "DB": 36, "MB": 316}
        for short, count in expected.items():
            assert get_model(short).num_layers == count, short

    def test_lookup_by_full_name(self):
        assert get_model("AlexNet").short_name == "A"
        assert get_model("mobilebert").short_name == "MB"

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_model("GPT-4")

    def test_average_sparsities_close_to_table2(self):
        """Per-layer jitter must preserve the model-level averages of Table 2.

        The models use the paper's operand convention: A is the weight matrix
        (AvSpA) and B the activation matrix (AvSpB).
        """
        for model in MODEL_REGISTRY.values():
            avg_wgt = sum(l.sparsity_a for l in model.layers) / model.num_layers
            avg_act = sum(l.sparsity_b for l in model.layers) / model.num_layers
            assert avg_wgt == pytest.approx(model.table2_weight_sparsity, abs=0.06)
            assert avg_act == pytest.approx(model.table2_activation_sparsity, abs=0.06)

    def test_layer_names_are_unique(self):
        for model in MODEL_REGISTRY.values():
            names = [layer.name for layer in model.layers]
            assert len(names) == len(set(names)), model.name

    def test_nlp_models_have_gemm_shapes(self):
        db = get_model("DB")
        assert all(layer.k >= 512 for layer in db.layers)
        mb = get_model("MB")
        # MobileBERT runs at sequence length 8 (the N / token dimension).
        assert all(layer.n == 8 for layer in mb.layers)

    def test_cpu_reference_cycles_present(self):
        for model in MODEL_REGISTRY.values():
            assert model.table2_cpu_megacycles > 0


class TestRepresentativeLayers:
    def test_nine_layers_in_table_order(self):
        assert representative_layer_names() == [
            "SQ5", "SQ11", "R4", "R6", "S-R3", "V0", "MB215", "V7", "A2",
        ]
        assert len(REPRESENTATIVE_LAYERS) == 9

    def test_table6_dimensions_verbatim(self):
        v0 = get_representative_layer("V0")
        assert (v0.m, v0.n, v0.k) == (128, 12100, 576)
        assert v0.sparsity_a == pytest.approx(0.90)
        assert v0.sparsity_b == pytest.approx(0.61)
        mb = get_representative_layer("MB215")
        assert (mb.m, mb.n, mb.k) == (128, 8, 512)

    def test_unknown_layer_rejected(self):
        with pytest.raises(KeyError):
            get_representative_layer("Z9")

    def test_each_group_of_three_favours_one_family(self):
        from repro.dataflows import DataflowClass

        assert FAVOURED_DATAFLOW_CLASS["SQ5"] is DataflowClass.INNER_PRODUCT
        assert FAVOURED_DATAFLOW_CLASS["V0"] is DataflowClass.OUTER_PRODUCT
        assert FAVOURED_DATAFLOW_CLASS["A2"] is DataflowClass.GUSTAVSON
