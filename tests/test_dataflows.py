"""Tests for the six functional SpMSpM dataflow implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflows import (
    DATAFLOW_PROPERTIES,
    Dataflow,
    DataflowClass,
    run_dataflow,
    run_gustavson,
    run_inner_product,
    run_outer_product,
    taxonomy_table,
)
from repro.sparse import (
    Layout,
    csr_from_dense,
    matrices_allclose,
    random_sparse,
    spgemm_reference,
)

ALL_DATAFLOWS = list(Dataflow)


def random_pair(m=18, k=24, n=15, da=0.3, db=0.25, seed=0):
    a = random_sparse(m, k, da, seed=seed)
    b = random_sparse(k, n, db, seed=seed + 1000)
    return a, b


class TestCorrectness:
    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS, ids=lambda d: d.name)
    def test_matches_reference(self, dataflow):
        a, b = random_pair(seed=7)
        reference = spgemm_reference(a, b)
        result = run_dataflow(dataflow, a, b, num_multipliers=8)
        assert matrices_allclose(result.output, reference)

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS, ids=lambda d: d.name)
    def test_output_layout_matches_table3(self, dataflow):
        a, b = random_pair(seed=3)
        result = run_dataflow(dataflow, a, b, num_multipliers=16)
        assert result.output.layout is DATAFLOW_PROPERTIES[dataflow].c_format

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS, ids=lambda d: d.name)
    @pytest.mark.parametrize("num_multipliers", [1, 3, 64, 1000])
    def test_correct_for_any_array_size(self, dataflow, num_multipliers):
        a, b = random_pair(m=10, k=12, n=9, seed=11)
        reference = spgemm_reference(a, b)
        result = run_dataflow(dataflow, a, b, num_multipliers=num_multipliers)
        assert matrices_allclose(result.output, reference)

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS, ids=lambda d: d.name)
    def test_empty_operands(self, dataflow):
        a = random_sparse(6, 8, 0.0, seed=1)
        b = random_sparse(8, 5, 0.4, seed=2)
        result = run_dataflow(dataflow, a, b, num_multipliers=4)
        assert result.output.nnz == 0
        assert result.stats.multiplications == 0

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS, ids=lambda d: d.name)
    def test_dense_operands(self, dataflow):
        rng = np.random.default_rng(5)
        a = csr_from_dense(rng.normal(size=(6, 7)))
        b = csr_from_dense(rng.normal(size=(7, 5)))
        result = run_dataflow(dataflow, a, b, num_multipliers=8)
        assert matrices_allclose(result.output, a.to_dense() @ b.to_dense())

    def test_shape_mismatch_rejected(self):
        a = random_sparse(4, 5, 0.5, seed=1)
        b = random_sparse(6, 4, 0.5, seed=2)
        for runner in (run_inner_product, run_outer_product, run_gustavson):
            with pytest.raises(ValueError):
                runner(a, b)

    def test_invalid_multiplier_count_rejected(self):
        a, b = random_pair(seed=1)
        for runner in (run_inner_product, run_outer_product, run_gustavson):
            with pytest.raises(ValueError):
                runner(a, b, num_multipliers=0)

    @given(
        st.integers(2, 10), st.integers(2, 10), st.integers(2, 10),
        st.floats(0.05, 0.8), st.floats(0.05, 0.8), st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_dataflows_agree_property(self, m, k, n, da, db, seed):
        a = random_sparse(m, k, da, seed=seed)
        b = random_sparse(k, n, db, seed=seed + 1)
        outputs = [
            run_dataflow(df, a, b, num_multipliers=4).output for df in ALL_DATAFLOWS
        ]
        reference = spgemm_reference(a, b)
        for output in outputs:
            assert matrices_allclose(output, reference)


class TestStatistics:
    def test_effectual_multiplications_identical_across_dataflows(self):
        """All dataflows perform the same effectual multiplies on the same input."""
        a, b = random_pair(seed=21)
        counts = {
            df: run_dataflow(df, a, b, num_multipliers=8).stats.multiplications
            for df in ALL_DATAFLOWS
        }
        assert len(set(counts.values())) == 1

    def test_inner_product_produces_no_psums(self):
        a, b = random_pair(seed=22)
        stats = run_inner_product(a, b, num_multipliers=8).stats
        assert stats.psum_writes == 0
        assert stats.psum_reads == 0
        assert stats.merge_comparisons == 0

    def test_outer_product_psum_writes_equal_multiplications(self):
        """In OP every product becomes a partial sum that is written out."""
        a, b = random_pair(seed=23)
        stats = run_outer_product(a, b, num_multipliers=8).stats
        assert stats.psum_writes >= stats.multiplications
        assert stats.psum_reads >= stats.multiplications

    def test_gustavson_spills_less_than_outer_product(self):
        a, b = random_pair(m=30, k=30, n=30, da=0.3, db=0.3, seed=24)
        op = run_outer_product(a, b, num_multipliers=8).stats
        gust = run_gustavson(a, b, num_multipliers=8).stats
        assert gust.psum_writes <= op.psum_writes

    def test_gustavson_no_spill_when_rows_fit(self):
        """Rows whose nnz fits in the multiplier array never touch the PSRAM."""
        a, b = random_pair(m=10, k=12, n=9, da=0.2, db=0.3, seed=25)
        max_row_nnz = max(a.fiber_nnz(i) for i in range(a.nrows))
        stats = run_gustavson(a, b, num_multipliers=max(8, max_row_nnz)).stats
        assert stats.psum_writes == 0
        assert stats.psum_reads == 0

    def test_inner_product_restreams_b_per_iteration(self):
        a, b = random_pair(seed=26)
        small = run_inner_product(a, b, num_multipliers=2).stats
        large = run_inner_product(a, b, num_multipliers=10_000).stats
        assert large.stationary_iterations == 1
        assert small.stationary_iterations > large.stationary_iterations
        assert small.streaming_elements_read == small.stationary_iterations * b.nnz
        assert large.streaming_elements_read == b.nnz

    def test_outer_product_reads_streaming_once_with_large_array(self):
        """With a big enough array, OP touches each B fiber exactly once."""
        a, b = random_pair(seed=27)
        stats = run_outer_product(a, b, num_multipliers=100_000).stats
        touched_ks = sorted({k for _, k, _ in a.iter_elements()})
        expected = sum(b.fiber_nnz(k) for k in touched_ks)
        assert stats.streaming_elements_read == expected

    def test_output_elements_counts_nnz_of_c(self):
        a, b = random_pair(seed=28)
        for df in ALL_DATAFLOWS:
            result = run_dataflow(df, a, b, num_multipliers=8)
            assert result.stats.output_elements == result.output.nnz

    def test_stats_merge(self):
        a, b = random_pair(seed=29)
        s1 = run_gustavson(a, b, num_multipliers=4).stats
        s2 = run_gustavson(a, b, num_multipliers=4).stats
        merged = s1.merged_with(s2)
        assert merged.multiplications == 2 * s1.multiplications
        assert merged.total_compute_ops == 2 * s1.total_compute_ops

    def test_as_dict_has_all_counters(self):
        a, b = random_pair(seed=30)
        stats = run_gustavson(a, b, num_multipliers=4).stats
        d = stats.as_dict()
        assert d["multiplications"] == stats.multiplications
        assert set(d) >= {"psum_writes", "psum_reads", "merge_comparisons"}


class TestTaxonomy:
    def test_six_dataflows(self):
        assert len(ALL_DATAFLOWS) == 6
        assert len({df.loop_order for df in ALL_DATAFLOWS}) == 6

    def test_classes(self):
        assert Dataflow.IP_M.dataflow_class is DataflowClass.INNER_PRODUCT
        assert Dataflow.OP_N.dataflow_class is DataflowClass.OUTER_PRODUCT
        assert Dataflow.GUST_M.dataflow_class is DataflowClass.GUSTAVSON

    def test_stationarity_flags(self):
        assert Dataflow.IP_M.is_m_stationary
        assert not Dataflow.IP_M.is_n_stationary
        assert Dataflow.GUST_N.is_n_stationary

    def test_m_stationary_emits_csr_n_stationary_emits_csc(self):
        for df in ALL_DATAFLOWS:
            expected = Layout.CSR if df.is_m_stationary else Layout.CSC
            assert DATAFLOW_PROPERTIES[df].c_format is expected

    def test_merging_and_intersection_flags(self):
        assert not Dataflow.IP_M.needs_merging
        assert Dataflow.OP_M.needs_merging
        assert Dataflow.GUST_M.needs_merging
        assert Dataflow.IP_M.needs_intersection
        assert not Dataflow.OP_M.needs_intersection
        assert Dataflow.GUST_M.needs_intersection

    def test_mirrored(self):
        assert Dataflow.IP_M.mirrored() is Dataflow.IP_N
        assert Dataflow.GUST_N.mirrored() is Dataflow.GUST_M
        for df in ALL_DATAFLOWS:
            assert df.mirrored().mirrored() is df

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("IP_M", Dataflow.IP_M),
            ("ip_n", Dataflow.IP_N),
            ("Gust(M)", Dataflow.GUST_M),
            ("gustavson_n", Dataflow.GUST_N),
            ("MKN", Dataflow.GUST_M),
            ("KNM", Dataflow.OP_N),
        ],
    )
    def test_from_name(self, name, expected):
        assert Dataflow.from_name(name) is expected

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            Dataflow.from_name("systolic")

    def test_taxonomy_table_rows(self):
        rows = taxonomy_table()
        assert len(rows) == 6
        by_order = {row["loop_order"]: row for row in rows}
        assert by_order["MNK"]["merging"] == "N/A"
        assert by_order["KMN"]["intersection"] == "N/A"
        assert by_order["MKN"]["a_format"] == "CSR"
        assert by_order["NKM"]["c_format"] == "CSC"

    def test_run_dataflow_accepts_string_names(self):
        a, b = random_pair(seed=31)
        ref = spgemm_reference(a, b)
        assert matrices_allclose(run_dataflow("MKN", a, b).output, ref)
