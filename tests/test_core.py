"""Tests for the core package: mapper, tiling and the DNN scheduler."""

import pytest

from repro.accelerators import (
    FlexagonAccelerator,
    GammaLikeAccelerator,
    SigmaLikeAccelerator,
    SparchLikeAccelerator,
)
from repro.arch.config import default_config
from repro.core import DnnScheduler, HeuristicMapper, LayerExecution, OracleMapper, plan_tiling
from repro.core.mapper import _candidate_variants
from repro.dataflows import Dataflow, DataflowClass
from repro.dataflows.transitions import produced_layout, required_activation_layout
from repro.sparse import Layout, random_sparse
from repro.workloads import get_representative_layer, materialize_layer

CONFIG = default_config()


def pair(seed=0, m=40, k=60, n=40, da=0.3, db=0.3):
    return (
        random_sparse(m, k, da, seed=seed),
        random_sparse(k, n, db, seed=seed + 55),
    )


class TestHeuristicMapper:
    def test_estimates_cover_three_families(self):
        mapper = HeuristicMapper(CONFIG)
        a, b = pair(seed=1)
        estimates = mapper.estimate_costs(a, b)
        assert set(estimates) == set(DataflowClass)
        assert all(est.cost > 0 for est in estimates.values())

    def test_selection_returns_a_dataflow(self):
        mapper = HeuristicMapper(CONFIG)
        a, b = pair(seed=2)
        assert isinstance(mapper.select(a, b), Dataflow)

    def test_activation_layout_restricts_candidates(self):
        mapper = HeuristicMapper(CONFIG)
        a, b = pair(seed=3)
        for layout in (Layout.CSR, Layout.CSC):
            chosen = mapper.select(a, b, activation_layout=layout)
            assert required_activation_layout(chosen) is layout

    def test_produced_layout_restricts_candidates(self):
        mapper = HeuristicMapper(CONFIG)
        a, b = pair(seed=4)
        for layout in (Layout.CSR, Layout.CSC):
            chosen = mapper.select(a, b, produced_layout=layout)
            assert produced_layout(chosen) is layout

    def test_ip_friendly_layer_prefers_inner_product(self):
        """Small stationary operand + small streaming matrix => IP (SQ5-like)."""
        mapper = HeuristicMapper(CONFIG)
        spec = get_representative_layer("SQ5")
        a, b = materialize_layer(spec, scale=0.5)
        chosen = mapper.select(a, b)
        assert chosen.dataflow_class in (
            DataflowClass.INNER_PRODUCT,
            DataflowClass.GUSTAVSON,
        )

    def test_large_streaming_matrix_avoids_inner_product(self):
        """A huge B that does not fit the cache makes IP re-stream it => avoid."""
        config = default_config(str_cache_bytes=16 * 1024)
        mapper = HeuristicMapper(config)
        a = random_sparse(300, 200, 0.6, seed=5)
        b = random_sparse(200, 2000, 0.5, seed=6)
        chosen = mapper.select(a, b)
        assert chosen.dataflow_class is not DataflowClass.INNER_PRODUCT

    def test_candidate_variants_fallback_when_unsatisfiable(self):
        # No dataflow produces CSR output AND consumes CSC activations with
        # the same family restriction applied... but individually both filters
        # are satisfiable, so the intersection should never be empty here.
        candidates = _candidate_variants(Layout.CSC, Layout.CSR)
        assert candidates  # never empty
        for dataflow in candidates:
            assert required_activation_layout(dataflow) is Layout.CSC


class TestOracleMapper:
    def test_oracle_matches_best_engine_run(self):
        from repro.accelerators.engine import SpmspmEngine

        a, b = pair(seed=7, m=30, k=40, n=30)
        oracle = OracleMapper(CONFIG)
        chosen = oracle.select(a, b)
        engine = SpmspmEngine(CONFIG)
        cycles = {d: engine.run_layer(d, a, b).total_cycles for d in Dataflow}
        assert cycles[chosen] == pytest.approx(min(cycles.values()))

    def test_oracle_is_never_worse_than_heuristic(self):
        from repro.accelerators.engine import SpmspmEngine

        a, b = pair(seed=8, m=30, k=40, n=30)
        engine = SpmspmEngine(CONFIG)
        oracle_cycles = engine.run_layer(OracleMapper(CONFIG).select(a, b), a, b).total_cycles
        heuristic_cycles = engine.run_layer(
            HeuristicMapper(CONFIG).select(a, b), a, b
        ).total_cycles
        assert oracle_cycles <= heuristic_cycles + 1e-9


class TestTiling:
    def test_small_layer_needs_one_tile(self):
        a, b = pair(seed=9)
        plan = plan_tiling(Dataflow.GUST_M, a, b, CONFIG)
        assert plan.num_tiles == 1
        assert plan.fits_on_chip(CONFIG)

    def test_large_streaming_operand_tiles_along_streaming_dim(self):
        config = default_config(str_cache_bytes=8 * 1024)
        a = random_sparse(50, 100, 0.5, seed=10)
        b = random_sparse(100, 2000, 0.5, seed=11)  # ~400 KB compressed
        plan = plan_tiling(Dataflow.GUST_M, a, b, config)
        assert plan.streaming_tiles > 1
        assert plan.streaming_bytes_per_tile <= config.str_cache_bytes

    def test_outer_product_psum_pressure_tiles_stationary_dim(self):
        config = default_config(psram_bytes=16 * 1024)
        a = random_sparse(200, 200, 0.5, seed=12)
        b = random_sparse(200, 400, 0.5, seed=13)
        plan = plan_tiling(Dataflow.OP_M, a, b, config)
        assert plan.stationary_tiles > 1

    def test_inner_product_has_no_psum_tiles(self):
        a, b = pair(seed=14)
        plan = plan_tiling(Dataflow.IP_M, a, b, CONFIG)
        assert plan.psum_bytes_per_tile == 0
        assert plan.stationary_tiles == 1


class TestScheduler:
    def _chain(self, num_layers=3, seed=20):
        """A simple layer chain where C of layer i is A of layer i+1."""
        layers = []
        m, k = 40, 48
        for i in range(num_layers):
            n = 40 + 8 * i
            a = random_sparse(m, k, 0.35, seed=seed + i)
            b = random_sparse(k, n, 0.3, seed=seed + 100 + i)
            layers.append(LayerExecution(a=a, b=b, name=f"layer{i}"))
            k = n  # the next layer consumes this layer's output channels
        return layers

    def test_runs_all_layers(self):
        scheduler = DnnScheduler(FlexagonAccelerator(CONFIG))
        result = scheduler.run_model(self._chain(), model_name="toy")
        assert result.model_name == "toy"
        assert len(result.layer_results) == 3
        assert result.total_cycles > 0

    def test_flexagon_chains_without_conversions(self):
        scheduler = DnnScheduler(FlexagonAccelerator(CONFIG))
        result = scheduler.run_model(self._chain())
        assert result.explicit_conversions == 0

    def test_fixed_op_design_needs_conversions(self):
        """An OP-only design needs CSC activations but produces CSR: every
        layer after the first requires an explicit conversion (Table 4)."""
        scheduler = DnnScheduler(
            SparchLikeAccelerator(CONFIG), initial_activation_layout=Layout.CSC
        )
        result = scheduler.run_model(self._chain())
        assert result.explicit_conversions == len(result.layer_results) - 1
        assert result.conversion_bytes > 0

    def test_conversion_overhead_can_be_disabled(self):
        base = DnnScheduler(
            SparchLikeAccelerator(CONFIG), initial_activation_layout=Layout.CSC
        ).run_model(self._chain())
        free = DnnScheduler(
            SparchLikeAccelerator(CONFIG),
            initial_activation_layout=Layout.CSC,
            conversion_overhead_enabled=False,
        ).run_model(self._chain())
        assert free.conversion_bytes == 0
        assert free.total_cycles < base.total_cycles

    def test_forced_dataflows_respected(self):
        scheduler = DnnScheduler(
            FlexagonAccelerator(CONFIG),
            forced_dataflows={0: Dataflow.OP_M, 2: Dataflow.IP_M},
        )
        result = scheduler.run_model(self._chain())
        assert result.layer_results[0].dataflow is Dataflow.OP_M
        assert result.layer_results[2].dataflow is Dataflow.IP_M

    def test_dataflow_histogram(self):
        scheduler = DnnScheduler(GammaLikeAccelerator(CONFIG))
        result = scheduler.run_model(self._chain())
        histogram = result.dataflow_histogram
        assert sum(histogram.values()) == 3
        assert all(d.dataflow_class is DataflowClass.GUSTAVSON for d in histogram)

    def test_total_traffic_aggregates_layers(self):
        scheduler = DnnScheduler(SigmaLikeAccelerator(CONFIG))
        result = scheduler.run_model(self._chain())
        assert result.total_traffic.onchip_bytes == sum(
            layer.traffic.onchip_bytes for layer in result.layer_results
        )
