"""Tests of serve-side admission control: auth, quotas, shedding, drain.

Two layers of coverage:

* **Policy units** — :mod:`repro.serve.auth` and :mod:`repro.serve.quota`
  with injected clocks, so window boundaries and UTC-day resets are exact.
* **HTTP integration** — real :class:`BackgroundServer` instances with the
  admission knobs set through the environment, asserting the status-code
  contract end to end: ``401`` vs open, ``429`` with ``Retry-After`` on
  rate/quota exhaustion, ``503`` shedding past the pool depth and during
  drain, warm answers unaffected throughout, and the saturation smoke —
  4×depth concurrent cold requests produce only ``202``/``429``/``503``,
  every refusal carries ``Retry-After``, and retried requests converge to
  bytes identical to a serial run.
"""

from __future__ import annotations

import concurrent.futures
import http.client
import json
import threading
import time
from pathlib import Path

import pytest

from repro.api import Session, SweepSpec
from repro.experiments.settings import default_settings
from repro.runtime import BatchRunner, ResultCache
from repro.serve import BackgroundServer, ServeApp
from repro.serve.auth import ANONYMOUS, AuthError, KeyRegistry, hash_key
from repro.serve.http import Request, Response
from repro.serve.quota import AdmissionControl, ColdQuota, SlidingWindow

MICRO = default_settings(max_dense_macs=5e4, max_layers_per_model=1)

#: The saturation workload: distinct one-job sweeps (distinct content
#: keys), so none of them coalesce with each other.
DESIGNS = ["SIGMA-like", "SpArch-like", "GAMMA-like", "CPU-MKL"]


def sweep_body(layer: str, design: str) -> bytes:
    return json.dumps(
        {"layers": [layer], "designs": [design], "scale": 0.05}
    ).encode()


def micro_session(cache_dir) -> Session:
    return Session(
        MICRO, runner=BatchRunner(parallel=False, cache=ResultCache(cache_dir))
    )


def request(server, method, path, body=None, headers=None):
    """One HTTP exchange; returns ``(status, headers-dict, body-bytes)``."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=120)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def poll_job(server, url, deadline_seconds=120.0, headers=None):
    deadline = time.monotonic() + deadline_seconds
    while True:
        status, response_headers, body = request(server, "GET", url, headers=headers)
        if status != 202:
            return status, response_headers, body
        assert time.monotonic() < deadline, "job did not finish in time"
        time.sleep(0.05)


@pytest.fixture()
def quota_env(tmp_path, monkeypatch):
    """Every integration server gets an isolated on-disk quota store."""
    monkeypatch.setenv("REPRO_QUOTA_DIR", str(tmp_path / "quota"))
    return tmp_path


# ----------------------------------------------------------------------
# Policy units: auth
# ----------------------------------------------------------------------
class TestKeyRegistry:
    def test_open_registry_is_anonymous(self, monkeypatch):
        monkeypatch.delenv("REPRO_API_KEYS", raising=False)
        registry = KeyRegistry.from_env()
        assert registry.open
        assert registry.authenticate({}) is ANONYMOUS

    def test_labelled_and_bare_entries(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_API_KEYS", f"alice:{hash_key('s3cret')},{hash_key('other')}"
        )
        registry = KeyRegistry.from_env()
        assert not registry.open
        principal = registry.authenticate({"authorization": "Bearer s3cret"})
        assert principal.key_id == "alice" and principal.authenticated
        assert registry.authenticate({"x-repro-api-key": "other"}).key_id == "key1"

    def test_missing_and_unknown_keys_are_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_API_KEYS", f"alice:{hash_key('s3cret')}")
        registry = KeyRegistry.from_env()
        with pytest.raises(AuthError, match="API key required"):
            registry.authenticate({})
        with pytest.raises(AuthError, match="unknown API key"):
            registry.authenticate({"authorization": "Bearer wrong"})

    def test_raw_looking_entries_fail_at_startup(self, monkeypatch):
        monkeypatch.setenv("REPRO_API_KEYS", "alice:not-a-digest")
        with pytest.raises(ValueError, match="label:sha256hex"):
            KeyRegistry.from_env()


# ----------------------------------------------------------------------
# Policy units: rate window + cold quota (injected clocks, no sleeps)
# ----------------------------------------------------------------------
class TestSlidingWindow:
    def test_denies_at_the_limit_and_resets_at_the_boundary(self):
        window = SlidingWindow(limit=2, window_seconds=60.0)
        assert window.admit("k", now=100.0).allowed
        assert window.admit("k", now=110.0).allowed
        denied = window.admit("k", now=120.0)
        assert not denied.allowed
        assert denied.reset_at == pytest.approx(160.0)  # oldest event + window
        assert denied.retry_after == pytest.approx(40.0)
        # Exactly past the boundary the oldest event ages out.
        assert window.admit("k", now=160.1).allowed

    def test_denials_do_not_consume_events(self):
        window = SlidingWindow(limit=1, window_seconds=60.0)
        assert window.admit("k", now=0.0).allowed
        for attempt in range(5):
            assert not window.admit("k", now=1.0 + attempt).allowed
        # The one real event still ages out on schedule — denied attempts
        # did not extend the window.
        assert window.admit("k", now=60.5).allowed

    def test_keys_are_independent(self):
        window = SlidingWindow(limit=1, window_seconds=60.0)
        assert window.admit("a", now=0.0).allowed
        assert window.admit("b", now=0.0).allowed
        assert not window.admit("a", now=1.0).allowed

    def test_unset_limit_admits_everything(self):
        window = SlidingWindow(limit=None, window_seconds=60.0)
        assert all(window.admit("k", now=0.0).allowed for _ in range(100))


class TestColdQuota:
    NOON = 1_770_033_600.0  # some UTC noon; the exact day is irrelevant

    def test_charges_until_the_limit_then_points_at_midnight(self, tmp_path):
        quota = ColdQuota(tmp_path, limit=2)
        assert quota.charge("k", now=self.NOON).allowed
        assert quota.charge("k", now=self.NOON).allowed
        denied = quota.charge("k", now=self.NOON)
        assert not denied.allowed
        assert denied.reset_at % 86400 == 0  # the next UTC midnight
        assert denied.retry_after == pytest.approx(denied.reset_at - self.NOON)

    def test_resets_on_the_next_utc_day(self, tmp_path):
        quota = ColdQuota(tmp_path, limit=1)
        assert quota.charge("k", now=self.NOON).allowed
        assert not quota.charge("k", now=self.NOON).allowed
        assert quota.charge("k", now=self.NOON + 86400).allowed

    def test_refund_restores_budget(self, tmp_path):
        quota = ColdQuota(tmp_path, limit=1)
        assert quota.charge("k", now=self.NOON).allowed
        quota.refund("k", now=self.NOON)
        assert quota.charge("k", now=self.NOON).allowed
        quota.refund("unknown", now=self.NOON)  # floor at zero, no error

    def test_counters_survive_a_restart(self, tmp_path):
        assert ColdQuota(tmp_path, limit=1).charge("k", now=self.NOON).allowed
        fresh = ColdQuota(tmp_path, limit=1)
        assert not fresh.charge("k", now=self.NOON).allowed

    def test_torn_counter_file_fails_open(self, tmp_path):
        quota = ColdQuota(tmp_path, limit=1)
        path, _reset = quota._day_path(self.NOON)
        Path(tmp_path).mkdir(exist_ok=True)
        Path(path).write_text("{torn")
        assert quota.charge("k", now=self.NOON).allowed


# ----------------------------------------------------------------------
# HTTP integration: auth
# ----------------------------------------------------------------------
class TestAuthOverHttp:
    def test_open_server_stays_open(self, tmp_path, quota_env, monkeypatch):
        monkeypatch.delenv("REPRO_API_KEYS", raising=False)
        with BackgroundServer(micro_session(tmp_path / "cache")) as server:
            status, _headers, _body = request(server, "GET", "/v1/figures")
            assert status == 200

    def test_keyed_server_401s_without_or_with_wrong_key(
        self, tmp_path, quota_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_API_KEYS", f"alice:{hash_key('s3cret')}")
        with BackgroundServer(micro_session(tmp_path / "cache")) as server:
            status, headers, body = request(server, "GET", "/v1/figures")
            assert status == 401
            assert headers.get("WWW-Authenticate") == "Bearer"
            assert json.loads(body)["status"] == 401
            status, _h, _b = request(
                server, "GET", "/v1/figures",
                headers={"Authorization": "Bearer wrong"},
            )
            assert status == 401
            # Both presentation forms of the right key work.
            status, _h, _b = request(
                server, "GET", "/v1/figures",
                headers={"Authorization": "Bearer s3cret"},
            )
            assert status == 200
            status, _h, _b = request(
                server, "GET", "/v1/figures",
                headers={"X-Repro-Api-Key": "s3cret"},
            )
            assert status == 200
            # Liveness never needs credentials.
            status, _h, _b = request(server, "GET", "/healthz")
            assert status == 200


# ----------------------------------------------------------------------
# HTTP integration: rate limiting + cold quota
# ----------------------------------------------------------------------
class TestRateLimitOverHttp:
    def test_429_with_retry_after_past_the_limit(
        self, tmp_path, quota_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RATE_LIMIT", "2")
        monkeypatch.setenv("REPRO_RATE_WINDOW", "60")
        with BackgroundServer(micro_session(tmp_path / "cache")) as server:
            # If-None-Match: * answers 304 before any work, so metered
            # requests are cheap — the limit itself is what is under test.
            probe = {"If-None-Match": "*"}
            for _ in range(2):
                status, _h, _b = request(
                    server, "GET", "/v1/figure/table3", headers=probe
                )
                assert status == 304
            status, headers, body = request(
                server, "GET", "/v1/figure/table3", headers=probe
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "X-Repro-Reset" in headers
            record = json.loads(body)
            assert record["status"] == 429
            assert record["retry_after"] > 0
            assert record["reset_at"] > 0
            # Unmetered routes keep answering under the refusal.
            assert request(server, "GET", "/healthz")[0] == 200
            assert request(server, "GET", "/v1/figures")[0] == 200


class TestColdQuotaOverHttp:
    def test_quota_prices_created_jobs_not_requests(
        self, tmp_path, quota_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_COLD_QUOTA", "1")
        with BackgroundServer(micro_session(tmp_path / "cache")) as server:
            body_a = sweep_body("A2", "SIGMA-like")
            status, headers, payload = request(server, "POST", "/v1/sweep", body_a)
            assert status == 202
            job_url = json.loads(payload)["url"]
            # Re-posting the same spec creates no second job: either it
            # coalesces (charged, then refunded) or the job already
            # finished and the answer is warm — the budget stays one
            # job deep either way.
            status, _h, _b = request(server, "POST", "/v1/sweep", body_a)
            assert status in (200, 202)
            # A *distinct* cold spec needs a second job: over quota.
            status, headers, payload = request(
                server, "POST", "/v1/sweep", sweep_body("R6", "SIGMA-like")
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            record = json.loads(payload)
            assert "quota" in record["error"]
            assert record["reset_at"] % 86400 == 0  # next UTC midnight
            # The charged job itself is unaffected; once done, re-posting
            # its spec serves the stored bytes warm (no charge).
            status, _h, done_body = poll_job(server, job_url)
            assert status == 200
            status, _h, warm_body = request(server, "POST", "/v1/sweep", body_a)
            assert status == 200
            assert warm_body == done_body


# ----------------------------------------------------------------------
# HTTP integration: load shedding, drain, saturation smoke
# ----------------------------------------------------------------------
def occupy_pool(server, slots: int):
    """Deterministically fill ``slots`` of the job pool with jobs that
    finish only when told to — no racing against real simulations."""
    held = []
    for index in range(slots):
        spec = SweepSpec(layers=("SQ5",), designs=(DESIGNS[index % 4],), scale=0.5)
        job, created = server.app.manager.coalesce(
            f"held-{index}", "sweep", spec, total=1
        )
        assert created
        held.append(job)
    return held


def release_pool(held):
    for job in held:
        job.finish(b'{"held": true}\n', '"held"', 0)


class TestLoadShedding:
    def test_shed_cold_retries_successfully_after_retry_after(
        self, tmp_path, quota_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_JOB_POOL_DEPTH", "1")
        with BackgroundServer(micro_session(tmp_path / "cache")) as server:
            held = occupy_pool(server, 1)
            body = sweep_body("A2", "SIGMA-like")
            status, headers, payload = request(server, "POST", "/v1/sweep", body)
            assert status == 503
            retry_after = int(headers["Retry-After"])
            assert retry_after >= 1
            assert "saturated" in json.loads(payload)["error"]
            # A compliant client waits Retry-After, by which time the pool
            # has turned over — the retry must be admitted, not re-shed.
            release_pool(held)
            time.sleep(retry_after)
            status, _h, payload = request(server, "POST", "/v1/sweep", body)
            assert status == 202
            status, _h, _b = poll_job(server, json.loads(payload)["url"])
            assert status == 200

    def test_draining_server_refuses_cold_serves_warm(
        self, tmp_path, quota_env, monkeypatch
    ):
        with BackgroundServer(micro_session(tmp_path / "cache")) as server:
            warm_spec = sweep_body("A2", "SIGMA-like")
            status, _h, payload = request(server, "POST", "/v1/sweep", warm_spec)
            assert status == 202
            job_url = json.loads(payload)["url"]
            status, _h, warm_bytes = poll_job(server, job_url)
            assert status == 200
            server.app.manager.begin_drain()
            # New cold work: refused with the drain window as Retry-After.
            status, headers, payload = request(
                server, "POST", "/v1/sweep", sweep_body("R6", "SIGMA-like")
            )
            assert status == 503
            assert "draining" in json.loads(payload)["error"]
            assert int(headers["Retry-After"]) >= 1
            # Warm answers and job polls keep flowing mid-drain.
            status, _h, body = request(server, "POST", "/v1/sweep", warm_spec)
            assert status == 200 and body == warm_bytes
            status, _h, body = request(server, "GET", job_url)
            assert status == 200 and body == warm_bytes
            assert request(server, "GET", "/healthz")[0] == 200

    def test_background_close_drains_in_flight_jobs(
        self, tmp_path, quota_env, monkeypatch
    ):
        server = BackgroundServer(micro_session(tmp_path / "cache"))
        with server:
            status, _h, payload = request(
                server, "POST", "/v1/sweep", sweep_body("A2", "SIGMA-like")
            )
            assert status == 202
            key = json.loads(payload)["key"]
            server.close()  # graceful: waits for the job inside the window
            job = server.app.manager.get(key)
            assert job is not None and job.finished.is_set()
            assert server.app.manager.draining


class TestSaturationSmoke:
    def test_4x_depth_concurrent_cold_never_hangs_or_5xxs(
        self, tmp_path, quota_env, monkeypatch
    ):
        """The acceptance smoke: depth K, 4×K concurrent distinct cold
        requests — every answer is 202/429/503, refusals carry
        ``Retry-After``, warm requests keep answering throughout, and
        honouring Retry-After converges every request to bytes identical
        to a serial run."""
        depth = 2
        monkeypatch.setenv("REPRO_JOB_POOL_DEPTH", str(depth))
        specs = [("A2", design) for design in DESIGNS] + [
            ("R6", design) for design in DESIGNS
        ]
        assert len(specs) == 4 * depth
        serial = micro_session(tmp_path / "serial-cache")
        expected = {
            (layer, design): (
                serial.sweep(
                    SweepSpec(layers=(layer,), designs=(design,), scale=0.05)
                ).to_json()
                + "\n"
            ).encode()
            for layer, design in specs
        }
        with BackgroundServer(micro_session(tmp_path / "cache")) as server:
            # Pre-warm one request so "warm keeps answering" is observable.
            # A distinct scale keeps it out of the cold saturation set.
            warm = json.dumps(
                {"layers": ["A2"], "designs": ["SIGMA-like"], "scale": 0.1}
            ).encode()
            status, _h, payload = request(server, "POST", "/v1/sweep", warm)
            assert status in (200, 202)
            if status == 202:
                poll_job(server, json.loads(payload)["url"])
            warm_status, _h, warm_bytes = request(server, "POST", "/v1/sweep", warm)
            assert warm_status == 200

            stop_warm = threading.Event()
            warm_statuses: list[int] = []

            def hammer_warm():
                while not stop_warm.is_set():
                    warm_statuses.append(
                        request(server, "POST", "/v1/sweep", warm)[0]
                    )

            warm_thread = threading.Thread(target=hammer_warm, daemon=True)
            warm_thread.start()
            try:
                with concurrent.futures.ThreadPoolExecutor(len(specs)) as pool:
                    first_wave = list(
                        pool.map(
                            lambda s: request(
                                server, "POST", "/v1/sweep", sweep_body(*s)
                            ),
                            specs,
                        )
                    )
            finally:
                stop_warm.set()
                warm_thread.join(timeout=30)

            seen = {status for status, _h, _b in first_wave}
            assert seen <= {202, 429, 503}, f"unexpected statuses {seen}"
            assert 503 in seen  # 4×depth concurrent cold must overflow K
            for status, headers, _body in first_wave:
                if status in (429, 503):
                    assert int(headers["Retry-After"]) >= 1
            # Warm service never degraded below 200 during the burst.
            assert warm_statuses and set(warm_statuses) == {200}

            # Retry loop honouring Retry-After: every spec must converge.
            for layer, design in specs:
                body = sweep_body(layer, design)
                deadline = time.monotonic() + 120.0
                while True:
                    status, headers, payload = request(
                        server, "POST", "/v1/sweep", body
                    )
                    if status == 200:
                        break
                    if status == 202:
                        status, _h, payload = poll_job(
                            server, json.loads(payload)["url"]
                        )
                        assert status == 200
                        break
                    assert status in (429, 503), status
                    assert time.monotonic() < deadline, "never admitted"
                    time.sleep(min(2.0, int(headers["Retry-After"])))
                assert payload == expected[(layer, design)], (layer, design)

            # And the byte-identity holds on a final warm pass too.
            for layer, design in specs:
                status, _h, payload = request(
                    server, "POST", "/v1/sweep", sweep_body(layer, design)
                )
                assert status == 200
                assert payload == expected[(layer, design)]


# ----------------------------------------------------------------------
# Request deadline (unit: no real slow simulation needed)
# ----------------------------------------------------------------------
class TestRequestDeadline:
    def test_deadline_maps_to_503_with_retry_after(self, tmp_path, monkeypatch):
        import asyncio

        monkeypatch.setenv("REPRO_REQUEST_DEADLINE", "0.05")
        app = ServeApp(micro_session(tmp_path / "cache"))
        assert app.request_deadline == 0.05

        async def wedged(_request):
            await asyncio.sleep(60.0)
            return Response(status=200)

        app.dispatch = wedged
        response = asyncio.run(
            app._dispatch_bounded(Request(method="GET", path="/v1/figures"))
        )
        assert response.status == 503
        assert int(response.headers["Retry-After"]) >= 1
        assert "deadline" in json.loads(response.body)["error"]

    def test_zero_disables_the_deadline(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REQUEST_DEADLINE", "0")
        app = ServeApp(micro_session(tmp_path / "cache"))
        assert app.request_deadline is None


class TestAdmissionFromEnv:
    def test_defaults_leave_every_policy_open(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_API_KEYS", raising=False)
        monkeypatch.delenv("REPRO_RATE_LIMIT", raising=False)
        monkeypatch.delenv("REPRO_COLD_QUOTA", raising=False)
        admission = AdmissionControl.from_env()
        assert admission.registry.open
        assert admission.admit_request(ANONYMOUS).allowed
        assert admission.admit_cold(ANONYMOUS).allowed
