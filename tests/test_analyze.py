"""Tests of the ``repro.analyze`` static-analysis pass.

Two halves:

* **Golden corpus** — every checker rule must catch its known-bad snippet
  under ``tests/analyze_corpus/`` at the expected site, and the
  ``# repro: allow[rule]`` suppressions must silence exactly their rule.
* **Live tree** — running the real checkers over ``src/repro`` must
  produce nothing beyond the committed baseline (which itself must hold
  no stale entries), and the CLI must agree via its exit code.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import knobs
from repro.analyze import RULES, run_checkers
from repro.analyze.core import load_project, read_baseline

REPO_ROOT = Path(__file__).resolve().parents[1]
CORPUS = REPO_ROOT / "tests" / "analyze_corpus"
SRC = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def corpus_findings():
    project = load_project(
        CORPUS,
        rel_base=CORPUS,
        schema_lock=CORPUS / "analyze" / "schema_lock.json",
    )
    return run_checkers(project)


def _by_context(findings):
    return {(f.rule, f.path, f.context): f for f in findings}


class TestGoldenCorpus:
    """Each rule catches its known-bad snippet at the expected site."""

    EXPECTED = {
        ("determinism", "det_bad.py", "Spec.key->time.time", 8),
        ("determinism", "det_bad.py", "Spec.key->set-iteration", 9),
        ("determinism", "rng_bad.py", "np.random.rand", 7),
        ("determinism", "rng_bad.py", "np.random.default_rng()", 11),
        ("lock-discipline", "locks_bad.py", "Counter.bump->total", 12),
        ("pickle-boundary", "pickle_bad.py", "thaw->pickle.loads", 7),
        ("env-knob", "knob_bad.py", "read_knob->REPRO_SOMETHING", 7),
        ("env-knob", "knob_bad.py", "read_knob_subscript->REPRO_OTHER", 11),
        ("wire-hygiene", "serve/app.py", "route:/v1/undocumented", 12),
        ("wire-hygiene", "repro/metrics/results.py", "schema:result:fields", 10),
        ("bare-except", "except_bad.py", "swallow->except", 7),
        ("bare-except", "except_bad.py", "swallow_broad->except", 14),
    }

    def test_every_expected_violation_fires(self, corpus_findings):
        got = {(f.rule, f.path, f.context, f.line) for f in corpus_findings}
        missing = self.EXPECTED - got
        assert not missing, f"corpus violations not caught: {sorted(missing)}"

    def test_every_rule_is_exercised(self, corpus_findings):
        fired = {f.rule for f in corpus_findings}
        assert fired == set(RULES)

    def test_no_unexpected_findings(self, corpus_findings):
        expected_keys = {(r, p, c) for r, p, c, _l in self.EXPECTED}
        unexpected = set(_by_context(corpus_findings)) - expected_keys
        assert not unexpected, f"unplanned corpus findings: {sorted(unexpected)}"

    def test_allow_comments_suppress(self, corpus_findings):
        assert not [f for f in corpus_findings if f.path == "allow_ok.py"]

    def test_legal_shapes_not_flagged(self, corpus_findings):
        contexts = {f.context for f in corpus_findings}
        # binds-and-uses broad handler passes the bare-except rule,
        assert "rewrap->except" not in contexts
        # a locked access and a _locked-suffixed helper pass lock discipline,
        assert "Counter.bump_safely->total" not in contexts
        assert "Counter._drain_locked->total" not in contexts
        # and an env write stays legal under the knob rule.
        assert "write_knob->REPRO_OTHER" not in contexts


class TestLiveTree:
    """The shipping tree is clean modulo the committed baseline."""

    @pytest.fixture(scope="class")
    def live_findings(self):
        project = load_project(
            SRC,
            readme=REPO_ROOT / "README.md",
            schema_lock=SRC / "analyze" / "schema_lock.json",
        )
        return run_checkers(project)

    def test_zero_new_findings(self, live_findings):
        baseline = read_baseline(REPO_ROOT / "analyze_baseline.txt")
        fresh = [f for f in live_findings if f.identity() not in baseline]
        assert not fresh, "new findings:\n" + "\n".join(
            f.render() for f in fresh
        )

    def test_no_stale_baseline_entries(self, live_findings):
        baseline = read_baseline(REPO_ROOT / "analyze_baseline.txt")
        current = {f.identity() for f in live_findings}
        stale = baseline - current
        assert not stale, f"baseline entries already fixed: {sorted(stale)}"

    def test_cli_check_exits_zero(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analyze", "--check"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestKnobRegistry:
    """The knob registry behind the env-knob rule."""

    def test_every_knob_documented_in_readme(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for name in knobs.KNOBS:
            assert name in readme, f"{name} missing from README"

    def test_defaults(self, monkeypatch):
        for name in knobs.KNOBS:
            monkeypatch.delenv(name, raising=False)
        assert knobs.get("REPRO_PARALLEL") is True
        assert knobs.get("REPRO_CACHE") is True
        assert knobs.get("REPRO_WORKERS") is None
        assert knobs.get("REPRO_SCHED") == "cost"
        assert knobs.get("REPRO_POOL") == "persistent"
        assert knobs.get("REPRO_LEASE_SECONDS") == 30.0
        assert knobs.get("REPRO_MAX_ATTEMPTS") == 5
        assert knobs.get("REPRO_FABRIC_PORT") == 8735
        assert knobs.get("REPRO_FULL_SCALE") is False
        assert knobs.get("REPRO_ENGINE") is None

    def test_empty_string_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "")
        assert knobs.get("REPRO_SCHED") == "cost"

    def test_parse_errors_name_the_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            knobs.get("REPRO_WORKERS")
        monkeypatch.setenv("REPRO_LEASE_SECONDS", "-3")
        with pytest.raises(ValueError, match="positive"):
            knobs.get("REPRO_LEASE_SECONDS")

    def test_unregistered_name_is_loud(self):
        with pytest.raises(KeyError):
            knobs.get("REPRO_NOT_A_KNOB")
