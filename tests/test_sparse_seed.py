"""Cross-process reproducibility of the synthetic sparse generators.

The whole caching and distribution story assumes that a seed fully
determines a generated matrix: the same ``(shape, density, pattern,
seed)`` must yield bit-identical pointers/indices/values in *any*
process, or cache keys computed on one host would describe different
inputs on another.  The static analyzer bans the global numpy RNG for
exactly this reason; these tests pin the behavioural half of the
contract.
"""

from __future__ import annotations

import hashlib
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.sparse.generate import SparsityPattern, random_sparse

REPO_ROOT = Path(__file__).resolve().parents[1]

_DIGEST_SNIPPET = """
import hashlib
import sys

from repro.sparse.generate import SparsityPattern, random_sparse

for pattern in SparsityPattern:
    m = random_sparse(64, 48, 0.2, pattern=pattern, seed=1234)
    h = hashlib.sha256()
    for arr in (m.pointers, m.indices, m.values):
        h.update(arr.tobytes())
    sys.stdout.write(f"{pattern.value}:{h.hexdigest()}\\n")
"""


def _spawn_digests() -> str:
    proc = subprocess.run(
        [sys.executable, "-c", _DIGEST_SNIPPET],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_two_processes_generate_identical_matrices():
    first = _spawn_digests()
    second = _spawn_digests()
    assert first == second
    assert len(first.strip().splitlines()) == len(SparsityPattern)


def test_subprocess_matches_in_process():
    lines = dict(
        line.split(":", 1) for line in _spawn_digests().strip().splitlines()
    )
    for pattern in SparsityPattern:
        m = random_sparse(64, 48, 0.2, pattern=pattern, seed=1234)
        h = hashlib.sha256()
        for arr in (m.pointers, m.indices, m.values):
            h.update(arr.tobytes())
        assert lines[pattern.value] == h.hexdigest(), pattern


@pytest.mark.parametrize("pattern", list(SparsityPattern))
def test_same_seed_same_matrix(pattern):
    a = random_sparse(32, 32, 0.3, pattern=pattern, seed=7)
    b = random_sparse(32, 32, 0.3, pattern=pattern, seed=7)
    np.testing.assert_array_equal(a.pointers, b.pointers)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.values, b.values)


@pytest.mark.parametrize("pattern", list(SparsityPattern))
def test_different_seeds_differ(pattern):
    a = random_sparse(32, 32, 0.3, pattern=pattern, seed=7)
    b = random_sparse(32, 32, 0.3, pattern=pattern, seed=8)
    same = (
        len(a.values) == len(b.values)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.values, b.values)
    )
    assert not same, f"seeds 7 and 8 collided for {pattern}"
