"""Unit tests of :mod:`repro.resilience` — the shared policy vocabulary.

Every class takes an injectable clock (``now=``) or RNG, so these tests
are exact: no sleeps, no timing slack, no flakes.  The behavioural
contracts asserted here are the ones the fabric and serve layers build
on — lease expiry boundaries, backoff growth and reset, breaker state
transitions, retry give-up rules.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import resilience
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    Backoff,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    LeasePolicy,
    RetryBudget,
    jittered,
    pause,
    retry_call,
)


class TestDeadline:
    def test_remaining_counts_down(self):
        deadline = Deadline.after(10.0, now=100.0)
        assert deadline.remaining(now=104.0) == pytest.approx(6.0)
        assert not deadline.expired(now=109.9)
        assert deadline.expired(now=110.0)

    def test_check_raises_once_spent(self):
        deadline = Deadline.after(1.0, now=0.0)
        deadline.check(now=0.5)
        with pytest.raises(DeadlineExceeded):
            deadline.check(now=1.5)

    def test_wall_clock_default(self):
        # No injected clock: a generous budget is not yet expired.
        assert not Deadline.after(3600.0).expired()


class TestBackoff:
    def test_exponential_growth_to_the_cap(self):
        backoff = Backoff(1.0, cap=4.0, multiplier=2.0, jitter=0.0)
        assert [backoff.next_delay() for _ in range(4)] == [1.0, 2.0, 4.0, 4.0]

    def test_reset_snaps_back_to_initial(self):
        backoff = Backoff(1.0, cap=60.0, multiplier=2.0, jitter=0.0)
        backoff.next_delay()
        backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() == 1.0

    def test_jitter_spreads_but_never_goes_negative(self):
        backoff = Backoff(1.0, cap=60.0, jitter=0.5, rng=random.Random(7))
        delays = [backoff.next_delay() for _ in range(50)]
        assert all(delay >= 0.0 for delay in delays)
        assert len(set(delays)) > 1  # the noise is real

    def test_from_env_reads_the_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKOFF_INITIAL", "2.5")
        monkeypatch.setenv("REPRO_BACKOFF_CAP", "40")
        monkeypatch.setenv("REPRO_BACKOFF_MULTIPLIER", "3")
        backoff = Backoff.from_env()
        assert backoff.initial == 2.5
        assert backoff.cap == 40.0
        assert backoff.multiplier == 3.0

    def test_from_env_caller_pins_initial(self):
        assert Backoff.from_env(initial=0.01).initial == 0.01


class TestJittered:
    def test_bounded_spread(self):
        rng = random.Random(3)
        values = [jittered(10.0, fraction=0.1, rng=rng) for _ in range(100)]
        assert all(9.0 <= value <= 11.0 for value in values)
        assert len(set(values)) > 1

    def test_zero_and_negative_are_clamped(self):
        assert jittered(0.0, fraction=0.5) == 0.0
        assert jittered(-1.0, fraction=0.5) == 0.0

    def test_fraction_defaults_to_the_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKOFF_JITTER", "0")
        assert jittered(5.0) == 5.0


class TestRetryBudget:
    def test_grants_exactly_the_budget(self):
        budget = RetryBudget(3)
        assert [budget.grant() for _ in range(5)] == [True, True, True, False, False]
        assert budget.exhausted

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_ATTEMPTS", "2")
        assert RetryBudget.from_env().attempts == 2


class TestLeasePolicy:
    def test_deadline_and_budget_come_from_the_policy(self):
        policy = LeasePolicy(lease_seconds=30.0, max_attempts=5)
        deadline = policy.lease_deadline(now=100.0)
        assert deadline.expires_at == pytest.approx(130.0)
        assert policy.lease_budget().attempts == 5

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_SECONDS", "7")
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "2")
        policy = LeasePolicy.from_env()
        assert policy.lease_seconds == 7.0
        assert policy.max_attempts == 2


class TestCircuitBreaker:
    def test_opens_at_the_threshold_only_once(self):
        breaker = CircuitBreaker(threshold=3, reset_seconds=10.0)
        assert breaker.record_failure(now=0.0) is False
        assert breaker.record_failure(now=1.0) is False
        assert breaker.record_failure(now=2.0) is True  # the transition
        assert breaker.state == OPEN
        assert breaker.opened_count == 1

    def test_open_refuses_until_cooldown_then_probes_once(self):
        breaker = CircuitBreaker(threshold=1, reset_seconds=10.0)
        breaker.record_failure(now=0.0)
        assert not breaker.allow(now=5.0)
        assert breaker.cooldown(now=5.0) == pytest.approx(5.0)
        # Cooldown passed: exactly one half-open probe is admitted.
        assert breaker.allow(now=10.0)
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(now=10.0)

    def test_successful_probe_closes(self):
        breaker = CircuitBreaker(threshold=1, reset_seconds=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=10.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow(now=10.0)

    def test_failed_probe_reopens_for_another_cooldown(self):
        breaker = CircuitBreaker(threshold=1, reset_seconds=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=10.0)
        assert breaker.record_failure(now=10.0) is True  # re-open transition
        assert not breaker.allow(now=15.0)
        assert breaker.allow(now=20.0)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, reset_seconds=10.0)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        assert breaker.record_failure(now=1.0) is False  # streak restarted
        assert breaker.state == CLOSED

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "9")
        monkeypatch.setenv("REPRO_BREAKER_RESET", "3.5")
        breaker = CircuitBreaker.from_env()
        assert breaker.threshold == 9
        assert breaker.reset_seconds == 3.5


class TestPause:
    def test_stop_event_interrupts_and_reports(self):
        stop = threading.Event()
        stop.set()
        assert pause(60.0, stop) is True  # returns immediately

    def test_plain_sleep_returns_false(self):
        assert pause(0.0) is False


class TestRetryCall:
    def test_returns_first_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        result = retry_call(
            flaky,
            retryable=(OSError,),
            budget=RetryBudget(5),
            backoff=Backoff(0.0, cap=0.0, jitter=0.0),
        )
        assert result == "done"
        assert len(calls) == 3

    def test_exhausted_budget_raises_the_last_error(self):
        def always_fails():
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            retry_call(
                always_fails,
                retryable=(OSError,),
                budget=RetryBudget(3),
                backoff=Backoff(0.0, cap=0.0, jitter=0.0),
            )

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def wrong():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(wrong, retryable=(OSError,), budget=RetryBudget(5))
        assert len(calls) == 1

    def test_giveup_vetoes_a_retryable_error(self):
        calls = []

        def refused():
            calls.append(1)
            raise ConnectionRefusedError("nope")

        with pytest.raises(ConnectionRefusedError):
            retry_call(
                refused,
                retryable=(OSError,),
                giveup=lambda error: isinstance(error, ConnectionRefusedError),
                budget=RetryBudget(5),
            )
        assert len(calls) == 1

    def test_stop_event_abandons_the_wait(self):
        stop = threading.Event()
        calls = []

        def fail_and_trip():
            calls.append(1)
            stop.set()
            raise OSError("down")

        with pytest.raises(OSError):
            retry_call(
                fail_and_trip,
                retryable=(OSError,),
                budget=RetryBudget(10),
                backoff=Backoff(0.0, cap=0.0, jitter=0.0),
                stop=stop,
            )
        assert len(calls) == 1  # the set stop event cut the loop short

    def test_log_narrates_retries(self):
        lines = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise OSError("blip")
            return "ok"

        retry_call(
            flaky,
            retryable=(OSError,),
            budget=RetryBudget(3),
            backoff=Backoff(0.0, cap=0.0, jitter=0.0),
            log=lines.append,
            describe="unit fetch",
        )
        assert any("unit fetch" in line for line in lines)


class TestKnobAccessors:
    def test_http_timeout_default(self):
        assert resilience.http_timeout() == 60.0

    def test_request_deadline_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_REQUEST_DEADLINE", "0")
        assert resilience.request_deadline_seconds() is None
        monkeypatch.setenv("REPRO_REQUEST_DEADLINE", "12.5")
        assert resilience.request_deadline_seconds() == 12.5

    def test_drain_seconds_default(self):
        assert resilience.drain_seconds() == 10.0
