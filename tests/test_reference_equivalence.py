"""Property-style equivalence tests: every dataflow vs the dense reference.

The three dataflow families (six variants) in :mod:`repro.dataflows` are the
algorithmic ground truth the hardware models consume; this suite pins them to
the dense-numpy reference in :mod:`repro.sparse.reference` across a grid of
random sparsities, seeds, shapes and non-zero patterns, so a runtime or
engine refactor can never silently change *what* is being computed.
"""

from __future__ import annotations

import pytest

from repro.dataflows import Dataflow, run_dataflow
from repro.sparse import random_sparse
from repro.sparse.generate import SparsityPattern
from repro.sparse.reference import dense_matmul, matrices_allclose, spgemm_reference

#: (m, k, n) shapes: square, wide, tall and degenerate inner dimension.
SHAPES = ((24, 24, 24), (17, 31, 9), (40, 6, 33))
DENSITIES = (0.05, 0.25, 0.6)
SEEDS = (0, 1, 2)


def _operands(shape, density_a, density_b, seed, pattern=SparsityPattern.UNIFORM):
    m, k, n = shape
    a = random_sparse(m, k, density=density_a, pattern=pattern, seed=seed)
    b = random_sparse(k, n, density=density_b, pattern=pattern, seed=seed + 1000)
    return a, b


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("dataflow", list(Dataflow), ids=lambda d: d.name)
def test_every_dataflow_matches_dense_reference(dataflow, density, seed):
    a, b = _operands(SHAPES[seed % len(SHAPES)], density, density, seed)
    result = run_dataflow(dataflow, a, b, num_multipliers=16)
    assert matrices_allclose(result.output, dense_matmul(a, b)), (
        dataflow,
        density,
        seed,
    )


@pytest.mark.parametrize("dataflow", list(Dataflow), ids=lambda d: d.name)
@pytest.mark.parametrize(
    "pattern",
    (SparsityPattern.ROW_SKEWED, SparsityPattern.BANDED, SparsityPattern.BLOCK),
    ids=lambda p: p.value,
)
def test_dataflows_match_reference_on_structured_patterns(dataflow, pattern):
    a, b = _operands((20, 28, 22), 0.3, 0.2, seed=7, pattern=pattern)
    result = run_dataflow(dataflow, a, b, num_multipliers=8)
    assert matrices_allclose(result.output, dense_matmul(a, b)), (dataflow, pattern)


@pytest.mark.parametrize("dataflow", list(Dataflow), ids=lambda d: d.name)
def test_dataflows_match_reference_on_asymmetric_sparsity(dataflow):
    """Very sparse activations against near-dense weights and vice versa."""
    for density_a, density_b in ((0.02, 0.9), (0.9, 0.02)):
        a, b = _operands((26, 18, 30), density_a, density_b, seed=11)
        result = run_dataflow(dataflow, a, b, num_multipliers=16)
        assert matrices_allclose(result.output, dense_matmul(a, b)), (
            dataflow,
            density_a,
            density_b,
        )


@pytest.mark.parametrize("dataflow", list(Dataflow), ids=lambda d: d.name)
def test_dataflows_handle_an_empty_operand(dataflow):
    a, b = _operands((12, 10, 14), 0.0, 0.4, seed=3)
    result = run_dataflow(dataflow, a, b, num_multipliers=4)
    assert matrices_allclose(result.output, dense_matmul(a, b))
    assert result.stats.multiplications == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_sparse_reference_agrees_with_dense_reference(seed):
    """The two ground truths must agree with each other, too."""
    a, b = _operands((21, 19, 23), 0.3, 0.35, seed=seed)
    assert matrices_allclose(spgemm_reference(a, b), dense_matmul(a, b))
