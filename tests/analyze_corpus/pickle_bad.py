"""Golden corpus: pickle boundary violation."""

import pickle


def thaw(blob: bytes):
    return pickle.loads(blob)  # line 7: raw loads outside the allowlist
