"""Golden corpus: a mounted route missing from the route table.

Routes::

    GET /v1/documented    the only route this docstring admits to
"""


def routes() -> dict:
    return {
        "/v1/documented": "ok",
        "/v1/undocumented": "oops",  # line 12: absent from the docstring
    }
