"""Golden corpus: numpy global-RNG use (banned repo-wide)."""

import numpy as np


def make_noise(n: int):
    return np.random.rand(n)  # line 7: hidden global RNG


def make_generator():
    return np.random.default_rng()  # line 11: entropy-seeded generator
