"""Golden corpus: env-knob registry bypass."""

import os


def read_knob() -> str | None:
    return os.environ.get("REPRO_SOMETHING")  # line 7: direct REPRO_* read


def read_knob_subscript() -> str:
    return os.environ["REPRO_OTHER"]  # line 11: subscript read


def write_knob() -> None:
    os.environ["REPRO_OTHER"] = "1"  # writes stay legal
