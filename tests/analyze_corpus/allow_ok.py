"""Golden corpus: violations silenced by ``# repro: allow[rule]``."""

import pickle


def thaw_with_excuse(blob: bytes):
    # Suppressed on the line itself.
    return pickle.loads(blob)  # repro: allow[pickle-boundary]


def swallow_with_excuse() -> int:
    try:
        return 1
    # repro: allow[bare-except] -- suppressed from the comment line above
    except Exception:
        return 0
