"""Golden corpus: determinism violations on a cache-key path."""

import time


class Spec:
    def key(self) -> str:
        stamp = time.time()  # line 8: banned clock on a key path
        parts = [item for item in {1, 2, 3}]  # line 9: set iteration
        return f"{stamp}-{parts}"
