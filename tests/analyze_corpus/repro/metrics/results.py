"""Golden corpus: wire dataclass drift without a schema-version bump.

The committed ``analyze/schema_lock.json`` next to this corpus records a
different field digest under the *same* version number, which is exactly
the drift the wire-hygiene checker exists to catch.
"""

from dataclasses import dataclass

RESULT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class LayerResult:
    cycles: int
    traffic_bytes: int
    sneaky_new_field: int
