"""Golden corpus: lock-discipline violation."""

import threading


class Counter:
    def __init__(self) -> None:
        self.total = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def bump(self) -> None:
        self.total += 1  # line 12: guarded attribute touched without the lock

    def bump_safely(self) -> None:
        with self._lock:
            self.total += 1

    def _drain_locked(self) -> int:
        value, self.total = self.total, 0  # exempt: _locked-suffixed helper
        return value
