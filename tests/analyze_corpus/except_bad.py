"""Golden corpus: bare-except violations."""


def swallow() -> int:
    try:
        return 1
    except:  # line 7: literal bare except
        return 0


def swallow_broad() -> int:
    try:
        return 1
    except Exception:  # line 14: broad, silent, unexcused
        return 0


def rewrap() -> int:
    try:
        return 1
    except Exception as error:  # fine: binds and uses
        raise RuntimeError(f"wrapped: {error}") from None
