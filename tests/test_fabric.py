"""Tests of the distributed execution fabric (``repro.fabric``).

Covers the fabric's four contracts:

* **Protocol** — the lease queue's claim/heartbeat/complete lifecycle:
  FIFO claims, front-of-queue requeue on lease expiry, heartbeat
  extension, first-valid-completion-wins, bounded lease budgets, and the
  verification gate (recomputed digests, trial unpickles, outcome counts,
  content-key-only extras) that keeps a corrupt upload out of the cache.
* **Bit-equivalence** — a sweep through ``REPRO_POOL=remote`` plus worker
  loops produces byte-identical ``SweepResult`` JSON and an identical
  cache key inventory to the local pool, on fixed and randomized grids.
* **Fault convergence** — chaos workers (``die_after``/``stall``/
  ``corrupt``, the :mod:`fabric_chaos` harness) leave no orphaned lease
  and never change the final bytes.
* **HTTP surfaces** — the standalone coordinator listener, the routes
  mounted on the serve front-end, the ``python -m repro worker``
  subprocess, and ``cache pull`` anti-entropy replication.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import pickle
import random
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from fabric_chaos import (
    ChaosClient,
    start_worker,
    start_worker_after,
    wait_until,
    worker_fleet,
)
from repro import resilience
from repro.api import Session, SweepSpec
from repro.arch.config import default_config
from repro.experiments.settings import default_settings
from repro.fabric import (
    Chaos,
    Coordinator,
    FabricError,
    RemoteExecutor,
    RemoteWorkerError,
    WorkQueue,
    parse_chaos,
    pull_cache,
    reset_shared_fabric,
    set_shared_coordinator,
    wire,
)
from repro.runtime import BatchRunner, ResultCache, SimJob, reset_shared_pool
from repro.runtime.jobs import execute_chunk
from repro.serve import BackgroundServer
from repro.serve.wire import CONTENT_DIGEST_HEADER
from repro.workloads.representative import REPRESENTATIVE_LAYERS

#: Same micro budgets as tests/test_serve.py, so every grid stays tiny.
MICRO = default_settings(max_dense_macs=5e4, max_layers_per_model=1)

#: The chaos-scenario workload: 8 jobs the cost planner packs into two
#: chunks at ``max_workers=4`` — one chunk to complete honestly, one to
#: lose to the injected fault and recover elsewhere.
CHAOS_SPEC = SweepSpec(layers=("R6", "A2"), scale=0.05)


@pytest.fixture(autouse=True)
def _fabric_hygiene():
    """Every test gets (and leaves behind) a fresh shared coordinator."""
    reset_shared_fabric()
    yield
    reset_shared_fabric()


def _job(design: str = "SIGMA-like", index: int = 0, **overrides) -> SimJob:
    spec = REPRESENTATIVE_LAYERS[index]
    kwargs = dict(
        design=design,
        config=default_config(),
        spec=spec,
        scale=0.05,
        seed=spec.deterministic_seed(0),
        layer_name=spec.name,
    )
    kwargs.update(overrides)
    return SimJob(**kwargs)


def _chunk(count: int = 1) -> list[tuple[str, SimJob]]:
    jobs = [_job(index=index) for index in range(count)]
    return [(job.key(), job) for job in jobs]


def _completion(item: dict, outcomes, error: str | None = None, extras=()) -> dict:
    """A well-formed upload record for one claimed item."""
    return {
        "item_id": item["item_id"],
        "outcomes": [
            wire.encode_blob(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
            for value in outcomes
        ],
        "extras": [{"key": key, **wire.encode_blob(blob)} for key, blob in extras],
        "error": error,
    }


def _content_key(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWire:
    def test_blob_roundtrip(self):
        record = wire.encode_blob(b"payload bytes")
        assert record["sha256"] == wire.digest(b"payload bytes")
        assert wire.decode_blob(record) == b"payload bytes"

    def test_tampered_blob_is_rejected(self):
        record = wire.encode_blob(b"payload bytes")
        record["sha256"] = wire.digest(b"something else")
        with pytest.raises(wire.IntegrityError, match="sha256"):
            wire.decode_blob(record)

    def test_malformed_base64_is_rejected(self):
        with pytest.raises(wire.IntegrityError):
            wire.decode_blob({"data": "!!not base64!!", "sha256": "0" * 64})

    def test_content_key_gate(self):
        assert wire.is_content_key(_content_key("x"))
        assert not wire.is_content_key(_content_key("x").upper())
        assert not wire.is_content_key("ab" * 16)  # too short
        assert not wire.is_content_key("../" + "a" * 61)  # traversal alphabet

    def test_jobs_roundtrip_preserves_keys(self):
        jobs = [_job(index=0), _job(index=1, design="GAMMA-like")]
        decoded = wire.decode_jobs(wire.encode_jobs(jobs))
        assert [job.key() for job in decoded] == [job.key() for job in jobs]

    def test_decode_jobs_rejects_foreign_payloads(self):
        payload = wire.encode_blob(
            pickle.dumps(["not", "jobs"], protocol=pickle.HIGHEST_PROTOCOL)
        )
        with pytest.raises(wire.IntegrityError):
            wire.decode_jobs(payload)

    def test_parse_chaos(self):
        assert parse_chaos(None) is None
        assert parse_chaos("") is None
        assert parse_chaos("die_after:2") == Chaos("die_after", 2)
        assert parse_chaos("stall") == Chaos("stall", 0)
        assert parse_chaos("corrupt") == Chaos("corrupt", 0)
        with pytest.raises(ValueError, match="integer"):
            parse_chaos("die_after:soon")
        with pytest.raises(ValueError, match="no argument"):
            parse_chaos("stall:5")
        with pytest.raises(ValueError, match="unknown"):
            parse_chaos("explode")


# ----------------------------------------------------------------------
# The lease queue protocol
# ----------------------------------------------------------------------
class TestWorkQueue:
    def test_claims_are_fifo(self):
        queue = WorkQueue(lease_seconds=30)
        queue.submit_chunk(_chunk(1))
        queue.submit_chunk(_chunk(2))
        first, outstanding = queue.claim("w1")
        second, _ = queue.claim("w1")
        assert outstanding == 2
        assert [item["item_id"] for item in first + second] == ["w00000001", "w00000002"]
        assert first[0]["attempt"] == 1

    def test_empty_chunk_is_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            WorkQueue(lease_seconds=30).submit_chunk([])

    def test_claim_on_an_empty_queue_grants_nothing(self):
        items, outstanding = WorkQueue(lease_seconds=30).claim("w1", max_items=4)
        assert items == [] and outstanding == 0

    def test_expired_lease_requeues_at_the_front(self):
        queue = WorkQueue(lease_seconds=0.05, max_attempts=5)
        queue.submit_chunk(_chunk(1))
        queue.submit_chunk(_chunk(2))
        (claimed,), _ = queue.claim("w1")
        time.sleep(0.12)
        rescued, _ = queue.claim("w2", max_items=2)
        # The expired item comes back first — ahead of never-claimed work.
        assert [item["item_id"] for item in rescued] == [
            claimed["item_id"],
            "w00000002",
        ]
        assert rescued[0]["attempt"] == 2
        assert queue.snapshot()["requeued_leases"] == 1

    def test_heartbeat_extends_a_live_lease(self):
        queue = WorkQueue(lease_seconds=0.2, max_attempts=5)
        queue.submit_chunk(_chunk(1))
        queue.submit_chunk(_chunk(2))
        (claimed,), _ = queue.claim("w1")
        for _ in range(4):  # hold well past the original deadline
            time.sleep(0.08)
            outcome = queue.heartbeat("w1", [claimed["item_id"]])
            assert outcome["extended"] == [claimed["item_id"]]
        others, _ = queue.claim("w2", max_items=2)
        assert [item["item_id"] for item in others] == ["w00000002"]
        assert queue.snapshot()["requeued_leases"] == 0

    def test_heartbeat_reports_lost_and_unknown_leases(self):
        queue = WorkQueue(lease_seconds=30)
        queue.submit_chunk(_chunk(1))
        (claimed,), _ = queue.claim("w1")
        outcome = queue.heartbeat("somebody-else", [claimed["item_id"], "w99999999"])
        assert outcome["extended"] == []
        assert outcome["lost"] == [claimed["item_id"], "w99999999"]

    def test_exhausted_lease_budget_fails_the_future(self):
        queue = WorkQueue(lease_seconds=0.02, max_attempts=2)
        future = queue.submit_chunk(_chunk(1))
        for attempt in (1, 2):
            (claimed,), _ = queue.claim("w1")
            assert claimed["attempt"] == attempt
            time.sleep(0.05)
        items, _ = queue.claim("w1")  # the sweep that burns the last lease
        assert items == []
        assert future.done()
        outcomes, error = future.result()
        assert outcomes == []
        assert isinstance(error, RemoteWorkerError)
        assert "gave up" in str(error)
        snapshot = queue.snapshot()
        assert snapshot["failed"] == 1 and snapshot["outstanding"] == 0
        # A straggler's otherwise-valid completion is answered as stale.
        outcome = queue.complete("w1", _completion(claimed, [{"late": True}]))
        assert outcome == {"status": "stale", "item_id": claimed["item_id"]}

    def test_valid_completion_resolves_the_future(self, tmp_path):
        queue = WorkQueue(lease_seconds=30)
        extra_key = _content_key("nested trial")
        extra_blob = pickle.dumps({"trial": 1}, protocol=pickle.HIGHEST_PROTOCOL)
        future = queue.submit_chunk(_chunk(2), extras_dir=str(tmp_path))
        (claimed,), _ = queue.claim("w1")
        outcome = queue.complete(
            "w1",
            _completion(claimed, ["r0", "r1"], extras=[(extra_key, extra_blob)]),
        )
        assert outcome == {"status": "accepted", "item_id": claimed["item_id"]}
        assert future.result() == (["r0", "r1"], None)
        # Extras landed byte-for-byte in the batch's cache directory.
        assert ResultCache(tmp_path).get_blob(extra_key) == extra_blob
        assert queue.snapshot()["done"] == 1

    def test_error_completion_accepts_a_prefix(self):
        queue = WorkQueue(lease_seconds=30)
        future = queue.submit_chunk(_chunk(2))
        (claimed,), _ = queue.claim("w1")
        queue.complete("w1", _completion(claimed, ["r0"], error="RuntimeError: boom"))
        outcomes, error = future.result()
        assert outcomes == ["r0"]
        assert isinstance(error, RemoteWorkerError) and "boom" in str(error)

    def test_wrong_outcome_count_is_rejected_and_requeued(self):
        queue = WorkQueue(lease_seconds=30)
        future = queue.submit_chunk(_chunk(2))
        (claimed,), _ = queue.claim("w1")
        with pytest.raises(FabricError) as excinfo:
            queue.complete("w1", _completion(claimed, ["only one"]))
        assert excinfo.value.status == 400
        snapshot = queue.snapshot()
        assert snapshot["rejected_uploads"] == 1
        assert snapshot["pending"] == 1  # back on the queue, not poisoned
        assert not future.done()

    def test_digest_mismatch_is_rejected(self):
        queue = WorkQueue(lease_seconds=30)
        queue.submit_chunk(_chunk(1))
        (claimed,), _ = queue.claim("w1")
        record = _completion(claimed, ["result"])
        record["outcomes"][0]["sha256"] = wire.digest(b"someone else's bytes")
        with pytest.raises(FabricError, match="corrupt upload"):
            queue.complete("w1", record)
        assert queue.snapshot()["rejected_uploads"] == 1

    def test_extras_never_overwrite_existing_entries(self, tmp_path):
        """Extras keys are worker-declared, so they may only fill absent
        cache entries — a completion naming an already-present key must
        leave the original bytes untouched."""
        existing_key = _content_key("already present")
        original = pickle.dumps({"original": True}, protocol=pickle.HIGHEST_PROTOCOL)
        ResultCache(tmp_path).put_blob(existing_key, original)
        fresh_key = _content_key("genuinely new")
        fresh_blob = pickle.dumps({"fresh": True}, protocol=pickle.HIGHEST_PROTOCOL)
        imposter = pickle.dumps({"imposter": True}, protocol=pickle.HIGHEST_PROTOCOL)
        queue = WorkQueue(lease_seconds=30)
        queue.submit_chunk(_chunk(1), extras_dir=str(tmp_path))
        (claimed,), _ = queue.claim("w1")
        queue.complete(
            "w1",
            _completion(
                claimed,
                ["r0"],
                extras=[(existing_key, imposter), (fresh_key, fresh_blob)],
            ),
        )
        cache = ResultCache(tmp_path)
        assert cache.get_blob(existing_key) == original
        assert cache.get_blob(fresh_key) == fresh_blob

    def test_extras_must_carry_content_keys(self, tmp_path):
        queue = WorkQueue(lease_seconds=30)
        queue.submit_chunk(_chunk(1), extras_dir=str(tmp_path))
        (claimed,), _ = queue.claim("w1")
        blob = pickle.dumps({"x": 1}, protocol=pickle.HIGHEST_PROTOCOL)
        with pytest.raises(FabricError, match="no valid key"):
            queue.complete(
                "w1", _completion(claimed, ["r0"], extras=[("../escape", blob)])
            )
        assert ResultCache(tmp_path).entry_count() == 0

    def test_completion_must_name_a_known_item(self):
        queue = WorkQueue(lease_seconds=30)
        with pytest.raises(FabricError) as excinfo:
            queue.complete("w1", {"item_id": "w00000042", "outcomes": []})
        assert excinfo.value.status == 404
        with pytest.raises(FabricError) as excinfo:
            queue.complete("w1", {"outcomes": []})
        assert excinfo.value.status == 400

    def test_duplicate_completion_is_idempotent(self):
        queue = WorkQueue(lease_seconds=30)
        queue.submit_chunk(_chunk(1))
        (claimed,), _ = queue.claim("w1")
        record = _completion(claimed, ["result"])
        assert queue.complete("w1", record)["status"] == "accepted"
        assert queue.complete("w2", record)["status"] == "duplicate"
        assert queue.snapshot()["completed_items"] == 1

    def test_late_valid_completion_wins_over_requeue(self):
        """An expired worker that finishes anyway still lands its result."""
        queue = WorkQueue(lease_seconds=0.03, max_attempts=5)
        future = queue.submit_chunk(_chunk(1))
        (claimed,), _ = queue.claim("slow")
        time.sleep(0.08)
        assert queue.snapshot()["pending"] == 1  # sweep requeued the item
        assert queue.complete("slow", _completion(claimed, ["late"]))["status"] == (
            "accepted"
        )
        assert future.result() == (["late"], None)
        items, _ = queue.claim("other")  # nothing left to hand out
        assert items == []

    def test_cancelled_future_skips_execution(self):
        queue = WorkQueue(lease_seconds=30)
        future = queue.submit_chunk(_chunk(1))
        future.cancel()
        items, outstanding = queue.claim("w1")
        assert items == [] and outstanding == 0
        assert queue.snapshot()["failed"] == 1

    def test_env_knob_validation(self, monkeypatch):
        from repro.fabric import lease_seconds_from_env, max_attempts_from_env

        monkeypatch.setenv("REPRO_LEASE_SECONDS", "2.5")
        assert lease_seconds_from_env() == 2.5
        monkeypatch.setenv("REPRO_LEASE_SECONDS", "-1")
        with pytest.raises(ValueError, match="positive"):
            lease_seconds_from_env()
        monkeypatch.setenv("REPRO_LEASE_SECONDS", "soon")
        with pytest.raises(ValueError, match="number"):
            lease_seconds_from_env()
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "3")
        assert max_attempts_from_env() == 3
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "0")
        with pytest.raises(ValueError, match="at least 1"):
            max_attempts_from_env()


# ----------------------------------------------------------------------
# The Executor face the batch runner sees
# ----------------------------------------------------------------------
class TestRemoteExecutor:
    def test_only_execute_chunk_is_dispatchable(self):
        executor = RemoteExecutor(WorkQueue(lease_seconds=30))
        with pytest.raises(TypeError, match="execute_chunk"):
            executor.submit(print, ["job"])

    def test_submission_becomes_a_keyed_item(self):
        queue = WorkQueue(lease_seconds=30)
        executor = RemoteExecutor(queue)
        job = _job()
        future = executor.submit(execute_chunk, [job], trial_cache=None)
        (claimed,), _ = queue.claim("w1")
        assert claimed["keys"] == [job.key()]
        queue.complete("w1", _completion(claimed, ["outcome"]))
        assert future.result() == (["outcome"], None)

    def test_trial_cache_reduces_to_its_directory(self, tmp_path):
        queue = WorkQueue(lease_seconds=30)
        executor = RemoteExecutor(queue)
        executor.submit(execute_chunk, [_job()], trial_cache=ResultCache(tmp_path))
        executor.submit(execute_chunk, [_job(index=1)], trial_cache=str(tmp_path))
        executor.submit(execute_chunk, [_job(index=2)])
        dirs = [item.extras_dir for item in queue._items.values()]
        assert dirs == [str(tmp_path), str(tmp_path), None]


# ----------------------------------------------------------------------
# Bit-equivalence with local execution (the tentpole acceptance)
# ----------------------------------------------------------------------
def _local_reference(spec: SweepSpec, cache_dir) -> tuple[str, list[str]]:
    """One serial local run: the JSON text and cache key inventory every
    remote scenario must reproduce exactly."""
    runner = BatchRunner(parallel=False, cache=ResultCache(cache_dir))
    result = Session(MICRO, runner=runner).sweep(spec)
    return result.to_json(), sorted(ResultCache(cache_dir).keys())


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The chaos workload's local truth, computed once for the module."""
    return _local_reference(CHAOS_SPEC, tmp_path_factory.mktemp("reference"))


def _remote_session(spec_dir, *, lease_seconds=30.0, max_attempts=5):
    """A session whose runner dispatches to a fresh shared coordinator.

    Returns ``(session, queue, coordinator cache dir)``; workers are the
    caller's to stage (that is the point of the chaos scenarios).
    """
    queue = WorkQueue(lease_seconds=lease_seconds, max_attempts=max_attempts)
    coordinator_dir = Path(spec_dir) / "coordinator"
    set_shared_coordinator(Coordinator(queue, cache=ResultCache(coordinator_dir)))
    runner = BatchRunner(
        parallel=True,
        max_workers=4,
        pool_mode="remote",
        cache=ResultCache(coordinator_dir),
    )
    return Session(MICRO, runner=runner), queue, coordinator_dir


class TestRemoteEquivalence:
    def test_remote_pool_matches_local_bytes_and_keys(self, tmp_path, reference):
        session, queue, coordinator_dir = _remote_session(tmp_path)
        specs = [
            {"cache_dir": tmp_path / "worker-0"},
            {"cache_dir": tmp_path / "worker-1"},
        ]
        with worker_fleet(queue, specs) as fleet:
            result = session.sweep(CHAOS_SPEC)
            executed_cold = session.runner.stats.executed
            warm = session.sweep(CHAOS_SPEC)
        reference_json, reference_keys = reference
        assert result.to_json() == reference_json
        assert sorted(ResultCache(coordinator_dir).keys()) == reference_keys
        snapshot = queue.snapshot()
        assert snapshot["pending"] == 0 and snapshot["leased"] == 0
        assert snapshot["done"] == 2  # the planner's two chunks, no retries
        assert sum(member.report.completed for member in fleet) == 2
        # The warm pass answers from the coordinator cache: same bytes,
        # zero new executions, zero new queue traffic.
        assert warm.to_json() == reference_json
        assert session.runner.stats.executed == executed_cold
        assert queue.snapshot()["done"] == 2

    @pytest.mark.parametrize("seed", [20260806, 8735])
    def test_randomized_grids_match_the_persistent_pool(self, tmp_path, seed):
        """Property-style: a random SweepSpec grid executes bit-identically
        under ``REPRO_POOL=persistent`` and the remote fabric."""
        rng = random.Random(seed)
        spec = SweepSpec(
            layers=tuple(rng.sample(["R6", "A2", "SQ5"], k=rng.randint(1, 2))),
            designs=tuple(
                rng.sample(
                    ["SIGMA-like", "SpArch-like", "GAMMA-like", "CPU-MKL"],
                    k=rng.randint(2, 3),
                )
            ),
            scale=0.05,
        )
        local_dir = tmp_path / "local"
        try:
            local = Session(
                MICRO,
                runner=BatchRunner(
                    parallel=True,
                    max_workers=2,
                    pool_mode="persistent",
                    cache=ResultCache(local_dir),
                ),
            ).sweep(spec)
        finally:
            reset_shared_pool()
        session, queue, coordinator_dir = _remote_session(tmp_path)
        specs = [
            {"cache_dir": tmp_path / "worker-0"},
            {"cache_dir": tmp_path / "worker-1"},
        ]
        with worker_fleet(queue, specs):
            remote = session.sweep(spec)
        assert remote.to_json() == local.to_json()
        assert sorted(ResultCache(coordinator_dir).keys()) == sorted(
            ResultCache(local_dir).keys()
        )
        assert queue.snapshot()["outstanding"] == 0


# ----------------------------------------------------------------------
# Fault injection: every scenario converges to the same bytes
# ----------------------------------------------------------------------
class TestChaosConvergence:
    def test_dead_workers_lease_is_requeued_and_rescued(self, tmp_path, reference):
        """``die_after:1``: the worker completes one chunk, then vanishes
        holding the second chunk's lease; a rescuer started only after the
        death must inherit the chunk via lease expiry."""
        session, queue, coordinator_dir = _remote_session(
            tmp_path, lease_seconds=0.4, max_attempts=10
        )
        mortal = start_worker(
            queue,
            worker_id="mortal",
            cache_dir=tmp_path / "w-mortal",
            chaos=Chaos("die_after", 1),
        )
        rescuers = start_worker_after(
            lambda: mortal.report.died,
            queue,
            worker_id="rescuer",
            cache_dir=tmp_path / "w-rescue",
        )
        try:
            result = session.sweep(CHAOS_SPEC)
        finally:
            mortal.stop()
            for member in rescuers:
                member.stop()
        assert mortal.report.died and mortal.report.completed == 1
        rescuer = wait_until(lambda: rescuers and rescuers[0], message="rescuer")
        assert rescuer.report.completed == 1
        snapshot = queue.snapshot()
        assert snapshot["requeued_leases"] >= 1
        assert snapshot["pending"] == 0 and snapshot["leased"] == 0
        reference_json, reference_keys = reference
        assert result.to_json() == reference_json
        assert sorted(ResultCache(coordinator_dir).keys()) == reference_keys

    def test_stalled_workers_chunk_is_reexecuted_elsewhere(
        self, tmp_path, reference
    ):
        """``stall``: the worker claims a chunk and hangs without
        heartbeating; the chunk must run to completion on a healthy worker
        while the staller still holds its dead lease."""
        session, queue, coordinator_dir = _remote_session(
            tmp_path, lease_seconds=0.4, max_attempts=10
        )
        staller = start_worker(
            queue,
            worker_id="staller",
            cache_dir=tmp_path / "w-stall",
            chaos=Chaos("stall"),
        )
        healthy = start_worker_after(
            lambda: staller.report.stalled,
            queue,
            worker_id="healthy",
            cache_dir=tmp_path / "w-healthy",
        )
        try:
            result = session.sweep(CHAOS_SPEC)
        finally:
            staller.stop()  # releases the stall wait too
            for member in healthy:
                member.stop()
        assert staller.report.stalled and staller.report.completed == 0
        snapshot = queue.snapshot()
        assert snapshot["requeued_leases"] >= 1
        assert snapshot["pending"] == 0 and snapshot["leased"] == 0
        assert snapshot["done"] == 2  # both chunks, one of them rescued
        reference_json, reference_keys = reference
        assert result.to_json() == reference_json
        assert sorted(ResultCache(coordinator_dir).keys()) == reference_keys

    def test_corrupt_uploads_never_poison_the_cache(self, tmp_path, reference):
        """``corrupt``: every upload from the chaos worker fails digest
        re-verification; the coordinator must reject each one, requeue the
        work, and let a healthy worker land the real bytes."""
        session, queue, coordinator_dir = _remote_session(
            tmp_path, lease_seconds=5.0, max_attempts=20
        )
        corruptor = start_worker(
            queue,
            worker_id="corruptor",
            cache_dir=tmp_path / "w-corrupt",
            chaos=Chaos("corrupt"),
            poll_seconds=0.2,  # let the healthy worker win requeued claims
        )
        healthy = start_worker_after(
            lambda: corruptor.report.rejected,
            queue,
            worker_id="healthy",
            cache_dir=tmp_path / "w-healthy",
        )
        try:
            result = session.sweep(CHAOS_SPEC)
        finally:
            corruptor.stop()
            for member in healthy:
                member.stop()
        assert corruptor.report.completed == 0
        assert corruptor.report.rejected >= 1
        assert any(
            "corrupt upload" in message
            for message in corruptor.report.rejected_messages
        )
        snapshot = queue.snapshot()
        assert snapshot["rejected_uploads"] >= 1
        assert snapshot["pending"] == 0 and snapshot["leased"] == 0
        reference_json, reference_keys = reference
        assert result.to_json() == reference_json
        # The cache holds exactly the local run's keys and every stored
        # blob still decodes — nothing corrupt ever landed.
        coordinator_cache = ResultCache(coordinator_dir)
        assert sorted(coordinator_cache.keys()) == reference_keys
        for key in coordinator_cache.keys():
            pickle.loads(coordinator_cache.get_blob(key))

    def test_exhausted_lease_budget_fails_the_batch(self, tmp_path):
        """With only a corrupting worker and one lease allowed per item,
        the queue gives up and the runner surfaces the failure instead of
        hanging forever on an unresolvable future."""
        session, queue, _ = _remote_session(
            tmp_path, lease_seconds=30.0, max_attempts=1
        )
        corruptor = start_worker(
            queue,
            worker_id="corruptor",
            cache_dir=tmp_path / "w-corrupt",
            chaos=Chaos("corrupt"),
        )
        try:
            with pytest.raises(RemoteWorkerError, match="gave up"):
                session.sweep(CHAOS_SPEC)
        finally:
            corruptor.stop()
        assert queue.snapshot()["failed"] >= 1


# ----------------------------------------------------------------------
# Coordinator-path chaos: the worker's backoff ladder and breaker
# ----------------------------------------------------------------------
class TestCoordinatorChaos:
    def test_slow_coordinator_converges_bit_identically(self, tmp_path, reference):
        """``slow_coordinator``: every claim/heartbeat/complete is delayed;
        the sweep must still converge to the local run's exact bytes —
        latency on the control path may slow a sweep, never change it."""
        session, queue, coordinator_dir = _remote_session(tmp_path)
        slow = ChaosClient(queue, "slow_coordinator", delay=0.02)
        specs = [
            {"cache_dir": tmp_path / "worker-0"},
            {"cache_dir": tmp_path / "worker-1"},
        ]
        with worker_fleet(slow, specs) as fleet:
            result = session.sweep(CHAOS_SPEC)
        assert slow.calls >= 2  # the delay path actually ran
        assert sum(member.report.completed for member in fleet) == 2
        reference_json, reference_keys = reference
        assert result.to_json() == reference_json
        assert sorted(ResultCache(coordinator_dir).keys()) == reference_keys
        assert queue.snapshot()["outstanding"] == 0

    def test_refused_connections_open_the_breaker_then_recover(
        self, tmp_path, reference
    ):
        """``refuse_conn``: a dead coordinator trips the worker's circuit
        breaker — attempts against it stay bounded by the half-open probe
        cadence instead of the poll rate — and once the coordinator comes
        back, the same worker completes the sweep bit-identically."""
        session, queue, coordinator_dir = _remote_session(tmp_path)
        dead = ChaosClient(queue, "refuse_conn", failures=float("inf"))
        member = start_worker(
            dead,
            worker_id="patient",
            cache_dir=tmp_path / "w-patient",
            breaker=resilience.CircuitBreaker(threshold=3, reset_seconds=0.05),
        )
        try:
            wait_until(
                lambda: member.report.breaker_opens >= 1,
                message="breaker to open",
            )
            # While the breaker holds, connection attempts are probes, not
            # polls: over a multi-reset observation window the worker must
            # attempt far fewer times than its 10 ms poll cadence would.
            refused_at_open = dead.refused
            time.sleep(0.4)
            assert dead.refused - refused_at_open <= 10
            assert member.report.claimed == 0
            # The coordinator comes back: the next half-open probe succeeds,
            # the breaker closes, and the sweep completes on this worker.
            dead.failures = 0
            result = session.sweep(CHAOS_SPEC)
        finally:
            member.stop()
        assert member.report.breaker_opens >= 1
        assert member.report.claim_failures >= 3  # at least the threshold
        assert member.report.completed == 2
        reference_json, reference_keys = reference
        assert result.to_json() == reference_json
        assert sorted(ResultCache(coordinator_dir).keys()) == reference_keys


# ----------------------------------------------------------------------
# HTTP surfaces: standalone listener, serve-mounted routes, CLI worker
# ----------------------------------------------------------------------
def _http(server, method, path, body=None, headers=None):
    """One HTTP exchange; returns ``(status, headers-dict, body-bytes)``."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=120)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def _poll(server, url, deadline_seconds=120.0):
    deadline = time.monotonic() + deadline_seconds
    while True:
        status, headers, body = _http(server, "GET", url)
        if status != 202:
            return status, headers, body
        assert time.monotonic() < deadline, "job did not finish in time"
        time.sleep(0.05)


class TestHttpFabric:
    def test_standalone_listener_speaks_the_whole_protocol(self, tmp_path):
        queue = WorkQueue(lease_seconds=30)
        cache = ResultCache(tmp_path / "coordinator")
        coordinator = Coordinator(queue, cache=cache)
        set_shared_coordinator(coordinator)  # the hygiene fixture closes it
        url = coordinator.ensure_listener(port=0)
        assert coordinator.url == url

        with urllib.request.urlopen(url + "/healthz", timeout=60) as response:
            assert json.loads(response.read())["status"] == "ok"

        # Cache replication routes: inventory, entry bytes, digest header,
        # and the content-key gate on the entry path.
        key = _content_key("replicated entry")
        blob = pickle.dumps({"hello": "fabric"}, protocol=pickle.HIGHEST_PROTOCOL)
        cache.put_blob(key, blob)
        with urllib.request.urlopen(url + "/v1/cache/keys", timeout=60) as response:
            inventory = json.loads(response.read())
        assert inventory["kind"] == "cache_keys" and key in inventory["keys"]
        with urllib.request.urlopen(
            url + "/v1/cache/entry/" + key, timeout=60
        ) as response:
            assert response.headers[CONTENT_DIGEST_HEADER] == wire.digest(blob)
            assert response.read() == blob
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url + "/v1/cache/entry/" + "zz" * 32, timeout=60)
        assert excinfo.value.code == 404

        # Work routes, driven by a real worker over HTTP: the future the
        # runner would wait on resolves to locally-identical outcomes.
        job = _job()
        future = queue.submit_chunk([(job.key(), job)])
        member = start_worker(url, worker_id="http-worker", cache_dir=tmp_path / "w0")
        try:
            outcomes, error = future.result(timeout=180)
        finally:
            member.stop()
        assert error is None and len(outcomes) == 1
        local_outcomes, local_error = execute_chunk([job], trial_cache=None)
        assert local_error is None
        assert outcomes[0].total_cycles == local_outcomes[0].total_cycles

        with urllib.request.urlopen(url + "/v1/work/stats", timeout=60) as response:
            stats = json.loads(response.read())
        assert stats["kind"] == "work_stats"
        assert stats["done"] == 1 and stats["outstanding"] == 0

    def test_serve_front_end_is_a_coordinator_surface(self, tmp_path):
        """The full remote-sweep lifecycle through ``repro.serve``: cold 202,
        workers drain over the same port, poll to 200, bytes identical to a
        local serial session, warm repeat with zero executions, and
        anti-entropy ``cache pull`` of everything the sweep deposited."""
        cache_dir = tmp_path / "serve-cache"
        queue = WorkQueue(lease_seconds=30)
        serve_cache = ResultCache(cache_dir)
        set_shared_coordinator(Coordinator(queue, cache=serve_cache))
        session = Session(
            MICRO,
            runner=BatchRunner(
                parallel=True,
                max_workers=4,
                pool_mode="remote",
                cache=ResultCache(cache_dir),
            ),
        )
        spec = SweepSpec(
            layers=("R6", "A2"), designs=("SIGMA-like", "GAMMA-like"), scale=0.05
        )
        body = json.dumps(
            {"layers": ["R6", "A2"], "designs": ["SIGMA-like", "GAMMA-like"],
             "scale": 0.05}
        ).encode()
        with BackgroundServer(session) as server:
            url = f"http://127.0.0.1:{server.port}"
            specs = [
                {"cache_dir": tmp_path / "worker-0"},
                {"cache_dir": tmp_path / "worker-1"},
            ]
            with worker_fleet(url, specs):
                status, headers, payload = _http(
                    server, "POST", "/v1/sweep", body,
                    {"Content-Type": "application/json"},
                )
                assert status == 202, payload
                status, headers, payload = _poll(server, headers["Location"])
            assert status == 200
            local = Session(
                MICRO,
                runner=BatchRunner(
                    parallel=False, cache=ResultCache(tmp_path / "local")
                ),
            ).sweep(spec)
            assert payload == (local.to_json() + "\n").encode()

            status, _headers, stats_body = _http(server, "GET", "/v1/work/stats")
            assert status == 200
            stats = json.loads(stats_body)
            assert stats["kind"] == "work_stats" and stats["done"] >= 1

            # Warm repeat: answered synchronously from the finished job.
            status, headers, warm_payload = _http(
                server, "POST", "/v1/sweep", body,
                {"Content-Type": "application/json"},
            )
            assert status == 200
            assert headers["X-Repro-Jobs-Executed"] == "0"
            assert warm_payload == payload

            # Anti-entropy replication into a fresh peer cache.
            pulled = ResultCache(tmp_path / "pulled")
            report = pull_cache(pulled, url)
            assert report.remote_entries > 0 and report.skipped == 0
            assert report.fetched == report.remote_entries
            assert sorted(pulled.keys()) == sorted(serve_cache.keys())
            again = pull_cache(pulled, url)
            assert again.fetched == 0
            assert again.already_present == again.remote_entries

    def test_plain_serve_does_not_mount_fabric_routes(self, tmp_path):
        """A query-only serve instance (local pool) must not carry the
        pickle-deserializing fabric surface at all — every fabric path
        answers 404, exactly like any unknown route."""
        session = Session(
            MICRO,
            runner=BatchRunner(parallel=False, cache=ResultCache(tmp_path / "c")),
        )
        with BackgroundServer(session) as server:
            for method, path, body in [
                ("GET", "/v1/work/stats", None),
                ("GET", "/v1/cache/keys", None),
                ("POST", "/v1/work/claim", json.dumps({"worker": "rogue"}).encode()),
                ("POST", "/v1/work/complete", json.dumps({"item_id": "w1"}).encode()),
            ]:
                status, _headers, _payload = _http(
                    server, method, path, body,
                    {"Content-Type": "application/json"} if body else None,
                )
                assert status == 404, (method, path)
            # The ordinary query surface is untouched by the gating.
            status, _headers, _payload = _http(server, "GET", "/healthz")
            assert status == 200

    def test_big_bodies_only_pass_on_the_upload_route(self, tmp_path):
        """Even on a coordinator surface, the 64 MiB bound applies to
        ``/v1/work/complete`` alone — a tiny-JSON route keeps the 1 MiB
        bound and answers 413 to an oversized body."""
        queue = WorkQueue(lease_seconds=30)
        set_shared_coordinator(
            Coordinator(queue, cache=ResultCache(tmp_path / "c"))
        )
        session = Session(
            MICRO,
            runner=BatchRunner(
                parallel=True,
                max_workers=2,
                pool_mode="remote",
                cache=ResultCache(tmp_path / "c"),
            ),
        )
        big = json.dumps({"item_id": "w99999999", "pad": "x" * (2 << 20)}).encode()
        with BackgroundServer(session) as server:
            status, _headers, _payload = _http(
                server, "POST", "/v1/sweep", big,
                {"Content-Type": "application/json"},
            )
            assert status == 413
            # The upload route reads the same body fine (and then rejects
            # it for naming an unknown item, proving it got past the bound).
            status, _headers, _payload = _http(
                server, "POST", "/v1/work/complete", big,
                {"Content-Type": "application/json"},
            )
            assert status == 404

    def test_worker_cli_subprocess_end_to_end(self, tmp_path):
        """``python -m repro worker <url>`` — the real deployment shape —
        claims and completes a chunk against a live listener."""
        queue = WorkQueue(lease_seconds=30)
        coordinator = Coordinator(queue, cache=ResultCache(tmp_path / "coordinator"))
        set_shared_coordinator(coordinator)
        url = coordinator.ensure_listener(port=0)
        job = _job()
        future = queue.submit_chunk([(job.key(), job)])
        repo = Path(__file__).resolve().parent.parent
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker", url,
                "--id", "subprocess-worker",
                "--cache-dir", str(tmp_path / "worker-cache"),
                "--poll-seconds", "0.05",
            ],
            cwd=repo,
            env={**os.environ, "PYTHONPATH": str(repo / "src")},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            outcomes, error = future.result(timeout=300)
        finally:
            process.terminate()
            stderr = process.communicate(timeout=60)[1].decode()
        assert error is None and len(outcomes) == 1, stderr
        assert "subprocess-worker polling" in stderr
        assert queue.snapshot()["done"] == 1


# ----------------------------------------------------------------------
# Authentication and exposure gates
# ----------------------------------------------------------------------
class TestFabricAuth:
    def test_dispatch_requires_the_token_when_configured(self, monkeypatch):
        from repro.fabric import api
        from repro.serve.http import Request

        queue = WorkQueue(lease_seconds=30)

        def stats(headers):
            return api.dispatch_route(
                "/v1/work/stats",
                Request(method="GET", path="/v1/work/stats", headers=headers),
                queue,
                None,
            )

        monkeypatch.delenv("REPRO_FABRIC_TOKEN", raising=False)
        assert stats({}).status == 200  # tokenless deployments stay open
        monkeypatch.setenv("REPRO_FABRIC_TOKEN", "fabric-secret")
        assert stats({}).status == 403
        assert stats({api.TOKEN_HEADER.lower(): "wrong"}).status == 403
        assert stats({api.TOKEN_HEADER.lower(): "fabric-secret"}).status == 200

    def test_non_loopback_listener_requires_a_token(self, monkeypatch):
        monkeypatch.delenv("REPRO_FABRIC_TOKEN", raising=False)
        coordinator = Coordinator(WorkQueue(lease_seconds=30), cache=None)
        try:
            with pytest.raises(ValueError, match="REPRO_FABRIC_TOKEN"):
                coordinator.ensure_listener(host="0.0.0.0", port=0)
            assert coordinator.url is None
            monkeypatch.setenv("REPRO_FABRIC_TOKEN", "fabric-secret")
            assert coordinator.ensure_listener(host="0.0.0.0", port=0)
        finally:
            coordinator.close()

    def test_token_protected_listener_end_to_end(self, tmp_path, monkeypatch):
        """With the secret exported, a tokenless client is refused while the
        worker and ``cache pull`` (which read the same variable) work."""
        monkeypatch.setenv("REPRO_FABRIC_TOKEN", "fabric-secret")
        queue = WorkQueue(lease_seconds=30)
        cache = ResultCache(tmp_path / "coordinator")
        coordinator = Coordinator(queue, cache=cache)
        set_shared_coordinator(coordinator)  # the hygiene fixture closes it
        url = coordinator.ensure_listener(port=0)

        for route in ("/v1/work/stats", "/v1/cache/keys"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url + route, timeout=60)
            assert excinfo.value.code == 403, route

        job = _job()
        future = queue.submit_chunk([(job.key(), job)])
        member = start_worker(url, worker_id="tokened", cache_dir=tmp_path / "w0")
        try:
            outcomes, error = future.result(timeout=180)
        finally:
            member.stop()
        assert error is None and len(outcomes) == 1

        pulled = ResultCache(tmp_path / "pulled")
        report = pull_cache(pulled, url)
        assert report.skipped == 0
        assert sorted(pulled.keys()) == sorted(cache.keys())

    def test_pull_skips_entries_without_a_digest_header(
        self, tmp_path, monkeypatch
    ):
        """A peer (or proxy) that strips the digest header gets its entries
        skipped — 'digest-verified before storing' is strict, not
        best-effort."""
        from repro.fabric import sync

        key = _content_key("naked entry")
        blob = pickle.dumps({"x": 1}, protocol=pickle.HIGHEST_PROTOCOL)

        class FakeResponse:
            def __init__(self, payload, headers):
                self._payload = payload
                self.headers = headers

            def read(self):
                return self._payload

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

        def fake_open(url, timeout):
            if url.endswith("/v1/cache/keys"):
                return FakeResponse(json.dumps({"keys": [key]}).encode(), {})
            return FakeResponse(blob, {})  # digest header stripped

        monkeypatch.setattr(sync, "_open", fake_open)
        report = pull_cache(ResultCache(tmp_path), "http://peer")
        assert report.remote_entries == 1
        assert report.skipped == 1 and report.fetched == 0
        assert ResultCache(tmp_path).get_blob(key) is None
