"""Tests for the accelerator configuration (Table 5)."""

import dataclasses

import pytest

from repro.arch.config import AcceleratorConfig, DramConfig, default_config


class TestDefaults:
    def test_table5_defaults(self):
        cfg = default_config()
        assert cfg.num_multipliers == 64
        assert cfg.num_adders == 63
        assert cfg.distribution_bandwidth == 16
        assert cfg.reduction_bandwidth == 16
        assert cfg.word_bits == 32
        assert cfg.l1_latency_cycles == 1
        assert cfg.sta_fifo_bytes == 256
        assert cfg.str_cache_bytes == 1 * 1024**2
        assert cfg.str_cache_line_bytes == 128
        assert cfg.str_cache_associativity == 16
        assert cfg.str_cache_banks == 16
        assert cfg.psram_bytes == 256 * 1024
        assert cfg.dram.size_bytes == 16 * 1024**3
        assert cfg.dram.access_time_ns == pytest.approx(100.0)
        assert cfg.dram.bandwidth_bytes_per_s == pytest.approx(256e9)

    def test_derived_quantities(self):
        cfg = default_config()
        assert cfg.element_bytes == 4
        assert cfg.str_cache_sets == (1024**2 // 128) // 16
        assert cfg.str_cache_elements_per_line == 32
        assert cfg.psram_blocks == 256 * 1024 // 128
        assert cfg.psram_elements_per_block == 32
        assert cfg.sta_fifo_elements == 64
        # 100 ns at 800 MHz is 80 cycles.
        assert cfg.dram_latency_cycles == 80
        assert cfg.dram_bytes_per_cycle == pytest.approx(256e9 / 800e6)

    def test_cycles_to_seconds(self):
        cfg = default_config()
        assert cfg.cycles_to_seconds(800e6) == pytest.approx(1.0)


class TestOverridesAndValidation:
    def test_default_config_overrides(self):
        cfg = default_config(num_multipliers=128)
        assert cfg.num_multipliers == 128
        assert cfg.num_adders == 127  # adjusted automatically

    def test_explicit_adder_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(num_multipliers=64, num_adders=10)

    def test_zero_multipliers_rejected(self):
        with pytest.raises(ValueError):
            default_config(num_multipliers=0)

    def test_cache_geometry_validation(self):
        with pytest.raises(ValueError):
            default_config(str_cache_bytes=1000)  # not a multiple of line size
        with pytest.raises(ValueError):
            default_config(str_cache_bytes=128 * 8, str_cache_associativity=16)

    def test_psram_geometry_validation(self):
        with pytest.raises(ValueError):
            default_config(psram_bytes=1000)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            default_config(distribution_bandwidth=0)

    def test_config_is_frozen(self):
        cfg = default_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.num_multipliers = 32


class TestScaling:
    def test_scaled_shrinks_srams(self):
        cfg = default_config()
        small = cfg.scaled(0.25)
        assert small.str_cache_bytes < cfg.str_cache_bytes
        assert small.psram_bytes < cfg.psram_bytes
        # Geometry invariants still hold (construction would raise otherwise).
        assert small.str_cache_bytes % small.str_cache_line_bytes == 0

    def test_scaled_keeps_minimum_geometry(self):
        cfg = default_config()
        tiny = cfg.scaled(1e-6)
        assert tiny.str_cache_bytes >= tiny.str_cache_line_bytes * tiny.str_cache_associativity
        assert tiny.psram_bytes >= tiny.psram_block_bytes * tiny.psram_banks

    def test_scaled_identity(self):
        cfg = default_config()
        assert cfg.scaled(1.0).str_cache_bytes in (cfg.str_cache_bytes, cfg.str_cache_bytes // 2 * 2)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_config().scaled(0.0)

    def test_dram_config_standalone(self):
        dram = DramConfig(access_time_ns=50.0, bandwidth_bytes_per_s=128e9)
        cfg = default_config(dram=dram)
        assert cfg.dram_latency_cycles == 40
        assert cfg.dram_bytes_per_cycle == pytest.approx(128e9 / 800e6)
