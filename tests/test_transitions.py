"""Tests for the inter-layer dataflow transition table (Table 4)."""

import pytest

from repro.dataflows import (
    Dataflow,
    requires_explicit_conversion,
    transition_table,
)
from repro.dataflows.transitions import produced_layout, required_activation_layout
from repro.sparse import Layout

M_STATIONARY = [Dataflow.IP_M, Dataflow.OP_M, Dataflow.GUST_M]
N_STATIONARY = [Dataflow.IP_N, Dataflow.OP_N, Dataflow.GUST_N]

#: Table 4 of the paper, verbatim: rows are the first layer's dataflow,
#: columns the second layer's, True means an Explicit Conversion is required.
PAPER_TABLE4 = {
    Dataflow.IP_M:   {Dataflow.IP_M: False, Dataflow.OP_M: True,  Dataflow.GUST_M: False,
                      Dataflow.IP_N: False, Dataflow.OP_N: True,  Dataflow.GUST_N: True},
    Dataflow.OP_M:   {Dataflow.IP_M: False, Dataflow.OP_M: True,  Dataflow.GUST_M: False,
                      Dataflow.IP_N: False, Dataflow.OP_N: True,  Dataflow.GUST_N: True},
    Dataflow.GUST_M: {Dataflow.IP_M: False, Dataflow.OP_M: True,  Dataflow.GUST_M: False,
                      Dataflow.IP_N: False, Dataflow.OP_N: True,  Dataflow.GUST_N: True},
    Dataflow.IP_N:   {Dataflow.IP_M: True,  Dataflow.OP_M: False, Dataflow.GUST_M: True,
                      Dataflow.IP_N: True,  Dataflow.OP_N: False, Dataflow.GUST_N: False},
    Dataflow.OP_N:   {Dataflow.IP_M: True,  Dataflow.OP_M: False, Dataflow.GUST_M: True,
                      Dataflow.IP_N: True,  Dataflow.OP_N: False, Dataflow.GUST_N: False},
    Dataflow.GUST_N: {Dataflow.IP_M: True,  Dataflow.OP_M: False, Dataflow.GUST_M: True,
                      Dataflow.IP_N: True,  Dataflow.OP_N: False, Dataflow.GUST_N: False},
}


class TestProducedLayout:
    @pytest.mark.parametrize("dataflow", M_STATIONARY, ids=lambda d: d.name)
    def test_m_stationary_produces_csr(self, dataflow):
        assert produced_layout(dataflow) is Layout.CSR

    @pytest.mark.parametrize("dataflow", N_STATIONARY, ids=lambda d: d.name)
    def test_n_stationary_produces_csc(self, dataflow):
        assert produced_layout(dataflow) is Layout.CSC


class TestRequiredActivationLayout:
    def test_matches_table3_a_formats(self):
        assert required_activation_layout(Dataflow.IP_M) is Layout.CSR
        assert required_activation_layout(Dataflow.OP_M) is Layout.CSC
        assert required_activation_layout(Dataflow.GUST_M) is Layout.CSR
        assert required_activation_layout(Dataflow.IP_N) is Layout.CSR
        assert required_activation_layout(Dataflow.OP_N) is Layout.CSC
        assert required_activation_layout(Dataflow.GUST_N) is Layout.CSC


class TestTransitionTable:
    @pytest.mark.parametrize("previous", list(Dataflow), ids=lambda d: d.name)
    @pytest.mark.parametrize("following", list(Dataflow), ids=lambda d: d.name)
    def test_every_cell_matches_paper_table4(self, previous, following):
        assert (
            requires_explicit_conversion(previous, following)
            is PAPER_TABLE4[previous][following]
        )

    def test_table_object_consistent_with_function(self):
        table = transition_table()
        for prev in Dataflow:
            for nxt in Dataflow:
                assert table.needs_conversion[prev][nxt] == requires_explicit_conversion(
                    prev, nxt
                )

    def test_every_dataflow_has_three_free_successors(self):
        """Each row of Table 4 has exactly three conversion-free transitions."""
        table = transition_table()
        for prev in Dataflow:
            assert len(table.allowed_without_conversion(prev)) == 3

    def test_as_rows_renders_all_cells(self):
        rows = transition_table().as_rows()
        assert len(rows) == 6
        for row in rows:
            assert len(row) == 7  # previous + 6 successors
            assert set(row.values()) <= {"ok", "EC"} | {row["previous"]}
