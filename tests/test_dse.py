"""Tests of the design-space-exploration subsystem (``repro.dse``).

Covers the subsystem's four contracts:

* **MatrixMarket loader** — 1-based coordinate indexing, symmetric mirror
  expansion, pattern-only files, CRLF/comment tolerance, and the failure
  mode: every corrupt file raises :class:`MatrixMarketError` naming the
  offending ``file:line``, and the size-line bounds reject oversized files
  before any entry is read.
* **Registries** — workloads and design points resolve by name with
  self-describing errors; matrix workload digests derive from content, not
  paths; ``REPRO_DSE_DIR`` auto-registers dropped ``*.mtx`` files.
* **Determinism** — the same campaign renders byte-identical Pareto
  reports across fresh sessions, the second run executing zero engine
  jobs, locally and through the remote fabric with a real worker loop.
* **Surfaces** — ``POST /v1/dse`` + ``GET /v1/dse/<key>`` lifecycle, the
  ``cache prune --prefix`` eviction scope, and the sweep CLI's DSE hints.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from fabric_chaos import worker_fleet
from repro.api import Session
from repro.cli import main as cli_main
from repro.dse import designs as designs_module
from repro.dse import workloads as workloads_module
from repro.dse.designs import (
    BUILTIN_DESIGN_POINTS,
    default_design_points,
    enumerate_designs,
    get_design_point,
)
from repro.dse.explore import DseSpec, _pareto_front, dse_report_key
from repro.dse.workloads import (
    MatrixMarketError,
    get_workload,
    load_matrix_market,
    matrix_workload,
    register_workload,
    transformer_pruning,
    workload_names,
)
from repro.experiments.settings import default_settings
from repro.fabric import Coordinator, WorkQueue, reset_shared_fabric, set_shared_coordinator
from repro.runtime import BatchRunner, ResultCache
from repro.serve import BackgroundServer

from test_serve import poll_job, request

#: Same micro budgets as tests/test_serve.py: synthetic workloads scale to
#: a 5e4-MAC budget, so every campaign grid stays sub-second.
MICRO = default_settings(max_dense_macs=5e4, max_layers_per_model=1)

#: The determinism workload: 1 workload x 2 design points = 2 engine jobs.
CAMPAIGN = DseSpec(workloads=("xf-prune-80",), designs=("base", "xbar16"))


def micro_session(cache_dir, **runner_kwargs) -> Session:
    kwargs = dict(parallel=False, cache=ResultCache(cache_dir))
    kwargs.update(runner_kwargs)
    return Session(MICRO, runner=BatchRunner(**kwargs))


def write_mtx(directory, text: str, name: str = "test.mtx", newline: str = "\n"):
    """Write a MatrixMarket file from ``text`` (one entry per ``|``-free line)."""
    lines = [line.strip() for line in text.strip().splitlines()]
    path = directory / name
    path.write_bytes((newline.join(lines) + newline).encode())
    return path


@pytest.fixture(autouse=True)
def _registry_hygiene():
    """Tests register throwaway workloads; never leak them into the catalog.

    ``/v1/figures`` and ``list --json`` render the registry into a
    golden-pinned catalog, so a leaked registration here would fail
    ``tests/test_serve.py`` depending on execution order.
    """
    workloads_before = dict(workloads_module._REGISTRY)
    designs_before = dict(designs_module._REGISTRY)
    yield
    workloads_module._REGISTRY.clear()
    workloads_module._REGISTRY.update(workloads_before)
    designs_module._REGISTRY.clear()
    designs_module._REGISTRY.update(designs_before)


# ----------------------------------------------------------------------
# MatrixMarket parsing
# ----------------------------------------------------------------------
class TestMatrixMarketParsing:
    def test_general_real_entries_are_one_based(self, tmp_path):
        path = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate real general
            3 4 3
            1 1 5.0
            3 4 -2.5
            2 2 1.5
            """,
        )
        matrix = load_matrix_market(path)
        assert matrix.shape == (3, 4)
        dense = matrix.to_dense()
        assert dense[0, 0] == 5.0  # file coordinate (1, 1)
        assert dense[2, 3] == -2.5  # file coordinate (3, 4)
        assert dense[1, 1] == 1.5
        assert matrix.nnz == 3

    def test_symmetric_mirrors_off_diagonal_only(self, tmp_path):
        path = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate real symmetric
            3 3 3
            1 1 4.0
            2 1 7.0
            3 2 9.0
            """,
        )
        dense = load_matrix_market(path).to_dense()
        assert np.array_equal(dense, dense.T)
        assert dense[0, 0] == 4.0  # the diagonal entry is NOT doubled
        assert dense[1, 0] == 7.0 and dense[0, 1] == 7.0
        assert load_matrix_market(path).nnz == 5  # 3 stored + 2 mirrored

    def test_pattern_entries_become_ones(self, tmp_path):
        path = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate pattern general
            2 2 2
            1 2
            2 1
            """,
        )
        dense = load_matrix_market(path).to_dense()
        assert dense[0, 1] == 1.0 and dense[1, 0] == 1.0

    def test_crlf_line_endings_and_comments_parse(self, tmp_path):
        path = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate real general
            % a comment line
            2 2 1
            % another comment between size and entries
            1 2 3.0
            """,
            newline="\r\n",
        )
        dense = load_matrix_market(path).to_dense()
        assert dense[0, 1] == 3.0

    def test_duplicates_accumulate_and_explicit_zeros_drop(self, tmp_path):
        path = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate real general
            2 2 3
            1 1 2.0
            1 1 3.0
            2 2 0.0
            """,
        )
        matrix = load_matrix_market(path)
        assert matrix.to_dense()[0, 0] == 5.0
        assert matrix.nnz == 1  # the explicit zero is not stored

    def test_zero_based_index_error_names_line_and_convention(self, tmp_path):
        path = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate real general
            2 2 1
            0 1 1.0
            """,
            name="zero.mtx",
        )
        with pytest.raises(MatrixMarketError, match=r"zero\.mtx:3: .*1-based"):
            load_matrix_market(path)

    def test_malformed_entry_error_names_line_number(self, tmp_path):
        path = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate real general
            2 2 2
            1 1 1.0
            2 2 not-a-number
            """,
            name="bad.mtx",
        )
        with pytest.raises(MatrixMarketError, match=r"bad\.mtx:4: malformed entry"):
            load_matrix_market(path)

    def test_wrong_field_count_is_rejected(self, tmp_path):
        path = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate pattern general
            2 2 1
            1 1 1.0
            """,
        )
        with pytest.raises(MatrixMarketError, match="expected 2 fields per entry"):
            load_matrix_market(path)

    def test_entry_count_must_match_declaration(self, tmp_path):
        short = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate real general
            2 2 2
            1 1 1.0
            """,
            name="short.mtx",
        )
        with pytest.raises(MatrixMarketError, match="declares 2 entries but provides 1"):
            load_matrix_market(short)
        long = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate real general
            2 2 1
            1 1 1.0
            2 2 1.0
            """,
            name="long.mtx",
        )
        with pytest.raises(MatrixMarketError, match="more entries than the declared 1"):
            load_matrix_market(long)

    @pytest.mark.parametrize(
        "header, fragment",
        [
            ("%%MatrixMarket matrix array real general", "coordinate"),
            ("%%MatrixMarket matrix coordinate complex general", "unsupported field"),
            ("%%MatrixMarket matrix coordinate real hermitian", "unsupported symmetry"),
            ("% not a MatrixMarket file", "missing '%%MatrixMarket' header"),
        ],
    )
    def test_unsupported_headers_are_rejected(self, tmp_path, header, fragment):
        path = write_mtx(tmp_path, f"{header}\n1 1 0")
        with pytest.raises(MatrixMarketError, match=f"test\\.mtx:1: .*{fragment}"):
            load_matrix_market(path)

    def test_size_bounds_reject_before_reading_entries(self, tmp_path):
        path = write_mtx(
            tmp_path,
            """
            %%MatrixMarket matrix coordinate real general
            10 10 3
            1 1 1.0
            2 2 1.0
            3 3 1.0
            """,
        )
        with pytest.raises(MatrixMarketError, match="REPRO_DSE_MAX_NNZ bound of 2"):
            load_matrix_market(path, max_nnz=2)
        with pytest.raises(MatrixMarketError, match="REPRO_DSE_MAX_DIM bound of 5"):
            load_matrix_market(path, max_dim=5)
        assert load_matrix_market(path, max_nnz=3, max_dim=10).nnz == 3


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
class TestWorkloadRegistry:
    def test_builtins_resolve_and_unknown_names_the_options(self):
        assert "xf-prune-80" in workload_names()
        assert get_workload("gnn-cora").kind == "synthetic"
        with pytest.raises(ValueError, match="unknown workload 'nope'.*xf-prune-80"):
            get_workload("nope")

    def test_conflicting_registration_raises_equal_is_noop(self):
        register_workload(transformer_pruning("xf-prune-80"))  # equal: no-op
        with pytest.raises(ValueError, match="already registered"):
            register_workload(transformer_pruning("xf-prune-80", seq_len=128))

    def test_matrix_digest_is_content_not_path(self, tmp_path):
        text = """
        %%MatrixMarket matrix coordinate real general
        2 2 2
        1 1 1.0
        2 2 2.0
        """
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        first = matrix_workload("w1", write_mtx(tmp_path / "a", text))
        second = matrix_workload("w2", write_mtx(tmp_path / "b", text, name="other.mtx"))
        assert first.digest() == second.digest()
        changed = matrix_workload(
            "w3", write_mtx(tmp_path, text.replace("2.0", "3.0"), name="c.mtx")
        )
        assert changed.digest() != first.digest()

    def test_square_matrix_squares_itself_rectangular_uses_transpose(self, tmp_path):
        square = matrix_workload(
            "sq",
            write_mtx(
                tmp_path,
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0",
                name="sq.mtx",
            ),
        )
        a, b = square.operands()
        assert a is b
        rect = matrix_workload(
            "rect",
            write_mtx(
                tmp_path,
                "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 3 1.0",
                name="rect.mtx",
            ),
        )
        a, b = rect.operands()
        assert a.shape == (2, 3) and b.shape == (3, 2)
        assert np.array_equal(b.to_dense(), a.to_dense().T)

    def test_dse_dir_auto_registers_mtx_files_by_stem(self, tmp_path, monkeypatch):
        write_mtx(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0",
            name="webgraph.mtx",
        )
        monkeypatch.setenv("REPRO_DSE_DIR", str(tmp_path))
        assert "webgraph" in workload_names()
        workload = get_workload("webgraph")
        assert workload.kind == "matrix"
        assert workload.operands()[0].nnz == 1


class TestDesignRegistry:
    def test_families_enumerate_and_resolve(self):
        names = default_design_points()
        assert "base" in names
        assert {get_design_point(name).family for name in names} == {
            "baseline",
            "crossbar",
            "memory",
            "stacked",
        }
        crossbar = enumerate_designs(family="crossbar")
        assert [point.name for point in crossbar] == ["xbar16", "xbar32", "xbar128"]
        with pytest.raises(ValueError, match="unknown design point 'nope'.*base"):
            get_design_point("nope")

    def test_every_builtin_point_has_positive_area_and_power(self):
        for point in BUILTIN_DESIGN_POINTS:
            breakdown = point.area_power()
            assert breakdown.total_area > 0 and breakdown.total_power > 0

    def test_stacked_variants_scale_dram_latency_and_bandwidth(self):
        base = get_design_point("base").config.dram
        stacked = get_design_point("3d-x4").config.dram
        assert stacked.access_time_ns == pytest.approx(base.access_time_ns / 4)
        assert stacked.bandwidth_bytes_per_s == pytest.approx(
            base.bandwidth_bytes_per_s * 4
        )


# ----------------------------------------------------------------------
# DseSpec + report determinism
# ----------------------------------------------------------------------
class TestDseSpec:
    def test_validation_is_self_describing(self):
        with pytest.raises(ValueError, match="at least one workload.*xf-prune-80"):
            DseSpec()
        with pytest.raises(ValueError, match="unknown workload 'nope'"):
            DseSpec(workloads=("nope",))
        with pytest.raises(ValueError, match="unknown design point"):
            DseSpec(workloads=("xf-prune-80",), designs=("nope",))
        with pytest.raises(ValueError, match="scale must be positive"):
            DseSpec(workloads=("xf-prune-80",), scale=-1.0)

    def test_csv_and_tuple_forms_share_a_key(self):
        csv = DseSpec(workloads="xf-prune-80, gnn-cora", designs="base,xbar16")
        explicit = DseSpec(
            workloads=("xf-prune-80", "gnn-cora"), designs=("base", "xbar16")
        )
        assert csv == explicit
        assert csv.key() == explicit.key()

    def test_empty_designs_resolve_to_every_builtin_point(self):
        spec = DseSpec(workloads=("xf-prune-80",))
        assert spec.designs == default_design_points()

    def test_record_roundtrip_preserves_the_key(self):
        spec = CAMPAIGN
        assert DseSpec.from_record(spec.to_record()).key() == spec.key()

    def test_compile_never_scales_the_design_config(self):
        jobs, meta = CAMPAIGN.compile(MICRO)
        assert len(jobs) == 2 and len(meta) == 2
        for job, entry in zip(jobs, meta):
            assert job.config == get_design_point(entry["design_point"]).config
            assert 0 < job.scale < 1  # the operands DID scale to the MAC budget


class TestReportDeterminism:
    def test_same_campaign_twice_is_byte_identical_second_run_free(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = micro_session(cache_dir)
        first = cold.dse(CAMPAIGN)
        assert cold.runner.stats.executed == 2

        warm = micro_session(cache_dir)
        second = warm.dse(CAMPAIGN)
        assert warm.runner.stats.executed == 0
        assert second.to_json() == first.to_json()

        report_key = dse_report_key(CAMPAIGN, MICRO)
        assert report_key.startswith("dse-")
        blob = ResultCache(cache_dir).get_blob(report_key)
        assert blob == (first.to_json() + "\n").encode()

    def test_report_shape_and_frontier_consistency(self, tmp_path):
        result = micro_session(tmp_path / "c").dse(CAMPAIGN)
        assert {row["design_point"] for row in result.rows} == {"base", "xbar16"}
        assert all(row["cycles"] > 0 for row in result.rows)
        by_name = {point["design_point"]: point for point in result.points}
        assert by_name["base"]["area_mm2"] > by_name["xbar16"]["area_mm2"]
        for names in result.frontier.values():
            assert names and set(names) <= set(by_name)

    def test_pareto_front_keeps_only_nondominated_points(self):
        points = [
            {"design_point": "cheap-slow", "total_cycles": 100.0, "area_mm2": 1.0},
            {"design_point": "big-fast", "total_cycles": 10.0, "area_mm2": 5.0},
            {"design_point": "dominated", "total_cycles": 100.0, "area_mm2": 2.0},
            {"design_point": "mid", "total_cycles": 50.0, "area_mm2": 2.0},
        ]
        assert _pareto_front(points, "area_mm2") == ["big-fast", "mid", "cheap-slow"]

    def test_pareto_tie_break_is_deterministic(self):
        tied = [
            {"design_point": name, "total_cycles": 10.0, "area_mm2": 1.0}
            for name in ("zeta", "alpha")
        ]
        assert _pareto_front(tied, "area_mm2") == ["alpha"]


# ----------------------------------------------------------------------
# Remote fabric equivalence
# ----------------------------------------------------------------------
class TestFabricEquivalence:
    @pytest.fixture(autouse=True)
    def _fabric_hygiene(self):
        reset_shared_fabric()
        yield
        reset_shared_fabric()

    def test_remote_campaign_matches_local_bytes(self, tmp_path):
        local = micro_session(tmp_path / "local").dse(CAMPAIGN)

        queue = WorkQueue(lease_seconds=30.0)
        coordinator_dir = tmp_path / "coordinator"
        set_shared_coordinator(Coordinator(queue, cache=ResultCache(coordinator_dir)))
        session = Session(
            MICRO,
            runner=BatchRunner(
                parallel=True,
                max_workers=4,
                pool_mode="remote",
                cache=ResultCache(coordinator_dir),
            ),
        )
        with worker_fleet(queue, [{"cache_dir": tmp_path / "worker-0"}]):
            remote = session.dse(CAMPAIGN)
            executed_cold = session.runner.stats.executed
            warm = session.dse(CAMPAIGN)
        assert remote.to_json() == local.to_json()
        assert executed_cold == 2
        # The warm pass answers from the coordinator cache: zero new
        # executions, zero new queue traffic, same bytes.
        assert warm.to_json() == local.to_json()
        assert session.runner.stats.executed == executed_cold
        assert queue.snapshot()["outstanding"] == 0


# ----------------------------------------------------------------------
# Serving surface
# ----------------------------------------------------------------------
class TestServeLifecycle:
    def test_cold_post_202_poll_200_then_warm_get_by_key(self, tmp_path):
        payload = json.dumps(
            {"workloads": ["xf-prune-80"], "designs": ["base", "xbar16"]}
        ).encode()
        with BackgroundServer(micro_session(tmp_path / "c")) as server:
            status, _headers, body = request(server, "POST", "/v1/dse", body=payload)
            assert status == 202
            envelope = json.loads(body)
            assert envelope["request_kind"] == "dse"

            status, headers, first = poll_job(server, envelope["url"])
            assert status == 200
            assert int(headers["X-Repro-Jobs-Executed"]) == 2
            record = json.loads(first)
            assert record["kind"] == "dse"

            # Re-POSTing the identical campaign is warm.
            status, headers, again = request(server, "POST", "/v1/dse", body=payload)
            assert status == 200
            assert headers["X-Repro-Jobs-Executed"] == "0"
            assert again == first

            # The GET route serves the stored report body by campaign key.
            key = CAMPAIGN.key()
            status, headers, stored = request(server, "GET", f"/v1/dse/{key}")
            assert status == 200
            assert headers["X-Repro-Jobs-Executed"] == "0"
            assert stored == first

    def test_unknown_report_key_is_404_with_guidance(self, tmp_path):
        with BackgroundServer(micro_session(tmp_path / "c")) as server:
            status, _headers, body = request(server, "GET", "/v1/dse/deadbeef")
            assert status == 404
            assert "POST /v1/dse" in json.loads(body)["error"]

    def test_bad_dse_body_is_400(self, tmp_path):
        with BackgroundServer(micro_session(tmp_path / "c")) as server:
            for payload in (b"{nope", b'{"workloads": ["nope"]}', b'{"bogus": 1}'):
                status, _headers, body = request(
                    server, "POST", "/v1/dse", body=payload
                )
                assert status == 400, payload
                assert json.loads(body)["kind"] == "error"


# ----------------------------------------------------------------------
# Cache prune scoping
# ----------------------------------------------------------------------
class TestPrunePrefix:
    def test_prune_requires_a_bound_or_a_prefix(self, tmp_path):
        with pytest.raises(ValueError, match="size bound, a key prefix, or both"):
            ResultCache(tmp_path).prune()

    def test_prefix_only_evicts_every_matching_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_blob("dse-" + "a" * 64, b"report-a")
        cache.put_blob("dse-" + "b" * 64, b"report-b")
        cache.put_blob("c" * 64, b"figure-result")
        report = cache.prune(prefix="dse-")
        assert report.removed_entries == 2
        assert report.remaining_entries == 0  # counts cover the prefix only
        assert cache.get_blob("dse-" + "a" * 64) is None
        assert cache.get_blob("c" * 64) == b"figure-result"

    def test_size_bound_plus_prefix_keeps_the_newest_matching(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_blob("dse-" + "a" * 64, b"x" * 100)
        cache.put_blob("dse-" + "b" * 64, b"y" * 100)
        cache.put_blob("c" * 64, b"z" * 100)
        report = cache.prune(150, prefix="dse-")
        assert report.removed_entries == 1
        assert report.remaining_bytes <= 150
        assert cache.get_blob("c" * 64) is not None

    def test_cli_prune_demands_a_scope_and_honours_prefix(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        ResultCache(tmp_path / "cache").put_blob("dse-" + "a" * 64, b"body")
        assert cli_main(["cache", "prune"]) == 2
        assert "needs --max-size-mb, --prefix, or both" in capsys.readouterr().err
        assert cli_main(["cache", "prune", "--prefix", "dse-"]) == 0
        out = capsys.readouterr().out
        assert "prefix 'dse-'" in out
        assert ResultCache(tmp_path / "cache").get_blob("dse-" + "a" * 64) is None


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliSurface:
    def test_sweep_list_models_includes_dse_workloads(self, capsys):
        assert cli_main(["sweep", "--list-models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out or "models (" in out
        assert "xf-prune-80" in out and "gnn-cora" in out

    def test_unknown_sweep_model_hints_at_the_dse_runner(self):
        from repro.api import SweepSpec

        with pytest.raises(ValueError, match="registered DSE workload.*repro dse"):
            SweepSpec(models=("xf-prune-80",))
        with pytest.raises(ValueError) as excinfo:
            SweepSpec(models=("nope",))
        assert "DSE workload" not in str(excinfo.value)

    def test_dse_cli_runs_and_rerenders_byte_identically(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        argv = [
            "dse", "--workloads", "xf-prune-80", "--designs", "base,xbar16",
            "--max-dense-macs", "5e4", "--max-layers", "1",
            "--serial", "--no-progress",
        ]
        first, second = tmp_path / "first.json", tmp_path / "second.json"
        assert cli_main(argv + ["-o", str(first)]) == 0
        assert cli_main(argv + ["-o", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        record = json.loads(first.read_bytes())
        assert record["kind"] == "dse"
        assert set(record["frontier"]) == {"cycles_vs_area", "cycles_vs_power"}

    def test_dse_cli_without_workloads_exits_2_naming_options(self, capsys):
        assert cli_main(["dse"]) == 2
        err = capsys.readouterr().err
        assert "--workloads is required" in err and "xf-prune-80" in err

    def test_dse_cli_listings(self, capsys):
        assert cli_main(["dse", "--list-workloads"]) == 0
        assert "gnn-citeseer" in capsys.readouterr().out
        assert cli_main(["dse", "--list-designs"]) == 0
        out = capsys.readouterr().out
        assert "xbar128" in out and "[stacked]" in out
