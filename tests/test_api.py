"""Tests of the public API facade (Session, requests, responses, figures).

Covers the facade's contracts:

* **Sessions** own settings + runner + cache and memoize the two shared
  experiment grids per session.
* **Requests** are declarative and hashable; sweeps compile to the expected
  job grids and honour configuration overrides and pinned scales.
* **Responses** round-trip through JSON with identical figure rows.
* **Cache-served figures** — a warm result cache answers a FigureQuery with
  zero executed jobs and byte-identical JSON (the CLI acceptance contract).
"""

from __future__ import annotations

import threading

import pytest

from repro.api import (
    FIGURES,
    FigureQuery,
    FigureResult,
    Session,
    SweepSpec,
    SweepResult,
    figure_ids,
    normalize_figure_id,
    reset_shared_sessions,
    shared_session,
)
from repro.experiments import (
    EndToEndResults,
    LayerwiseResults,
    best_dataflow_per_layer_rows,
    default_settings,
    end_to_end_speedup_rows,
    layerwise_speedup_rows,
    miss_rate_rows,
    model_statistics_rows,
    offchip_traffic_rows,
    onchip_traffic_rows,
    performance_per_area_rows,
    run_end_to_end,
    run_layerwise_comparison,
)
from repro.metrics.results import LayerSimResult, ModelSimResult
from repro.runtime import CPU_DESIGN, DESIGN_ORDER, BatchRunner, ResultCache
from repro.sparse import random_sparse

#: Same tiny budgets as tests/test_experiments.py so the shared per-settings
#: session memo is reused and this module adds little simulation time.
TINY = default_settings(max_dense_macs=2e5, max_layers_per_model=3)

#: Even tinier budgets for the cold/warm cache tests that re-run the grid.
MICRO = default_settings(max_dense_macs=1e5, max_layers_per_model=2)


@pytest.fixture(scope="module")
def tiny_session():
    return shared_session(TINY)


# ----------------------------------------------------------------------
# Session facade
# ----------------------------------------------------------------------
class TestSession:
    def test_owns_settings_runner_and_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        session = Session(TINY, runner=BatchRunner(parallel=False, cache=cache))
        assert session.settings is TINY
        assert session.cache is cache
        assert session.stats.submitted == 0

    def test_runner_and_knobs_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="runner or runner knobs"):
            Session(TINY, runner=BatchRunner(), parallel=False)

    def test_knobs_build_the_runner(self, tmp_path):
        session = Session(TINY, parallel=False, max_workers=1, cache=None)
        assert session.runner.parallel is False
        assert session.cache is None

    def test_end_to_end_is_memoized_per_session(self, tiny_session):
        assert tiny_session.end_to_end() is tiny_session.end_to_end()

    def test_layerwise_is_memoized_per_session(self, tiny_session):
        assert tiny_session.layerwise() is tiny_session.layerwise()

    def test_shared_session_is_memoized_per_settings(self):
        assert shared_session(TINY) is shared_session(TINY)

    def test_simulate_runs_each_design(self):
        a = random_sparse(30, 40, density=0.3, seed=0)
        b = random_sparse(40, 20, density=0.3, seed=1)
        session = Session(TINY, parallel=False, cache=None)
        results = session.simulate(a, b, layer_name="adhoc")
        assert [r.accelerator for r in results] == list(DESIGN_ORDER)
        assert all(r.layer_name == "adhoc" for r in results)

    def test_figures_lists_the_registry(self, tiny_session):
        assert tiny_session.figures() == figure_ids()

    def test_reset_shared_sessions_drops_the_registry(self):
        from repro.api import session as session_module

        saved = dict(session_module._shared_sessions)
        try:
            before = shared_session(TINY)
            reset_shared_sessions()
            after = shared_session(TINY)
            assert after is not before
            assert shared_session(TINY) is after
        finally:
            # Restore the registry so the suite's other modules keep their
            # warm memoized grids (the hygiene fixture resets at exit).
            session_module._shared_sessions.clear()
            session_module._shared_sessions.update(saved)


class TestSessionThreadSafety:
    def test_concurrent_figure_calls_compute_the_grid_once(self, tmp_path):
        """Regression: hammering ``Session.figure`` from threads must behave
        like one computation — the memo lock makes the first caller compute
        and every concurrent caller block then reuse, so the grid's job
        count is submitted exactly once and all answers are identical."""
        session = Session(
            MICRO, runner=BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        )
        grid_size = len(session.required_jobs("fig12"))
        assert grid_size > 0
        barrier = threading.Barrier(8)
        payloads: list[str] = []
        errors: list[BaseException] = []
        lock = threading.Lock()

        def hammer() -> None:
            try:
                barrier.wait(timeout=60)
                payload = session.figure("fig12").to_json()
                with lock:
                    payloads.append(payload)
            except BaseException as error:  # pragma: no cover - failure path
                with lock:
                    errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors
        assert len(set(payloads)) == 1 and len(payloads) == 8
        assert session.stats.submitted == grid_size
        assert session.required_jobs("fig12") == []


class TestRequiredJobs:
    def test_sweeps_compile_their_grid(self):
        session = Session(TINY, parallel=False, cache=None)
        spec = SweepSpec(layers=("R6", "A2"), designs=("SIGMA-like",))
        assert len(session.required_jobs(spec)) == 2

    def test_static_and_area_figures_need_nothing(self):
        session = Session(TINY, parallel=False, cache=None)
        assert session.required_jobs("table3") == []
        assert session.required_jobs(FigureQuery("table8")) == []

    def test_memoized_grids_need_nothing(self, tiny_session):
        tiny_session.end_to_end()
        assert tiny_session.required_jobs("fig12") == []


# ----------------------------------------------------------------------
# Deprecated free-function shims
# ----------------------------------------------------------------------
class TestDeprecatedShims:
    def test_run_end_to_end_warns_and_delegates(self, tiny_session):
        with pytest.warns(DeprecationWarning, match="Session"):
            results = run_end_to_end(TINY)
        assert results is tiny_session.end_to_end()

    def test_run_layerwise_comparison_warns_and_delegates(self, tiny_session):
        with pytest.warns(DeprecationWarning, match="Session"):
            results = run_layerwise_comparison(TINY)
        assert results is tiny_session.layerwise()


# ----------------------------------------------------------------------
# FigureQuery + registry
# ----------------------------------------------------------------------
class TestFigureQuery:
    @pytest.mark.parametrize("alias", ["fig12", "Fig. 12", "FIGURE12", "12", "fig012"])
    def test_aliases_normalise(self, alias):
        assert FigureQuery(alias).figure == "fig12"

    def test_normalize_strips_leading_zeros(self):
        assert normalize_figure_id("fig01") == "fig1"

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError, match="figure identifier"):
            FigureQuery("nope")

    def test_unknown_figure_raises_with_help(self, tiny_session):
        with pytest.raises(KeyError, match="known figures"):
            tiny_session.figure("fig99")

    def test_record_round_trip(self):
        query = FigureQuery("table2")
        assert FigureQuery.from_record(query.to_record()) == query

    def test_registry_covers_the_paper(self):
        assert set(FIGURES) == {
            "fig1", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
            "fig18", "table2", "table3", "table4", "table6", "table8",
        }

    @pytest.mark.parametrize("figure", ["fig17", "table3", "table4", "table6", "table8"])
    def test_static_and_area_figures_need_no_simulation(self, figure):
        session = Session(TINY, parallel=False, cache=None)
        result = session.figure(figure)
        assert result.rows
        assert session.stats.submitted == 0

    def test_every_figure_is_answerable(self, tiny_session):
        for figure in figure_ids():
            result = tiny_session.figure(figure)
            assert result.figure == figure
            assert result.rows, figure


# ----------------------------------------------------------------------
# Warm-cache figure serving (the CLI acceptance contract)
# ----------------------------------------------------------------------
class TestFigureFromWarmCache:
    def test_second_session_executes_zero_jobs_and_matches_bytes(self, tmp_path):
        cold = Session(MICRO, runner=BatchRunner(parallel=False, cache=ResultCache(tmp_path)))
        first = cold.figure("fig12")
        assert cold.stats.executed > 0

        warm = Session(MICRO, runner=BatchRunner(parallel=False, cache=ResultCache(tmp_path)))
        second = warm.figure("fig12")
        assert warm.stats.executed == 0
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hits == warm.stats.submitted > 0
        assert second.to_json() == first.to_json()


# ----------------------------------------------------------------------
# SweepSpec
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_normalises_constructor_arguments(self):
        spec = SweepSpec(
            models="SQ, V",
            layers=["R6"],
            designs="Flexagon",
            config_overrides={"num_multipliers": 16},
        )
        assert spec.models == ("SQ", "V")
        assert spec.layers == ("R6",)
        assert spec.designs == ("Flexagon",)
        assert spec.config_overrides == (("num_multipliers", 16),)

    def test_is_hashable_with_stable_key(self):
        one = SweepSpec(layers="R6", config_overrides={"num_multipliers": 16})
        two = SweepSpec(layers=("R6",), config_overrides=[("num_multipliers", 16)])
        assert one == two
        assert hash(one) == hash(two)
        assert one.key() == two.key()
        assert one.key() != SweepSpec(layers="A2").key()

    def test_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown design"):
            SweepSpec(layers="R6", designs="TPU-like")
        with pytest.raises(ValueError, match="unknown model"):
            SweepSpec(models="GPT")
        with pytest.raises(ValueError, match="unknown layer"):
            SweepSpec(layers="R99")
        with pytest.raises(ValueError, match="at least one model or layer"):
            SweepSpec()
        with pytest.raises(ValueError, match="unknown config override"):
            SweepSpec(layers="R6", config_overrides={"str_cache": 1024})

    def test_rejects_degenerate_layer_caps(self):
        with pytest.raises(ValueError, match="max_layers_per_model"):
            SweepSpec(models="SQ", max_layers_per_model=0)
        with pytest.raises(ValueError, match="max_layers_per_model"):
            SweepSpec(models="SQ", max_layers_per_model=-1)

    def test_record_round_trip(self):
        spec = SweepSpec(models="SQ", layers="R6", scale=0.2,
                         config_overrides={"psram_bytes": 4096})
        assert SweepSpec.from_record(spec.to_record()) == spec

    def test_compile_crosses_workloads_and_designs(self):
        spec = SweepSpec(layers=("R6", "A2"), designs=("SIGMA-like", CPU_DESIGN))
        jobs, meta = spec.compile(TINY)
        assert len(jobs) == len(meta) == 4
        assert {m["layer"] for m in meta} == {"R6", "A2"}
        assert {m["design"] for m in meta} == {"SIGMA-like", CPU_DESIGN}

    def test_compile_applies_overrides_and_pinned_scale(self):
        spec = SweepSpec(
            layers="R6",
            designs=("SIGMA-like",),
            scale=0.2,
            config_overrides={"num_multipliers": 16, "str_cache_bytes": 8 * 1024},
        )
        jobs, _ = spec.compile(TINY)
        (job,) = jobs
        assert job.scale == 0.2
        # A pinned scale uses the overridden config as-is (no SRAM rescaling).
        assert job.config.num_multipliers == 16
        assert job.config.str_cache_bytes == 8 * 1024

    def test_compile_models_follow_the_settings_policy(self):
        spec = SweepSpec(models="SQ", designs=("Flexagon",), max_layers_per_model=2)
        jobs, meta = spec.compile(TINY)
        assert len(jobs) == 2
        # The settings' scaling policy shrinks the config for large layers.
        assert all(job.config.num_multipliers <= TINY.config.num_multipliers
                   for job in jobs)
        assert all(m["model"] == "SQ" for m in meta)

    def test_overrides_layer_on_top_of_the_session_config(self):
        """Regression: only the named fields change; the session's custom
        config values survive (overrides must not reset to Table 5)."""
        from dataclasses import replace

        from repro.arch.config import default_config

        custom = replace(TINY, config=default_config(str_cache_bytes=2 * 1024 * 1024))
        spec = SweepSpec(
            layers="R6", designs=("SIGMA-like",), scale=0.2,
            config_overrides={"num_multipliers": 16},
        )
        (job,), _ = spec.compile(custom)
        assert job.config.num_multipliers == 16
        assert job.config.num_adders == 15  # re-derived with the datapath
        assert job.config.str_cache_bytes == 2 * 1024 * 1024  # preserved

    def test_model_sweep_shares_job_keys_with_the_end_to_end_grid(self):
        """A model sweep and the figure grid must build identical SimJob keys
        (same sampling/scaling/seed policy), so they reuse each other's
        cache entries."""
        from repro.experiments import end_to_end_jobs

        grid_jobs, _, _ = end_to_end_jobs(TINY)
        grid_keys = {job.key() for job in grid_jobs}
        sweep_jobs, _ = SweepSpec(models="SQ", designs=DESIGN_ORDER).compile(TINY)
        assert {job.key() for job in sweep_jobs} <= grid_keys


class TestSweepExecution:
    def test_rows_are_labelled_and_json_safe(self):
        session = Session(TINY, parallel=False, cache=None)
        sweep = session.sweep(
            SweepSpec(layers="A2", designs=("GAMMA-like", CPU_DESIGN), scale=0.05)
        )
        gamma, cpu = sweep.rows
        assert gamma["design"] == "GAMMA-like"
        assert gamma["dataflow"] == "GUST_M"
        assert gamma["cycles"] > 0 and gamma["seconds"] > 0
        assert cpu["design"] == CPU_DESIGN
        assert cpu["dataflow"] is None and cpu["seconds"] > 0
        assert SweepResult.from_json(sweep.to_json()).rows == sweep.rows

    def test_warm_cache_answers_a_repeat_sweep(self, tmp_path):
        spec = SweepSpec(layers="A2", designs=("SIGMA-like",), scale=0.05)
        cold = Session(TINY, runner=BatchRunner(parallel=False, cache=ResultCache(tmp_path)))
        first = cold.sweep(spec)
        warm = Session(TINY, runner=BatchRunner(parallel=False, cache=ResultCache(tmp_path)))
        second = warm.sweep(spec)
        assert warm.stats.executed == 0
        assert second.to_json() == first.to_json()


# ----------------------------------------------------------------------
# JSON round-trips of every response record
# ----------------------------------------------------------------------
class TestJsonRoundTrips:
    def test_layer_result_record(self, tiny_session):
        record = tiny_session.layerwise().result("A2", "Flexagon")
        restored = LayerSimResult.from_record(record.to_record())
        assert restored.to_record() == record.to_record()
        assert restored.total_cycles == record.total_cycles
        assert restored.dataflow is record.dataflow
        assert restored.dram.str_read_bytes == record.dram.str_read_bytes

    def test_model_result_record(self, tiny_session):
        record = tiny_session.end_to_end().accelerator_results["SQ"]["Flexagon"]
        restored = ModelSimResult.from_record(record.to_record())
        assert restored.to_record() == record.to_record()
        assert restored.total_cycles == record.total_cycles

    def test_end_to_end_results_keep_identical_figure_rows(self, tiny_session):
        results = tiny_session.end_to_end()
        restored = EndToEndResults.from_json(results.to_json())
        assert restored.to_json() == results.to_json()
        for rows in (end_to_end_speedup_rows, performance_per_area_rows,
                     best_dataflow_per_layer_rows, model_statistics_rows):
            assert rows(restored) == rows(results), rows.__name__

    def test_layerwise_results_keep_identical_figure_rows(self, tiny_session):
        results = tiny_session.layerwise()
        restored = LayerwiseResults.from_json(results.to_json())
        assert restored.to_json() == results.to_json()
        for rows in (layerwise_speedup_rows, onchip_traffic_rows,
                     miss_rate_rows, offchip_traffic_rows):
            assert rows(restored) == rows(results), rows.__name__

    def test_figure_result_round_trip(self, tiny_session):
        for figure in ("fig13", "table8", "table3"):
            result = tiny_session.figure(figure)
            restored = FigureResult.from_json(result.to_json())
            assert restored.rows == result.rows
            assert restored.to_json() == result.to_json()

    def test_stale_schema_is_rejected(self, tiny_session):
        record = tiny_session.figure("table3").to_record()
        record["schema"] = 999
        with pytest.raises(ValueError, match="unsupported record schema"):
            FigureResult.from_record(record)

    def test_wrong_kind_is_rejected(self, tiny_session):
        record = tiny_session.figure("table3").to_record()
        with pytest.raises(ValueError, match="expected a"):
            SweepResult.from_record(record)

    def test_rows_are_strict_json(self):
        """Non-finite floats are normalised to null so the payload parses in
        any strict JSON consumer (the wire contract of the responses)."""
        from repro.api import jsonify_rows

        rows = jsonify_rows([{"speedup": float("inf"), "x": float("nan"), "ok": 1.5}])
        assert rows == [{"speedup": None, "x": None, "ok": 1.5}]
        result = FigureResult(figure="fig12", title="t", rows=rows)
        assert '"speedup": null' in result.to_json()
