"""Unit and property tests for the CSR/CSC compressed matrix formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    CompressedMatrix,
    Layout,
    csc_from_dense,
    csr_from_dense,
    empty_matrix,
    matrix_from_coo,
    matrix_from_fibers,
    random_sparse,
)
from repro.sparse.convert import convert_with_cost, explicit_conversion_cost, transpose
from repro.sparse.fiber import Fiber
from repro.sparse.formats import ELEMENT_BYTES, POINTER_BYTES


def dense_strategy(max_dim=12):
    return st.tuples(
        st.integers(1, max_dim), st.integers(1, max_dim), st.integers(0, 2**31 - 1)
    ).map(_make_dense)


def _make_dense(args):
    rows, cols, seed = args
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(rows, cols))
    mask = rng.random((rows, cols)) < 0.4
    return dense * mask


class TestConstruction:
    def test_empty_matrix(self):
        m = empty_matrix(3, 4)
        assert m.nnz == 0
        assert m.shape == (3, 4)
        assert m.density == 0.0
        assert np.array_equal(m.to_dense(), np.zeros((3, 4)))

    def test_from_coo_csr(self):
        m = matrix_from_coo(2, 3, [(0, 1, 5.0), (1, 0, -2.0), (1, 2, 3.0)])
        assert m.layout is Layout.CSR
        assert m.nnz == 3
        expected = np.array([[0, 5.0, 0], [-2.0, 0, 3.0]])
        assert np.array_equal(m.to_dense(), expected)

    def test_from_coo_accumulates_duplicates(self):
        m = matrix_from_coo(2, 2, [(0, 0, 1.0), (0, 0, 2.0)])
        assert m.nnz == 1
        assert m.to_dense()[0, 0] == 3.0

    def test_from_coo_drops_explicit_zeros(self):
        m = matrix_from_coo(2, 2, [(0, 0, 0.0), (1, 1, 1.0)])
        assert m.nnz == 1

    def test_from_coo_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            matrix_from_coo(2, 2, [(2, 0, 1.0)])

    def test_invalid_pointer_vector_rejected(self):
        with pytest.raises(ValueError):
            CompressedMatrix(2, 2, Layout.CSR, [0, 1], [0], [1.0])

    def test_unsorted_fiber_rejected(self):
        with pytest.raises(ValueError):
            CompressedMatrix(1, 3, Layout.CSR, [0, 2], [2, 0], [1.0, 1.0])

    def test_matrix_from_fibers(self):
        fibers = {0: Fiber([(1, 2.0)]), 2: Fiber([(0, 1.0), (2, -1.0)])}
        m = matrix_from_fibers(3, 3, fibers)
        expected = np.array([[0, 2.0, 0], [0, 0, 0], [1.0, 0, -1.0]])
        assert np.array_equal(m.to_dense(), expected)

    def test_matrix_from_fibers_out_of_range(self):
        with pytest.raises(ValueError):
            matrix_from_fibers(2, 2, {0: Fiber([(5, 1.0)])})


class TestDenseRoundtrip:
    @given(dense_strategy())
    @settings(max_examples=40, deadline=None)
    def test_csr_roundtrip(self, dense):
        m = csr_from_dense(dense)
        assert np.allclose(m.to_dense(), dense)

    @given(dense_strategy())
    @settings(max_examples=40, deadline=None)
    def test_csc_roundtrip(self, dense):
        m = csc_from_dense(dense)
        assert m.layout is Layout.CSC
        assert np.allclose(m.to_dense(), dense)

    @given(dense_strategy())
    @settings(max_examples=40, deadline=None)
    def test_layout_change_preserves_values(self, dense):
        csr = csr_from_dense(dense)
        csc = csr.with_layout(Layout.CSC)
        assert csc.layout is Layout.CSC
        assert np.allclose(csc.to_dense(), dense)
        assert csc.nnz == csr.nnz


class TestFiberAccess:
    def setup_method(self):
        self.dense = np.array([[1.0, 0, 2.0], [0, 0, 0], [3.0, 4.0, 0]])
        self.csr = csr_from_dense(self.dense)
        self.csc = csc_from_dense(self.dense)

    def test_csr_fibers_are_rows(self):
        assert self.csr.fiber(0).coords == [0, 2]
        assert self.csr.fiber(1).is_empty()
        assert self.csr.fiber(2).values == [3.0, 4.0]

    def test_csc_fibers_are_columns(self):
        assert self.csc.fiber(0).coords == [0, 2]
        assert self.csc.fiber(0).values == [1.0, 3.0]
        assert self.csc.fiber(2).coords == [0]

    def test_fiber_nnz_matches_fiber(self):
        for i in range(3):
            assert self.csr.fiber_nnz(i) == self.csr.fiber(i).nnz

    def test_fiber_index_out_of_range(self):
        with pytest.raises(IndexError):
            self.csr.fiber(3)

    def test_row_and_col_work_for_both_layouts(self):
        for m in (self.csr, self.csc):
            assert m.row(2).coords == [0, 1]
            assert m.col(0).coords == [0, 2]

    def test_iter_elements_covers_all_nonzeros(self):
        triples = set(self.csr.iter_elements())
        assert triples == {(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)}
        assert set(self.csc.iter_elements()) == triples

    def test_iter_nonempty_fibers_skips_empty(self):
        indices = [i for i, _ in self.csr.iter_nonempty_fibers()]
        assert indices == [0, 2]


class TestTransposeAndSize:
    def test_transpose_flips_shape_and_layout(self):
        m = random_sparse(5, 8, 0.3, seed=3)
        t = transpose(m)
        assert t.shape == (8, 5)
        assert t.layout is m.layout.other
        assert np.allclose(t.to_dense(), m.to_dense().T)

    def test_double_transpose_is_identity(self):
        m = random_sparse(6, 4, 0.5, seed=4)
        assert np.allclose(m.transposed().transposed().to_dense(), m.to_dense())

    def test_compressed_size_formula(self):
        m = random_sparse(10, 10, 0.2, seed=5)
        expected = m.nnz * ELEMENT_BYTES + (m.major_dim + 1) * POINTER_BYTES
        assert m.compressed_size_bytes() == expected

    def test_density_and_sparsity_sum_to_one(self):
        m = random_sparse(10, 10, 0.37, seed=6)
        assert m.density + m.sparsity == pytest.approx(1.0)


class TestConversionCost:
    def test_same_layout_conversion_is_free(self):
        m = random_sparse(6, 6, 0.4, seed=7)
        converted, cost = convert_with_cost(m, m.layout)
        assert converted is m
        assert cost.bytes_moved == 0

    def test_cross_layout_conversion_costs_traffic(self):
        m = random_sparse(6, 6, 0.4, seed=8, layout=Layout.CSR)
        converted, cost = convert_with_cost(m, Layout.CSC)
        assert converted.layout is Layout.CSC
        assert np.allclose(converted.to_dense(), m.to_dense())
        assert cost.element_reads == m.nnz
        assert cost.element_writes == m.nnz
        assert cost.bytes_moved > 0

    def test_explicit_cost_scales_with_nnz(self):
        small = random_sparse(10, 10, 0.1, seed=9)
        large = random_sparse(10, 10, 0.9, seed=9)
        assert (
            explicit_conversion_cost(large).bytes_moved
            > explicit_conversion_cost(small).bytes_moved
        )


class TestGeneration:
    @pytest.mark.parametrize("pattern", ["uniform", "row_skewed", "banded", "block"])
    def test_patterns_hit_requested_density(self, pattern):
        from repro.sparse.generate import SparsityPattern

        m = random_sparse(
            64, 64, 0.2, pattern=SparsityPattern(pattern), seed=11
        )
        assert m.shape == (64, 64)
        # Allow generous tolerance: patterns are stochastic/structured.
        assert 0.05 <= m.density <= 0.45

    def test_zero_density_gives_empty_matrix(self):
        assert random_sparse(16, 16, 0.0, seed=1).nnz == 0

    def test_full_density_gives_dense_matrix(self):
        m = random_sparse(8, 8, 1.0, seed=1)
        assert m.nnz == 64

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            random_sparse(4, 4, 1.5)

    def test_reproducible_with_same_seed(self):
        a = random_sparse(20, 20, 0.3, seed=42)
        b = random_sparse(20, 20, 0.3, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_sparse(20, 20, 0.3, seed=1)
        b = random_sparse(20, 20, 0.3, seed=2)
        assert a != b

    def test_density_map_generation(self):
        from repro.sparse.generate import sparse_from_density_map

        m = sparse_from_density_map(np.array([1.0, 0.0, 0.5]), 10, seed=3)
        assert m.fiber_nnz(0) == 10
        assert m.fiber_nnz(1) == 0
        assert 0 <= m.fiber_nnz(2) <= 10
