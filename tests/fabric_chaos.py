"""Fault-injection harness for the distributed execution fabric tests.

Runs :class:`repro.fabric.Worker` loops on daemon threads against an
in-process :class:`~repro.fabric.queue.WorkQueue` (or a coordinator URL),
so one test can stage a fleet — a chaos worker that dies mid-lease, a
stalled worker, a corrupting uploader — next to healthy workers and assert
that the queue converges to the same bytes a local run produces.

The helpers deliberately know nothing about the scenarios themselves:
tests compose :func:`start_worker`/:func:`worker_fleet` with
:func:`wait_until` (e.g. "start the rescuer only after the chaos worker
died") to make each failure ordering deterministic instead of racy.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.fabric import Worker


def wait_until(predicate, timeout: float = 60.0, interval: float = 0.01,
               message: str = "condition"):
    """Poll ``predicate`` until truthy; raise on timeout.

    Returns the (truthy) predicate value so callers can grab what they
    waited for: ``report = wait_until(lambda: member.done and member.report)``.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out after {timeout}s waiting for {message}")
        time.sleep(interval)


class FleetMember:
    """One worker loop running on its own daemon thread."""

    def __init__(self, worker: Worker) -> None:
        self.worker = worker
        self.thread = threading.Thread(
            target=worker.run,
            name=f"fleet-{worker.worker_id}",
            daemon=True,
        )

    @property
    def report(self):
        return self.worker.report

    @property
    def done(self) -> bool:
        """Whether the run loop has exited (death, stall release, or stop)."""
        return not self.thread.is_alive()

    def start(self) -> "FleetMember":
        self.thread.start()
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Release the worker (stall chaos waits on this event) and join."""
        self.worker.stop.set()
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), (
            f"worker {self.worker.worker_id} did not stop within {timeout}s"
        )


def start_worker(target, **kwargs) -> FleetMember:
    """Build and start one fleet member.

    ``target`` is a :class:`WorkQueue` (in-process client) or a coordinator
    URL; ``kwargs`` are :class:`Worker` keyword arguments.  Polling defaults
    to 10 ms so scenario timelines stay fast.
    """
    kwargs.setdefault("poll_seconds", 0.01)
    return FleetMember(Worker(target, **kwargs)).start()


def start_worker_after(predicate, target, *, timeout: float = 60.0, **kwargs):
    """Start a worker only once ``predicate`` holds, from a helper thread.

    The staging primitive for deterministic failure orderings: the test's
    main thread is typically blocked inside ``session.sweep(...)``, so the
    "start the rescuer after the chaos worker died" step has to happen off
    to the side.  Returns a one-element list the member is appended to when
    it actually starts.

    If the trigger never fires the worker starts anyway once ``timeout``
    elapses: a missed trigger must fail the test's ordering assertions,
    not wedge the whole suite on a sweep whose work nobody will claim.
    """
    holder: list[FleetMember] = []

    def stage() -> None:
        try:
            wait_until(predicate, timeout=timeout, message="staged-start trigger")
        except AssertionError:
            pass
        holder.append(start_worker(target, **kwargs))

    threading.Thread(target=stage, name="fleet-stager", daemon=True).start()
    return holder


@contextmanager
def worker_fleet(target, specs):
    """Run one worker per spec for the duration of the ``with`` block.

    ``specs`` is a list of :class:`Worker` kwarg dicts (missing
    ``worker_id`` values are filled in positionally).  On exit every
    worker's stop event is set first — releasing stalled chaos workers too —
    and only then are the threads joined, so a wedged fleet cannot wedge
    the test.
    """
    members = []
    for index, spec in enumerate(specs):
        kwargs = dict(spec)
        kwargs.setdefault("worker_id", f"fleet-{index}")
        members.append(start_worker(target, **kwargs))
    try:
        yield members
    finally:
        for member in members:
            member.worker.stop.set()
        for member in members:
            member.stop()
