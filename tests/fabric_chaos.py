"""Fault-injection harness for the distributed execution fabric tests.

Runs :class:`repro.fabric.Worker` loops on daemon threads against an
in-process :class:`~repro.fabric.queue.WorkQueue` (or a coordinator URL),
so one test can stage a fleet — a chaos worker that dies mid-lease, a
stalled worker, a corrupting uploader — next to healthy workers and assert
that the queue converges to the same bytes a local run produces.

The helpers deliberately know nothing about the scenarios themselves:
tests compose :func:`start_worker`/:func:`worker_fleet` with
:func:`wait_until` (e.g. "start the rescuer only after the chaos worker
died") to make each failure ordering deterministic instead of racy.

Worker-side chaos (``die_after``/``stall``/``corrupt``) injects faults in
the worker's own loop; :class:`ChaosClient` injects them on the *path to
the coordinator* instead — ``refuse_conn`` raises connection refusals for
the first N calls (a coordinator that is down, then comes back) and
``slow_coordinator`` delays every call (an overloaded one) — which is what
exercises the worker's backoff ladder and circuit breaker.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.fabric import Worker
from repro.fabric.queue import WorkQueue
from repro.fabric.worker import DirectClient


class ChaosClient:
    """A queue client that injects coordinator-path faults.

    Wraps an inner client (or builds a :class:`DirectClient` over a raw
    :class:`WorkQueue`) and misbehaves on the way in:

    * ``refuse_conn`` — raise :class:`ConnectionRefusedError` for the
      first ``failures`` calls (``float("inf")`` for a permanently dead
      coordinator), then delegate normally: the down-then-recovered
      coordinator.
    * ``slow_coordinator`` — sleep ``delay`` seconds before delegating
      every call: the saturated coordinator whose answers are late but
      correct.

    ``calls``/``refused`` count every attempt (thread-safe), so tests can
    assert how hard a worker actually hit a dead endpoint.
    """

    def __init__(self, target, mode: str, *, delay: float = 0.05,
                 failures: float = 0) -> None:
        if mode not in ("refuse_conn", "slow_coordinator"):
            raise ValueError(f"unknown chaos-client mode {mode!r}")
        self.inner = DirectClient(target) if isinstance(target, WorkQueue) else target
        self.mode = mode
        self.delay = delay
        self.failures = failures
        self.calls = 0
        self.refused = 0
        self._lock = threading.Lock()

    def _inject(self) -> None:
        with self._lock:
            self.calls += 1
            if self.mode == "refuse_conn" and self.refused < self.failures:
                self.refused += 1
                raise ConnectionRefusedError("chaos: coordinator refused connection")
        if self.mode == "slow_coordinator":
            time.sleep(self.delay)

    def claim(self, worker, max_items):
        self._inject()
        return self.inner.claim(worker, max_items)

    def heartbeat(self, worker, item_ids):
        self._inject()
        return self.inner.heartbeat(worker, item_ids)

    def complete(self, worker, record):
        self._inject()
        return self.inner.complete(worker, record)


def wait_until(predicate, timeout: float = 60.0, interval: float = 0.01,
               message: str = "condition"):
    """Poll ``predicate`` until truthy; raise on timeout.

    Returns the (truthy) predicate value so callers can grab what they
    waited for: ``report = wait_until(lambda: member.done and member.report)``.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out after {timeout}s waiting for {message}")
        time.sleep(interval)


class FleetMember:
    """One worker loop running on its own daemon thread."""

    def __init__(self, worker: Worker) -> None:
        self.worker = worker
        self.thread = threading.Thread(
            target=worker.run,
            name=f"fleet-{worker.worker_id}",
            daemon=True,
        )

    @property
    def report(self):
        return self.worker.report

    @property
    def done(self) -> bool:
        """Whether the run loop has exited (death, stall release, or stop)."""
        return not self.thread.is_alive()

    def start(self) -> "FleetMember":
        self.thread.start()
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Release the worker (stall chaos waits on this event) and join."""
        self.worker.stop.set()
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), (
            f"worker {self.worker.worker_id} did not stop within {timeout}s"
        )


def start_worker(target, **kwargs) -> FleetMember:
    """Build and start one fleet member.

    ``target`` is a :class:`WorkQueue` (in-process client) or a coordinator
    URL; ``kwargs`` are :class:`Worker` keyword arguments.  Polling defaults
    to 10 ms so scenario timelines stay fast.
    """
    kwargs.setdefault("poll_seconds", 0.01)
    return FleetMember(Worker(target, **kwargs)).start()


def start_worker_after(predicate, target, *, timeout: float = 60.0, **kwargs):
    """Start a worker only once ``predicate`` holds, from a helper thread.

    The staging primitive for deterministic failure orderings: the test's
    main thread is typically blocked inside ``session.sweep(...)``, so the
    "start the rescuer after the chaos worker died" step has to happen off
    to the side.  Returns a one-element list the member is appended to when
    it actually starts.

    If the trigger never fires the worker starts anyway once ``timeout``
    elapses: a missed trigger must fail the test's ordering assertions,
    not wedge the whole suite on a sweep whose work nobody will claim.
    """
    holder: list[FleetMember] = []

    def stage() -> None:
        try:
            wait_until(predicate, timeout=timeout, message="staged-start trigger")
        except AssertionError:
            pass
        holder.append(start_worker(target, **kwargs))

    threading.Thread(target=stage, name="fleet-stager", daemon=True).start()
    return holder


@contextmanager
def worker_fleet(target, specs):
    """Run one worker per spec for the duration of the ``with`` block.

    ``specs`` is a list of :class:`Worker` kwarg dicts (missing
    ``worker_id`` values are filled in positionally).  On exit every
    worker's stop event is set first — releasing stalled chaos workers too —
    and only then are the threads joined, so a wedged fleet cannot wedge
    the test.
    """
    members = []
    for index, spec in enumerate(specs):
        kwargs = dict(spec)
        kwargs.setdefault("worker_id", f"fleet-{index}")
        members.append(start_worker(target, **kwargs))
    try:
        yield members
    finally:
        for member in members:
            member.worker.stop.set()
        for member in members:
            member.stop()
