"""Tests for the unified memory controllers (tile readers / writer, Fig. 11)."""

import pytest

from repro.arch.controllers import (
    OutputTileWriter,
    StationaryTileReader,
    StreamingTileReader,
)
from repro.arch.memory.cache import StreamingCache
from repro.arch.memory.psram import Psram
from repro.arch.memory.write_buffer import WriteBuffer
from repro.dataflows import Dataflow
from repro.sparse import Layout, random_sparse
from repro.sparse.fiber import Element, Fiber


def make_cache():
    return StreamingCache(4096, 64, 4, element_bytes=4)


class TestStationaryTileReaderInnerProduct:
    def test_whole_fibers_packed(self):
        a = random_sparse(12, 16, 0.3, seed=5)
        reader = StationaryTileReader(Dataflow.IP_M, a, num_multipliers=8)
        batches = list(reader.batches())
        # Every non-empty fiber appears exactly once across batches.
        seen_elements = sum(batch.num_elements for batch in batches)
        assert seen_elements == a.nnz
        assert reader.elements_read == a.nnz
        for batch in batches:
            assert batch.num_elements <= 8 or len(batch.entries) == 1

    def test_long_fiber_is_chunked_alone(self):
        a = random_sparse(2, 64, 0.9, seed=6)  # rows with ~57 nnz
        reader = StationaryTileReader(Dataflow.IP_M, a, num_multipliers=8)
        batches = list(reader.batches())
        for batch in batches:
            assert batch.num_elements <= 8
            assert len(batch.entries) == 1

    def test_empty_matrix_produces_no_batches(self):
        a = random_sparse(4, 4, 0.0, seed=1)
        reader = StationaryTileReader(Dataflow.IP_M, a, num_multipliers=4)
        assert list(reader.batches()) == []


class TestStationaryTileReaderOuterProduct:
    def test_scalars_packed_in_column_order(self):
        a = random_sparse(10, 12, 0.4, seed=7, layout=Layout.CSC)
        reader = StationaryTileReader(Dataflow.OP_M, a, num_multipliers=16)
        batches = list(reader.batches())
        assert sum(b.num_elements for b in batches) == a.nnz
        # No batch exceeds the array size.
        assert all(b.num_elements <= 16 for b in batches)

    def test_batch_groups_by_k(self):
        a = random_sparse(6, 6, 0.5, seed=8, layout=Layout.CSC)
        reader = StationaryTileReader(Dataflow.OP_M, a, num_multipliers=100)
        (batch,) = list(reader.batches())
        ks = [k for k, _ in batch.entries]
        assert len(ks) == len(set(ks))
        total = sum(fiber.nnz for _, fiber in batch.entries)
        assert total == a.nnz


class TestStationaryTileReaderGustavson:
    def test_batches_never_mix_rows(self):
        a = random_sparse(8, 20, 0.5, seed=9)
        reader = StationaryTileReader(Dataflow.GUST_M, a, num_multipliers=4)
        for batch in reader.batches():
            assert len(batch.majors()) == 1
            assert batch.num_elements <= 4

    def test_all_elements_covered(self):
        a = random_sparse(8, 20, 0.5, seed=10)
        reader = StationaryTileReader(Dataflow.GUST_M, a, num_multipliers=4)
        assert sum(b.num_elements for b in reader.batches()) == a.nnz

    def test_invalid_multiplier_count(self):
        a = random_sparse(4, 4, 0.5, seed=1)
        with pytest.raises(ValueError):
            StationaryTileReader(Dataflow.GUST_M, a, num_multipliers=0)


class TestStreamingTileReader:
    def test_read_fiber_returns_contents_and_misses(self):
        b = random_sparse(16, 32, 0.4, seed=11)
        cache = make_cache()
        reader = StreamingTileReader(b, cache)
        fiber, misses = reader.read_fiber(0)
        assert fiber == b.fiber(0)
        assert misses >= 1 or fiber.is_empty()

    def test_repeated_read_hits(self):
        b = random_sparse(16, 32, 0.4, seed=12)
        cache = make_cache()
        reader = StreamingTileReader(b, cache)
        reader.read_fiber(3)
        misses_before = cache.stats.misses
        reader.touch_fiber(3)
        assert cache.stats.misses == misses_before

    def test_access_counts_match_elements(self):
        b = random_sparse(8, 64, 0.5, seed=13)
        cache = make_cache()
        reader = StreamingTileReader(b, cache)
        reader.read_all_sequential()
        assert cache.stats.accesses == b.nnz
        assert reader.stats.elements_read == b.nnz

    def test_sequential_scan_miss_count_is_line_count(self):
        b = random_sparse(8, 64, 0.5, seed=14)
        cache = make_cache()
        reader = StreamingTileReader(b, cache)
        misses = reader.read_all_sequential()
        expected_lines = -(-b.nnz * 4 // 64)  # ceil division
        assert misses in (expected_lines, expected_lines + 1)

    def test_empty_fiber_costs_nothing(self):
        b = random_sparse(8, 8, 0.1, seed=15)
        cache = make_cache()
        reader = StreamingTileReader(b, cache)
        empty_index = next(i for i in range(8) if b.fiber_nnz(i) == 0)
        fiber, misses = reader.read_fiber(empty_index)
        assert fiber.is_empty()
        assert misses == 0
        assert cache.stats.accesses == 0


class TestOutputTileWriter:
    def make_writer(self):
        psram = Psram(2048, 64, 4, element_bytes=4)
        buffer = WriteBuffer(256, element_bytes=4)
        return OutputTileWriter(psram, buffer), psram, buffer

    def test_final_elements_collected_into_fibers(self):
        writer, _, buffer = self.make_writer()
        writer.write_final(0, Element(3, 1.0))
        writer.write_final(0, Element(1, 2.0))
        writer.write_final(2, Element(0, -1.0))
        fibers = writer.collected_fibers()
        assert fibers[0] == Fiber([(1, 2.0), (3, 1.0)])
        assert fibers[2] == Fiber([(0, -1.0)])
        assert writer.stats.final_elements == 3
        assert buffer.stats.writes == 3

    def test_write_final_fiber(self):
        writer, _, _ = self.make_writer()
        fiber = Fiber([(0, 1.0), (5, 2.0)])
        writer.write_final_fiber(7, fiber)
        assert writer.collected_fibers()[7] == fiber

    def test_partial_elements_go_to_psram(self):
        writer, psram, _ = self.make_writer()
        assert writer.write_partial(1, 0, Element(4, 2.0)) is True
        assert psram.fiber_length(1, 0) == 1
        assert writer.stats.partial_elements == 1

    def test_psram_spill_counted(self):
        psram = Psram(128, 64, 2, element_bytes=4)  # 1 block per set
        writer = OutputTileWriter(psram, WriteBuffer(64))
        assert writer.write_partial(0, 0, Element(0, 1.0)) is True
        assert writer.write_partial(0, 1, Element(0, 1.0)) is False
        assert writer.stats.psram_spills == 1

    def test_flush_returns_drained_count(self):
        writer, _, _ = self.make_writer()
        writer.write_final(0, Element(0, 1.0))
        assert writer.flush() == 1
