"""Integration tests for the experiment harness (small budgets, full code paths)."""

import pytest

from repro.experiments import (
    area_power_rows,
    best_dataflow_per_layer_rows,
    default_settings,
    end_to_end_speedup_rows,
    layerwise_speedup_rows,
    miss_rate_rows,
    model_statistics_rows,
    naive_comparison_rows,
    offchip_traffic_rows,
    onchip_traffic_rows,
    performance_per_area_rows,
    run_end_to_end,
    run_layerwise_comparison,
)
from repro.experiments.layerwise import DESIGN_ORDER
from repro.metrics import format_table
from repro.workloads.representative import representative_layer_names

#: Tiny budgets so the whole harness runs in seconds inside the test suite.
TINY = default_settings(max_dense_macs=2e5, max_layers_per_model=3)


@pytest.fixture(scope="module")
def layerwise():
    return run_layerwise_comparison(TINY)


@pytest.fixture(scope="module")
def end_to_end():
    return run_end_to_end(TINY)


class TestSettings:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_DENSE_MACS", "123456")
        monkeypatch.setenv("REPRO_MAX_LAYERS", "5")
        settings = default_settings()
        assert settings.max_dense_macs == 123456
        assert settings.max_layers_per_model == 5

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert default_settings().max_dense_macs is None

    def test_scaled_config_preserves_ratios(self):
        settings = default_settings(max_dense_macs=1e6)
        config = settings.scaled_config(0.1)
        full = settings.config
        assert config.num_multipliers < full.num_multipliers
        # The multiplier-to-bandwidth ratio of the full design is preserved.
        assert config.num_multipliers / config.distribution_bandwidth == pytest.approx(
            full.num_multipliers / full.distribution_bandwidth, rel=0.5
        )
        assert config.str_cache_bytes < full.str_cache_bytes

    def test_scale_one_returns_reference_config(self):
        settings = default_settings()
        assert settings.scaled_config(1.0) is settings.config


class TestLayerwiseHarness:
    def test_covers_all_layers_and_designs(self, layerwise):
        assert layerwise.layer_names() == representative_layer_names()
        for layer in layerwise.layer_names():
            assert set(layerwise.results[layer]) == set(DESIGN_ORDER)

    def test_caching_returns_same_object(self, layerwise):
        assert run_layerwise_comparison(TINY) is layerwise

    def test_speedup_rows_shape(self, layerwise):
        rows = layerwise_speedup_rows(layerwise)
        assert len(rows) == 9 * 4
        sigma_rows = [r for r in rows if r["design"] == "SIGMA-like"]
        assert all(r["speedup_vs_sigma"] == pytest.approx(1.0) for r in sigma_rows)

    def test_traffic_and_missrate_rows(self, layerwise):
        for maker in (onchip_traffic_rows, miss_rate_rows, offchip_traffic_rows):
            rows = maker(layerwise)
            assert len(rows) == 9 * 4
            assert format_table(rows)  # renders without error

    def test_flexagon_matches_best_design(self, layerwise):
        rows = layerwise_speedup_rows(layerwise)
        by_layer = {}
        for row in rows:
            by_layer.setdefault(row["layer"], {})[row["design"]] = row["speedup_vs_sigma"]
        for layer, cells in by_layer.items():
            best_fixed = max(cells[d] for d in DESIGN_ORDER if d != "Flexagon")
            assert cells["Flexagon"] >= 0.9 * best_fixed, layer


class TestEndToEndHarness:
    def test_covers_all_models(self, end_to_end):
        assert end_to_end.model_names() == ["A", "SQ", "V", "R", "S-R", "S-M", "DB", "MB"]
        for model in end_to_end.model_names():
            assert end_to_end.sampled_layers[model] <= 3
            assert end_to_end.extrapolation[model] >= 1.0

    def test_speedup_rows_have_geomean(self, end_to_end):
        rows = end_to_end_speedup_rows(end_to_end)
        assert rows[-1]["model"] == "GEOMEAN"
        assert len(rows) == 9

    def test_accelerators_beat_cpu_on_average(self, end_to_end):
        geomean = end_to_end_speedup_rows(end_to_end)[-1]
        assert geomean["Flexagon"] > 1.0

    def test_flexagon_at_least_matches_best_fixed(self, end_to_end):
        for row in end_to_end_speedup_rows(end_to_end)[:-1]:
            best_fixed = max(row[d] for d in ("SIGMA-like", "SpArch-like", "GAMMA-like"))
            assert row["Flexagon"] >= 0.95 * best_fixed, row["model"]

    def test_performance_per_area_rows(self, end_to_end):
        rows = performance_per_area_rows(end_to_end)
        assert rows[-1]["model"] == "GEOMEAN"
        assert all(value > 0 for row in rows for key, value in row.items() if key != "model")

    def test_best_dataflow_rows(self, end_to_end):
        rows = best_dataflow_per_layer_rows(end_to_end)
        assert len(rows) == sum(end_to_end.sampled_layers.values())
        assert all(row["best"] in ("IP", "OP", "Gust") for row in rows)

    def test_model_statistics_rows(self, end_to_end):
        rows = model_statistics_rows(end_to_end)
        assert len(rows) == 8
        assert all(row["layers"] > 0 for row in rows)


class TestAreaHarness:
    def test_area_rows(self):
        rows = area_power_rows()
        assert [row["design"] for row in rows] == [
            "SIGMA-like", "SpArch-like", "GAMMA-like", "Flexagon",
        ]
        assert rows[-1]["Total (mm2)"] > rows[0]["Total (mm2)"]

    def test_naive_rows(self):
        rows = naive_comparison_rows()
        designs = {row["design"]: row for row in rows}
        assert designs["Naive"]["total_mm2"] > designs["Flexagon"]["total_mm2"]
