"""Tests for the L1 memory structures: FIFO, streaming cache, PSRAM, write buffer, DRAM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.memory import (
    DramModel,
    Psram,
    StationaryFifo,
    StreamingCache,
    WriteBuffer,
)
from repro.arch.config import DramConfig


# ----------------------------------------------------------------------
# Stationary FIFO
# ----------------------------------------------------------------------
class TestStationaryFifo:
    def test_push_pop_order(self):
        fifo = StationaryFifo(4)
        for value in (1, 2, 3):
            fifo.push(value)
        assert [fifo.pop(), fifo.pop(), fifo.pop()] == [1, 2, 3]

    def test_capacity_enforced(self):
        fifo = StationaryFifo(2)
        fifo.push("a")
        fifo.push("b")
        assert fifo.is_full()
        with pytest.raises(OverflowError):
            fifo.push("c")

    def test_underflow_counts_stall(self):
        fifo = StationaryFifo(2)
        with pytest.raises(LookupError):
            fifo.pop()
        assert fifo.stats.stall_events == 1

    def test_push_fiber_partial(self):
        fifo = StationaryFifo(3)
        pushed = fifo.push_fiber([10, 20, 30, 40, 50])
        assert pushed == 3
        assert fifo.occupancy == 3

    def test_drain(self):
        fifo = StationaryFifo(4)
        fifo.push_fiber([1, 2, 3])
        assert fifo.drain() == [1, 2, 3]
        assert fifo.is_empty()

    def test_stats_and_peak_occupancy(self):
        fifo = StationaryFifo(8)
        fifo.push_fiber(range(5))
        fifo.pop()
        assert fifo.stats.pushes == 5
        assert fifo.stats.pops == 1
        assert fifo.stats.peak_occupancy == 5
        assert fifo.free_slots == 4

    def test_base_address_register(self):
        fifo = StationaryFifo(4)
        fifo.set_base_address(0x1000)
        assert fifo.base_address == 0x1000

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StationaryFifo(0)


# ----------------------------------------------------------------------
# Streaming cache
# ----------------------------------------------------------------------
class TestStreamingCache:
    def make(self, capacity=1024, line=64, assoc=2):
        return StreamingCache(capacity, line, assoc, element_bytes=4)

    def test_geometry(self):
        cache = self.make()
        assert cache.num_lines == 16
        assert cache.num_sets == 8
        assert cache.elements_per_line == 16

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            StreamingCache(1000, 64, 2)
        with pytest.raises(ValueError):
            StreamingCache(1024, 64, 3)
        with pytest.raises(ValueError):
            StreamingCache(0, 64, 2)

    def test_first_access_misses_second_hits(self):
        cache = self.make()
        assert cache.access_element(0) is False
        assert cache.access_element(1) is True  # same line
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_miss_rate(self):
        cache = self.make()
        cache.access_element(0)
        cache.access_element(0)
        cache.access_element(0)
        assert cache.stats.miss_rate == pytest.approx(1 / 3)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_cache_rates(self):
        cache = self.make()
        assert cache.stats.miss_rate == 0.0
        assert cache.stats.hit_rate == 0.0

    def test_lru_eviction_within_set(self):
        cache = self.make(capacity=256, line=64, assoc=2)  # 4 lines, 2 sets
        # Lines 0, 2, 4 all map to set 0 (line_addr % 2 == 0).
        cache.access_byte(0 * 64)
        cache.access_byte(2 * 64)
        cache.access_byte(4 * 64)  # evicts line 0 (LRU)
        assert cache.access_byte(2 * 64) is True
        assert cache.access_byte(0 * 64) is False  # was evicted

    def test_lru_updated_on_hit(self):
        cache = self.make(capacity=256, line=64, assoc=2)
        cache.access_byte(0 * 64)
        cache.access_byte(2 * 64)
        cache.access_byte(0 * 64)  # touch 0 again -> 2 becomes LRU
        cache.access_byte(4 * 64)  # evicts 2
        assert cache.access_byte(0 * 64) is True
        assert cache.access_byte(2 * 64) is False

    def test_sequential_scan_larger_than_cache_always_misses_on_repeat(self):
        cache = self.make(capacity=256, line=64, assoc=2)
        lines = 12  # 3x the capacity in lines
        for _ in range(2):
            for i in range(lines):
                cache.access_byte(i * 64)
        # Every access in both passes is a miss (sequential LRU thrashing).
        assert cache.stats.misses == 2 * lines

    def test_working_set_smaller_than_cache_hits_on_repeat(self):
        cache = self.make(capacity=1024, line=64, assoc=2)
        for _ in range(3):
            for i in range(8):
                cache.access_byte(i * 64)
        assert cache.stats.misses == 8
        assert cache.stats.hits == 16

    def test_access_range(self):
        cache = self.make()
        misses = cache.access_range(0, 32)  # 32 elements * 4B = 2 lines
        assert misses == 2

    def test_contains_line_of(self):
        cache = self.make()
        assert not cache.contains_line_of(0)
        cache.access_element(0)
        assert cache.contains_line_of(5)  # same line

    def test_invalidate_and_reset_stats(self):
        cache = self.make()
        cache.access_element(0)
        cache.invalidate()
        assert not cache.contains_line_of(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0

    def test_miss_traffic_bytes(self):
        cache = self.make(line=64)
        cache.access_element(0)
        cache.access_element(100)
        assert cache.miss_traffic_bytes == 2 * 64

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            self.make().access_byte(-1)

    @given(st.lists(st.integers(0, 4095), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, offsets):
        cache = self.make()
        for offset in offsets:
            cache.access_byte(offset)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses
        assert cache.stats.accesses == len(offsets)

    @given(st.lists(st.integers(0, 2047), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, offsets):
        cache = self.make(capacity=512, line=64, assoc=2)
        for offset in offsets:
            cache.access_byte(offset)
        resident = sum(len(ways) for ways in cache._sets)
        assert resident <= cache.num_lines


# ----------------------------------------------------------------------
# PSRAM
# ----------------------------------------------------------------------
class TestPsram:
    def make(self, capacity=1024, block=64, sets=4):
        return Psram(capacity, block, sets, element_bytes=4)

    def test_geometry(self):
        psram = self.make()
        assert psram.total_blocks == 16
        assert psram.blocks_per_set == 4
        assert psram.elements_per_block == 16

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Psram(1000, 64, 4)
        with pytest.raises(ValueError):
            Psram(128, 64, 4)  # fewer blocks than sets
        with pytest.raises(ValueError):
            Psram(0, 64, 1)

    def test_partial_write_then_consume_fifo_order(self):
        psram = self.make()
        for i in range(5):
            assert psram.partial_write(row=1, k=3, element=("e", i))
        consumed = [psram.consume(1, 3) for _ in range(5)]
        assert consumed == [("e", i) for i in range(5)]

    def test_fiber_length_tracks_unconsumed(self):
        psram = self.make()
        for i in range(3):
            psram.partial_write(0, 7, i)
        assert psram.fiber_length(0, 7) == 3
        psram.consume(0, 7)
        assert psram.fiber_length(0, 7) == 2

    def test_consumed_block_is_freed(self):
        psram = self.make(capacity=256, block=64, sets=1)  # 4 blocks, 16 elems each
        for i in range(16):
            psram.partial_write(0, 1, i)
        assert psram.blocks_in_use() == 1
        for _ in range(16):
            psram.consume(0, 1)
        assert psram.blocks_in_use() == 0

    def test_fiber_spills_into_multiple_blocks(self):
        psram = self.make(capacity=256, block=64, sets=1)
        for i in range(20):  # > 16 elements per block
            psram.partial_write(0, 1, i)
        assert psram.blocks_in_use() == 2
        assert psram.fiber_length(0, 1) == 20
        assert list(psram.consume_fiber(0, 1)) == list(range(20))

    def test_different_k_fibers_in_same_set(self):
        psram = self.make()
        psram.partial_write(0, 1, "a")
        psram.partial_write(0, 2, "b")
        assert sorted(psram.fiber_ks(0)) == [1, 2]
        assert psram.consume(0, 2) == "b"
        assert psram.consume(0, 1) == "a"

    def test_rows_map_to_sets(self):
        psram = self.make(sets=4)
        assert psram.set_index(0) == 0
        assert psram.set_index(5) == 1
        psram.partial_write(0, 1, "x")
        psram.partial_write(4, 1, "y")  # same set as row 0
        assert psram.blocks_in_use() == 2

    def test_spill_when_set_full(self):
        psram = self.make(capacity=256, block=64, sets=2)  # 2 blocks per set
        stored = [psram.partial_write(0, k, "v") for k in range(3)]
        # Third distinct k needs a third block in set 0 -> spills.
        assert stored == [True, True, False]
        assert psram.stats.spilled_elements == 1

    def test_consume_missing_fiber_raises(self):
        psram = self.make()
        with pytest.raises(LookupError):
            psram.consume(0, 9)

    def test_reset_clears_contents_keeps_stats(self):
        psram = self.make()
        psram.partial_write(0, 1, "x")
        psram.reset()
        assert psram.blocks_in_use() == 0
        assert psram.stats.partial_writes == 1

    def test_occupancy_bytes(self):
        psram = self.make()
        for i in range(6):
            psram.partial_write(2, 0, i)
        assert psram.occupancy_bytes() == 6 * 4

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_everything_written_onchip_can_be_consumed(self, writes):
        psram = Psram(4096, 64, 4, element_bytes=4)
        expected: dict[tuple[int, int], list[int]] = {}
        for i, (row, k) in enumerate(writes):
            if psram.partial_write(row, k, i):
                expected.setdefault((row, k), []).append(i)
        for (row, k), values in expected.items():
            assert list(psram.consume_fiber(row, k)) == values


# ----------------------------------------------------------------------
# Write buffer
# ----------------------------------------------------------------------
class TestWriteBuffer:
    def test_write_and_flush(self):
        buffer = WriteBuffer(capacity_bytes=16, element_bytes=4)
        for i in range(3):
            assert buffer.write(i) is True
        assert buffer.occupancy == 3
        assert buffer.flush() == 3
        assert buffer.occupancy == 0

    def test_full_buffer_stalls_and_drains(self):
        buffer = WriteBuffer(capacity_bytes=8, element_bytes=4)  # 2 elements
        buffer.write("a")
        buffer.write("b")
        accepted = buffer.write("c")
        assert accepted is False
        assert buffer.stats.full_stalls == 1
        assert buffer.occupancy == 2

    def test_bytes_written_tracked(self):
        buffer = WriteBuffer(capacity_bytes=8, element_bytes=4)
        buffer.write("a")
        buffer.flush()
        assert buffer.stats.bytes_written == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            WriteBuffer(0)


# ----------------------------------------------------------------------
# DRAM model
# ----------------------------------------------------------------------
class TestDramModel:
    def make(self):
        return DramModel(DramConfig(), frequency_hz=800e6)

    def test_traffic_breakdown(self):
        dram = self.make()
        dram.read_stationary(100)
        dram.read_streaming(200)
        dram.write_output(50)
        dram.spill_psums(25)
        assert dram.traffic.total_read_bytes == 300
        assert dram.traffic.total_write_bytes == 75
        assert dram.traffic.total_bytes == 375
        assert dram.requests == 4

    def test_zero_byte_records_no_request(self):
        dram = self.make()
        dram.read_streaming(0)
        assert dram.requests == 0

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            self.make().read_streaming(-1)

    def test_latency_and_bandwidth(self):
        dram = self.make()
        assert dram.latency_cycles == 80
        assert dram.bytes_per_cycle == pytest.approx(320.0)

    def test_cycles_for_transfer(self):
        dram = self.make()
        assert dram.cycles_for(0) == 0.0
        assert dram.cycles_for(3200) == pytest.approx(80 + 10)

    def test_traffic_counter_merge(self):
        dram = self.make()
        dram.read_streaming(100)
        other = self.make()
        other.write_output(60)
        merged = dram.traffic.merged_with(other.traffic)
        assert merged.str_read_bytes == 100
        assert merged.output_write_bytes == 60
        assert merged.total_bytes == 160

    def test_total_transfer_cycles(self):
        dram = self.make()
        dram.read_streaming(3200)
        assert dram.total_transfer_cycles() == pytest.approx(dram.cycles_for(3200))
