"""Test-session hygiene for the simulation runtime.

The runtime's result cache is *input*-addressed, not code-addressed, so a
cache populated by an older build of the simulator would happily answer for
a newer one.  The test suite must never be lied to that way: unless the
caller explicitly pins ``REPRO_CACHE_DIR``, point the cache at a fresh
per-session temporary directory.  Within the session, caching and the
parallel executor stay fully active — the tests exercise them on purpose.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile

if "REPRO_CACHE_DIR" not in os.environ:
    _cache_dir = tempfile.mkdtemp(prefix="repro-test-cache-")
    os.environ["REPRO_CACHE_DIR"] = _cache_dir
    atexit.register(shutil.rmtree, _cache_dir, ignore_errors=True)
