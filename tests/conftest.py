"""Test-session hygiene for the simulation runtime.

The runtime's result cache is *input*-addressed, not code-addressed, so a
cache populated by an older build of the simulator would happily answer for
a newer one.  The test suite must never be lied to that way: unless the
caller explicitly pins ``REPRO_CACHE_DIR``, point the cache at a fresh
per-session temporary directory.  Within the session, caching and the
parallel executor stay fully active — the tests exercise them on purpose.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile

import pytest

if "REPRO_CACHE_DIR" not in os.environ:
    _cache_dir = tempfile.mkdtemp(prefix="repro-test-cache-")
    os.environ["REPRO_CACHE_DIR"] = _cache_dir
    atexit.register(shutil.rmtree, _cache_dir, ignore_errors=True)

# The fabric tests drive workers in-process (or over listeners they bind
# themselves on port 0); a remote-mode runner must never auto-start the
# standalone coordinator listener on the default port during a test run.
os.environ.setdefault("REPRO_FABRIC_LISTEN", "0")


@pytest.fixture(autouse=True, scope="session")
def _shared_session_hygiene():
    """Pin the shared-session registry to this session's environment.

    ``shared_session`` memoizes per-settings sessions that capture the
    runner — and through it the cache directory — the environment named
    when they were first built.  Dropping the registry at both edges of the
    pytest session guarantees no session built under another environment
    (an earlier in-process pytest run, an importing harness) leaks into
    this one, and nothing this session built leaks out.  Within the
    session the registry stays warm on purpose: the suite's modules share
    the memoized experiment grids.
    """
    from repro.api import reset_shared_sessions

    reset_shared_sessions()
    yield
    reset_shared_sessions()
