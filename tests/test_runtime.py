"""Tests of the batched simulation runtime (jobs, cache, runner).

Covers the three properties the runtime guarantees:

* **Determinism** — ``BatchRunner(parallel=True)`` and
  ``BatchRunner(parallel=False)`` produce bit-identical results for the same
  settings.
* **Memoization** — a warm on-disk cache answers a repeated sweep without
  re-simulating any layer (asserted through the runner's job counters).
* **Stable identity** — job keys are pure content hashes: equal inputs give
  equal keys in any process, regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.arch.config import default_config
from repro.dataflows import Dataflow
from repro.experiments import default_settings, run_end_to_end, run_layerwise_comparison
from repro.runtime import (
    CPU_DESIGN,
    DESIGN_ORDER,
    ENGINE_DESIGN,
    MISS,
    BatchRunner,
    ResultCache,
    SimJob,
    execute_job,
)
from repro.sparse import random_sparse
from repro.workloads.representative import REPRESENTATIVE_LAYERS

#: Tiny budgets: the runtime tests re-run the end-to-end sweep several times.
SETTINGS = default_settings(max_dense_macs=1e5, max_layers_per_model=2)


def _layer_job(design: str = "SIGMA-like", index: int = 0, **overrides) -> SimJob:
    spec = REPRESENTATIVE_LAYERS[index]
    kwargs = dict(
        design=design,
        config=default_config(),
        spec=spec,
        scale=0.05,
        seed=spec.deterministic_seed(0),
        layer_name=spec.name,
    )
    kwargs.update(overrides)
    return SimJob(**kwargs)


# ----------------------------------------------------------------------
# SimJob construction and keys
# ----------------------------------------------------------------------
class TestSimJob:
    def test_rejects_unknown_design(self):
        with pytest.raises(ValueError, match="unknown design"):
            _layer_job(design="TPU-like")

    def test_requires_spec_or_operands(self):
        with pytest.raises(ValueError, match="layer spec or"):
            SimJob(design="SIGMA-like", config=default_config())

    def test_rejects_spec_and_operands_together(self):
        a = random_sparse(8, 8, density=0.5, seed=0)
        b = random_sparse(8, 8, density=0.5, seed=1)
        with pytest.raises(ValueError, match="either a layer spec"):
            SimJob(
                design="SIGMA-like",
                config=default_config(),
                spec=REPRESENTATIVE_LAYERS[0],
                a=a,
                b=b,
            )

    def test_rejects_half_an_operand_pair(self):
        a = random_sparse(8, 8, density=0.5, seed=0)
        with pytest.raises(ValueError, match="together"):
            SimJob(design="SIGMA-like", config=default_config(), a=a)

    def test_engine_jobs_need_a_dataflow(self):
        with pytest.raises(ValueError, match="force a dataflow"):
            _layer_job(design=ENGINE_DESIGN)

    def test_equal_jobs_have_equal_keys(self):
        assert _layer_job().key() == _layer_job().key()

    def test_key_covers_the_inputs(self):
        base = _layer_job()
        assert base.key() != _layer_job(design="GAMMA-like").key()
        assert base.key() != _layer_job(seed=12345).key()
        assert base.key() != _layer_job(scale=0.06).key()
        assert base.key() != _layer_job(config=default_config(num_multipliers=32)).key()
        assert base.key() != _layer_job(index=1).key()

    def test_key_covers_operand_contents(self):
        config = default_config()
        a = random_sparse(10, 10, density=0.4, seed=0)
        b1 = random_sparse(10, 10, density=0.4, seed=1)
        b2 = random_sparse(10, 10, density=0.4, seed=2)
        job1 = SimJob(design="SIGMA-like", config=config, a=a, b=b1)
        job2 = SimJob(design="SIGMA-like", config=config, a=a, b=b2)
        assert job1.key() != job2.key()

    def test_default_seed_is_normalised_into_the_key(self):
        spec = REPRESENTATIVE_LAYERS[0]
        implicit = _layer_job(seed=None)
        explicit = _layer_job(seed=spec.deterministic_seed())
        assert implicit.key() == explicit.key()


class TestKeyStabilityAcrossProcesses:
    def test_key_is_independent_of_the_hash_seed(self):
        """The same job must hash identically in a fresh interpreter."""
        job = _layer_job()
        code = (
            "from repro.arch.config import default_config\n"
            "from repro.runtime import SimJob\n"
            "from repro.workloads.representative import REPRESENTATIVE_LAYERS\n"
            "spec = REPRESENTATIVE_LAYERS[0]\n"
            "job = SimJob(design='SIGMA-like', config=default_config(), spec=spec,\n"
            "             scale=0.05, seed=spec.deterministic_seed(0), layer_name=spec.name)\n"
            "print(job.key())\n"
        )
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            assert proc.stdout.strip() == job.key()


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is MISS
        cache.put("ab" * 32, {"cycles": 42.0})
        assert cache.get("ab" * 32) == {"cycles": 42.0}
        assert cache.entry_count() == 1

    def test_survives_a_new_instance(self, tmp_path):
        ResultCache(tmp_path).put("cd" * 32, [1, 2, 3])
        assert ResultCache(tmp_path).get("cd" * 32) == [1, 2, 3]

    def test_returns_fresh_copies(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ef" * 32, {"mutable": []})
        first = cache.get("ef" * 32)
        first["mutable"].append("oops")
        assert cache.get("ef" * 32) == {"mutable": []}

    def test_corrupt_entry_is_a_miss_and_gets_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "12" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is MISS
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("34" * 32, 1)
        cache.put("56" * 32, 2)
        stranded = cache.path_for("78" * 32).parent / "killed-writer.tmp"
        stranded.parent.mkdir(parents=True, exist_ok=True)
        stranded.write_bytes(b"partial")
        assert cache.clear() == 2
        assert cache.get("34" * 32) is MISS
        assert cache.entry_count() == 0
        assert not stranded.exists()

    def test_memory_level_is_bounded(self, tmp_path, monkeypatch):
        from repro.runtime import cache as cache_module

        monkeypatch.setattr(cache_module, "MEMORY_ENTRY_LIMIT", 3)
        cache = ResultCache(tmp_path)
        keys = [f"{i:02d}" * 32 for i in range(5)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        assert len(cache._memory) == 3
        # Evicted entries fall back to disk transparently.
        assert cache.get(keys[0]) == 0


class TestResultCachePrune:
    """``prune(max_size_bytes)`` evicts least-recently-written entries first."""

    @staticmethod
    def _filled_cache(tmp_path, count=4):
        cache = ResultCache(tmp_path)
        keys = [f"{i:02d}" * 32 for i in range(count)]
        for age, key in enumerate(keys):
            cache.put(key, {"payload": "x" * 1000, "key": key})
            # Pin distinct mtimes: keys[0] is the oldest, keys[-1] the newest.
            path = cache.path_for(key)
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        return cache, keys

    def test_evicts_oldest_entries_first(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        entry_size = cache.size_bytes() // len(keys)
        report = cache.prune(2 * entry_size)
        assert report.removed_entries == 2
        assert report.remaining_entries == 2
        assert cache.get(keys[0]) is MISS and cache.get(keys[1]) is MISS
        assert cache.get(keys[2]) is not MISS and cache.get(keys[3]) is not MISS

    def test_rewriting_refreshes_an_entrys_rank(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        # Rewrite the oldest entry: it becomes the newest and must survive.
        cache.put(keys[0], {"payload": "x" * 1000, "key": keys[0]})
        entry_size = cache.size_bytes() // len(keys)
        cache.prune(entry_size)
        assert cache.get(keys[0]) is not MISS
        assert cache.get(keys[1]) is MISS

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        report = cache.prune(0)
        assert report.removed_entries == len(keys)
        assert report.remaining_entries == 0
        assert report.remaining_bytes == 0
        assert cache.entry_count() == 0

    def test_prune_within_budget_removes_nothing(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        report = cache.prune(cache.size_bytes())
        assert report.removed_entries == 0
        assert report.freed_bytes == 0
        assert cache.entry_count() == len(keys)

    def test_pruned_entries_leave_the_memory_level_too(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        assert keys[0] in cache._memory
        cache.prune(0)
        assert keys[0] not in cache._memory

    def test_report_accounts_for_bytes(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        before = cache.size_bytes()
        report = cache.prune(before // 2)
        assert report.freed_bytes + report.remaining_bytes == before
        assert report.remaining_bytes == cache.size_bytes()

    def test_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            ResultCache(tmp_path).prune(-1)


# ----------------------------------------------------------------------
# BatchRunner behaviour
# ----------------------------------------------------------------------
class TestBatchRunner:
    def test_cache_miss_then_hit(self, tmp_path):
        runner = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        job = _layer_job()
        first = runner.run_one(job)
        assert runner.stats.cache_misses == 1 and runner.stats.executed == 1
        second = runner.run_one(job)
        assert runner.stats.cache_hits == 1
        assert runner.stats.executed == 1  # unchanged: second call hit
        assert second.total_cycles == first.total_cycles

    def test_in_batch_duplicates_execute_once(self, tmp_path):
        runner = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        job = _layer_job()
        results = runner.run([job, job, job])
        assert runner.stats.executed == 1
        assert len({id(r) for r in results}) == 3  # no aliased records
        assert len({r.total_cycles for r in results}) == 1

    def test_no_cache_means_no_memoization(self):
        runner = BatchRunner(parallel=False, cache=None)
        job = _layer_job()
        runner.run_one(job)
        runner.run_one(job)
        assert runner.stats.executed == 2

    def test_warm_disk_cache_spans_runner_instances(self, tmp_path):
        cold = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        jobs = [_layer_job(design=d) for d in DESIGN_ORDER + (CPU_DESIGN,)]
        cold.run(jobs)
        assert cold.stats.executed == len(jobs)
        warm = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        warm.run(jobs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(jobs)

    def test_execute_job_matches_runner_result(self):
        job = _layer_job(design="GAMMA-like")
        direct = execute_job(job)
        via_runner = BatchRunner(parallel=False, cache=None).run_one(job)
        assert via_runner.total_cycles == direct.total_cycles

    def test_engine_job_runs_forced_dataflow(self):
        job = _layer_job(design=ENGINE_DESIGN, dataflow=Dataflow.IP_M)
        result = execute_job(job)
        assert result.dataflow is Dataflow.IP_M
        assert result.total_cycles > 0

    def test_cacheless_runner_disables_nested_trial_cache(self):
        """A ``cache=None`` sweep must not consume persisted mapper trials."""
        from repro.runtime import build_design

        flexagon = build_design("Flexagon", default_config(), trial_cache=None)
        assert flexagon.mapper.runner.cache is None

    def test_custom_cache_dir_reaches_nested_trials(self, tmp_path):
        """Mapper trials land in the sweep's own cache, not the env default."""
        from repro.runtime import build_design, trial_runner

        flexagon = build_design(
            "Flexagon", default_config(), trial_cache=str(tmp_path)
        )
        assert str(flexagon.mapper.runner.cache.directory) == str(tmp_path)
        live = ResultCache(tmp_path)
        in_process = build_design("Flexagon", default_config(), trial_cache=live)
        assert in_process.mapper.runner.cache is live
        shared = build_design("Flexagon", default_config())
        assert shared.mapper.runner is trial_runner()

    def test_cpu_jobs_are_cached_independently_of_the_config(self):
        """One CPU baseline result serves every accelerator design point."""
        small = _layer_job(design=CPU_DESIGN, config=default_config(num_multipliers=16))
        large = _layer_job(design=CPU_DESIGN, config=default_config(num_multipliers=64))
        assert small.key() == large.key()
        assert (
            _layer_job(design="SIGMA-like", config=default_config(num_multipliers=16)).key()
            != _layer_job(design="SIGMA-like", config=default_config(num_multipliers=64)).key()
        )

    def test_hermetic_sweep_never_touches_the_default_cache(self, tmp_path):
        """End to end: a custom-cache run writes trials only under its dir."""
        own = tmp_path / "own"
        runner = BatchRunner(parallel=False, cache=ResultCache(own))
        runner.run_one(_layer_job(design="Flexagon"))
        assert ResultCache(own).entry_count() > 1  # job + its trials


# ----------------------------------------------------------------------
# Parallel vs serial equivalence (acceptance criterion)
# ----------------------------------------------------------------------
def _end_to_end_fingerprint(results) -> dict:
    fingerprint: dict[str, object] = {"cpu": dict(results.cpu_cycles)}
    for model in results.model_names():
        for design, record in results.accelerator_results[model].items():
            fingerprint[f"{model}/{design}"] = [
                (
                    layer.dataflow.name,
                    layer.cycles.stationary,
                    layer.cycles.streaming,
                    layer.cycles.merging,
                    layer.traffic.onchip_bytes,
                    layer.traffic.offchip_bytes,
                )
                for layer in record.layer_results
            ]
    return fingerprint


class TestParallelSerialEquivalence:
    def test_end_to_end_bit_identical(self):
        serial = run_end_to_end(SETTINGS, runner=BatchRunner(parallel=False, cache=None))
        parallel = run_end_to_end(
            SETTINGS, runner=BatchRunner(parallel=True, max_workers=4, cache=None)
        )
        assert _end_to_end_fingerprint(serial) == _end_to_end_fingerprint(parallel)

    def test_layerwise_bit_identical(self):
        serial = run_layerwise_comparison(
            SETTINGS, runner=BatchRunner(parallel=False, cache=None)
        )
        parallel = run_layerwise_comparison(
            SETTINGS, runner=BatchRunner(parallel=True, max_workers=4, cache=None)
        )
        for layer in serial.layer_names():
            for design in DESIGN_ORDER:
                assert (
                    serial.result(layer, design).total_cycles
                    == parallel.result(layer, design).total_cycles
                ), (layer, design)


# ----------------------------------------------------------------------
# Warm-cache acceptance: a second sweep simulates nothing
# ----------------------------------------------------------------------
class TestWarmCacheEndToEnd:
    def test_second_run_executes_zero_jobs(self, tmp_path):
        cold = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        first = run_end_to_end(SETTINGS, runner=cold)
        assert cold.stats.executed > 0
        assert cold.stats.cache_hits == 0

        warm = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        second = run_end_to_end(SETTINGS, runner=warm)
        assert warm.stats.executed == 0
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hits == warm.stats.submitted > 0
        assert _end_to_end_fingerprint(first) == _end_to_end_fingerprint(second)

    def test_parallel_writers_fill_a_shared_cache(self, tmp_path):
        cold = BatchRunner(parallel=True, max_workers=4, cache=ResultCache(tmp_path))
        run_layerwise_comparison(SETTINGS, runner=cold)
        warm = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        run_layerwise_comparison(SETTINGS, runner=warm)
        assert warm.stats.executed == 0
