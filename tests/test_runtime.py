"""Tests of the batched simulation runtime (jobs, cache, runner).

Covers the three properties the runtime guarantees:

* **Determinism** — ``BatchRunner(parallel=True)`` and
  ``BatchRunner(parallel=False)`` produce bit-identical results for the same
  settings.
* **Memoization** — a warm on-disk cache answers a repeated sweep without
  re-simulating any layer (asserted through the runner's job counters).
* **Stable identity** — job keys are pure content hashes: equal inputs give
  equal keys in any process, regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.arch.config import default_config
from repro.dataflows import Dataflow
from repro.experiments import default_settings, run_end_to_end, run_layerwise_comparison
from repro.runtime import (
    CPU_DESIGN,
    DESIGN_ORDER,
    ENGINE_DESIGN,
    MISS,
    BatchRunner,
    ResultCache,
    SimJob,
    execute_job,
)
from repro.sparse import random_sparse
from repro.workloads.representative import REPRESENTATIVE_LAYERS

#: Tiny budgets: the runtime tests re-run the end-to-end sweep several times.
SETTINGS = default_settings(max_dense_macs=1e5, max_layers_per_model=2)


def _layer_job(design: str = "SIGMA-like", index: int = 0, **overrides) -> SimJob:
    spec = REPRESENTATIVE_LAYERS[index]
    kwargs = dict(
        design=design,
        config=default_config(),
        spec=spec,
        scale=0.05,
        seed=spec.deterministic_seed(0),
        layer_name=spec.name,
    )
    kwargs.update(overrides)
    return SimJob(**kwargs)


# ----------------------------------------------------------------------
# SimJob construction and keys
# ----------------------------------------------------------------------
class TestSimJob:
    def test_rejects_unknown_design(self):
        with pytest.raises(ValueError, match="unknown design"):
            _layer_job(design="TPU-like")

    def test_requires_spec_or_operands(self):
        with pytest.raises(ValueError, match="layer spec or"):
            SimJob(design="SIGMA-like", config=default_config())

    def test_rejects_spec_and_operands_together(self):
        a = random_sparse(8, 8, density=0.5, seed=0)
        b = random_sparse(8, 8, density=0.5, seed=1)
        with pytest.raises(ValueError, match="either a layer spec"):
            SimJob(
                design="SIGMA-like",
                config=default_config(),
                spec=REPRESENTATIVE_LAYERS[0],
                a=a,
                b=b,
            )

    def test_rejects_half_an_operand_pair(self):
        a = random_sparse(8, 8, density=0.5, seed=0)
        with pytest.raises(ValueError, match="together"):
            SimJob(design="SIGMA-like", config=default_config(), a=a)

    def test_engine_jobs_need_a_dataflow(self):
        with pytest.raises(ValueError, match="force a dataflow"):
            _layer_job(design=ENGINE_DESIGN)

    def test_equal_jobs_have_equal_keys(self):
        assert _layer_job().key() == _layer_job().key()

    def test_key_covers_the_inputs(self):
        base = _layer_job()
        assert base.key() != _layer_job(design="GAMMA-like").key()
        assert base.key() != _layer_job(seed=12345).key()
        assert base.key() != _layer_job(scale=0.06).key()
        assert base.key() != _layer_job(config=default_config(num_multipliers=32)).key()
        assert base.key() != _layer_job(index=1).key()

    def test_key_covers_operand_contents(self):
        config = default_config()
        a = random_sparse(10, 10, density=0.4, seed=0)
        b1 = random_sparse(10, 10, density=0.4, seed=1)
        b2 = random_sparse(10, 10, density=0.4, seed=2)
        job1 = SimJob(design="SIGMA-like", config=config, a=a, b=b1)
        job2 = SimJob(design="SIGMA-like", config=config, a=a, b=b2)
        assert job1.key() != job2.key()

    def test_default_seed_is_normalised_into_the_key(self):
        spec = REPRESENTATIVE_LAYERS[0]
        implicit = _layer_job(seed=None)
        explicit = _layer_job(seed=spec.deterministic_seed())
        assert implicit.key() == explicit.key()


class TestKeyStabilityAcrossProcesses:
    def test_key_is_independent_of_the_hash_seed(self):
        """The same job must hash identically in a fresh interpreter."""
        job = _layer_job()
        code = (
            "from repro.arch.config import default_config\n"
            "from repro.runtime import SimJob\n"
            "from repro.workloads.representative import REPRESENTATIVE_LAYERS\n"
            "spec = REPRESENTATIVE_LAYERS[0]\n"
            "job = SimJob(design='SIGMA-like', config=default_config(), spec=spec,\n"
            "             scale=0.05, seed=spec.deterministic_seed(0), layer_name=spec.name)\n"
            "print(job.key())\n"
        )
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            assert proc.stdout.strip() == job.key()


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is MISS
        cache.put("ab" * 32, {"cycles": 42.0})
        assert cache.get("ab" * 32) == {"cycles": 42.0}
        assert cache.entry_count() == 1

    def test_survives_a_new_instance(self, tmp_path):
        ResultCache(tmp_path).put("cd" * 32, [1, 2, 3])
        assert ResultCache(tmp_path).get("cd" * 32) == [1, 2, 3]

    def test_returns_fresh_copies(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ef" * 32, {"mutable": []})
        first = cache.get("ef" * 32)
        first["mutable"].append("oops")
        assert cache.get("ef" * 32) == {"mutable": []}

    def test_corrupt_entry_is_a_miss_and_gets_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "12" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is MISS
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("34" * 32, 1)
        cache.put("56" * 32, 2)
        stranded = cache.path_for("78" * 32).parent / "killed-writer.tmp"
        stranded.parent.mkdir(parents=True, exist_ok=True)
        stranded.write_bytes(b"partial")
        assert cache.clear() == 2
        assert cache.get("34" * 32) is MISS
        assert cache.entry_count() == 0
        assert not stranded.exists()

    def test_memory_level_is_bounded(self, tmp_path, monkeypatch):
        from repro.runtime import cache as cache_module

        monkeypatch.setattr(cache_module, "MEMORY_ENTRY_LIMIT", 3)
        cache = ResultCache(tmp_path)
        keys = [f"{i:02d}" * 32 for i in range(5)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        assert len(cache._memory) == 3
        # Evicted entries fall back to disk transparently.
        assert cache.get(keys[0]) == 0

    def test_missing_probes_without_reading(self, tmp_path):
        cache = ResultCache(tmp_path)
        present = ["ab" * 32, "cd" * 32]
        absent = ["ef" * 32, "01" * 32]
        for key in present:
            cache.put(key, {"cycles": 1.0})
        probe = ResultCache(tmp_path)  # cold memory level: pure disk probe
        assert sorted(probe.missing(present + absent)) == sorted(absent)
        assert probe.missing(present) == []
        # The probe listed shards but never decoded an entry into memory.
        assert not probe._memory

    def test_missing_on_an_empty_cache_reports_everything(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        keys = ["ab" * 32, "cd" * 32]
        assert cache.missing(keys) == keys

    def test_missing_sees_memory_and_legacy_levels(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, 1)  # in memory + disk
        legacy_key = "cd" * 32
        cache.legacy_path_for(legacy_key).write_bytes(b"whatever")  # flat file
        assert cache.missing(["ab" * 32, legacy_key, "ef" * 32]) == ["ef" * 32]


class TestResultCacheConcurrentMutation:
    """``missing()``/``get_many()`` against a directory another writer is
    mutating underneath them — the situation every fabric worker and every
    ``cache pull`` peer puts a shared cache directory in."""

    @staticmethod
    def _keys(count):
        import hashlib

        return [hashlib.sha256(f"entry-{i}".encode()).hexdigest() for i in range(count)]

    def test_probes_survive_a_concurrent_mutator_thread(self, tmp_path):
        """No probe may crash or return garbage while entries appear and
        vanish mid-listing; found values must always decode correctly."""
        import random
        import threading

        keys = self._keys(48)
        writer = ResultCache(tmp_path)
        stop = threading.Event()
        failures: list[BaseException] = []

        def mutate():
            rng = random.Random(7)
            try:
                while not stop.is_set():
                    key = rng.choice(keys)
                    if rng.random() < 0.6:
                        writer.put(key, {"value": key})
                    else:
                        writer.path_for(key).unlink(missing_ok=True)
            except BaseException as error:  # surfaced by the main thread
                failures.append(error)

        thread = threading.Thread(target=mutate, daemon=True)
        thread.start()
        try:
            for _ in range(150):
                # Fresh instances: every probe is a pure disk probe, racing
                # the writer's os.replace/unlink rather than its memory.
                reader = ResultCache(tmp_path)
                absent = reader.missing(keys)
                found = reader.get_many(keys)
                assert set(found) <= set(keys)
                assert set(absent) <= set(keys)
                for key, value in found.items():
                    assert value == {"value": key}
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not failures, failures

    def test_missing_converges_on_another_processes_writes(self, tmp_path):
        """A writer *process* fills the directory while this process polls
        ``missing()``: the absent set must shrink to empty, and a fresh
        ``get_many`` must then return every entry."""
        import subprocess
        import sys
        import time

        keys = self._keys(16)
        writer = subprocess.Popen(
            [
                sys.executable,
                "-c",
                (
                    "import sys, time\n"
                    "from repro.runtime import ResultCache\n"
                    "cache = ResultCache(sys.argv[1])\n"
                    "for key in sys.argv[2:]:\n"
                    "    cache.put(key, {'value': key})\n"
                    "    time.sleep(0.01)\n"
                ),
                str(tmp_path),
                *keys,
            ],
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        try:
            reader = ResultCache(tmp_path)
            deadline = time.monotonic() + 120
            while reader.missing(keys):
                assert time.monotonic() < deadline, "writer too slow"
                reader = ResultCache(tmp_path)  # drop the memory level
        finally:
            assert writer.wait(timeout=120) == 0
        found = ResultCache(tmp_path).get_many(keys)
        assert sorted(found) == sorted(keys)
        assert all(found[key] == {"value": key} for key in keys)


class TestResultCachePrune:
    """``prune(max_size_bytes)`` evicts least-recently-written entries first."""

    @staticmethod
    def _filled_cache(tmp_path, count=4):
        cache = ResultCache(tmp_path)
        keys = [f"{i:02d}" * 32 for i in range(count)]
        for age, key in enumerate(keys):
            cache.put(key, {"payload": "x" * 1000, "key": key})
            # Pin distinct mtimes: keys[0] is the oldest, keys[-1] the newest.
            path = cache.path_for(key)
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        return cache, keys

    def test_evicts_oldest_entries_first(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        entry_size = cache.size_bytes() // len(keys)
        report = cache.prune(2 * entry_size)
        assert report.removed_entries == 2
        assert report.remaining_entries == 2
        assert cache.get(keys[0]) is MISS and cache.get(keys[1]) is MISS
        assert cache.get(keys[2]) is not MISS and cache.get(keys[3]) is not MISS

    def test_rewriting_refreshes_an_entrys_rank(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        # Rewrite the oldest entry: it becomes the newest and must survive.
        cache.put(keys[0], {"payload": "x" * 1000, "key": keys[0]})
        entry_size = cache.size_bytes() // len(keys)
        cache.prune(entry_size)
        assert cache.get(keys[0]) is not MISS
        assert cache.get(keys[1]) is MISS

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        report = cache.prune(0)
        assert report.removed_entries == len(keys)
        assert report.remaining_entries == 0
        assert report.remaining_bytes == 0
        assert cache.entry_count() == 0

    def test_prune_within_budget_removes_nothing(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        report = cache.prune(cache.size_bytes())
        assert report.removed_entries == 0
        assert report.freed_bytes == 0
        assert cache.entry_count() == len(keys)

    def test_pruned_entries_leave_the_memory_level_too(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        assert keys[0] in cache._memory
        cache.prune(0)
        assert keys[0] not in cache._memory

    def test_report_accounts_for_bytes(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        before = cache.size_bytes()
        report = cache.prune(before // 2)
        assert report.freed_bytes + report.remaining_bytes == before
        assert report.remaining_bytes == cache.size_bytes()

    def test_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            ResultCache(tmp_path).prune(-1)


# ----------------------------------------------------------------------
# BatchRunner behaviour
# ----------------------------------------------------------------------
class TestBatchRunner:
    def test_cache_miss_then_hit(self, tmp_path):
        runner = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        job = _layer_job()
        first = runner.run_one(job)
        assert runner.stats.cache_misses == 1 and runner.stats.executed == 1
        second = runner.run_one(job)
        assert runner.stats.cache_hits == 1
        assert runner.stats.executed == 1  # unchanged: second call hit
        assert second.total_cycles == first.total_cycles

    def test_in_batch_duplicates_execute_once(self, tmp_path):
        runner = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        job = _layer_job()
        results = runner.run([job, job, job])
        assert runner.stats.executed == 1
        # Result records are immutable by contract, so duplicates share one
        # record instead of paying a deep copy per duplicate slot.
        assert results[0] is results[1] is results[2]
        assert len({r.total_cycles for r in results}) == 1

    def test_duplicate_results_are_frozen_not_copied(self, tmp_path):
        """Regression: aliasing is safe because the records cannot mutate."""
        import copy
        from dataclasses import FrozenInstanceError

        calls = []
        original = copy.deepcopy

        def counting_deepcopy(value, *args, **kwargs):
            calls.append(type(value).__name__)
            return original(value, *args, **kwargs)

        runner = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        job = _layer_job()
        try:
            copy.deepcopy = counting_deepcopy
            first, second = runner.run([job, job])
        finally:
            copy.deepcopy = original
        assert first is second
        # Duplicates no longer trigger a deep copy of the result record.
        # (``dataclasses.asdict`` in the key hash deep-copies leaf scalars;
        # only record-level copies would betray the old aliasing guard.)
        assert "LayerSimResult" not in calls and "CpuRunResult" not in calls
        with pytest.raises(FrozenInstanceError):
            first.layer_name = "mutated"

    def test_no_cache_means_no_memoization(self):
        runner = BatchRunner(parallel=False, cache=None)
        job = _layer_job()
        runner.run_one(job)
        runner.run_one(job)
        assert runner.stats.executed == 2

    def test_warm_disk_cache_spans_runner_instances(self, tmp_path):
        cold = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        jobs = [_layer_job(design=d) for d in DESIGN_ORDER + (CPU_DESIGN,)]
        cold.run(jobs)
        assert cold.stats.executed == len(jobs)
        warm = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        warm.run(jobs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(jobs)

    def test_execute_job_matches_runner_result(self):
        job = _layer_job(design="GAMMA-like")
        direct = execute_job(job)
        via_runner = BatchRunner(parallel=False, cache=None).run_one(job)
        assert via_runner.total_cycles == direct.total_cycles

    def test_engine_job_runs_forced_dataflow(self):
        job = _layer_job(design=ENGINE_DESIGN, dataflow=Dataflow.IP_M)
        result = execute_job(job)
        assert result.dataflow is Dataflow.IP_M
        assert result.total_cycles > 0

    def test_cacheless_runner_disables_nested_trial_cache(self):
        """A ``cache=None`` sweep must not consume persisted mapper trials."""
        from repro.runtime import build_design

        flexagon = build_design("Flexagon", default_config(), trial_cache=None)
        assert flexagon.mapper.runner.cache is None

    def test_custom_cache_dir_reaches_nested_trials(self, tmp_path):
        """Mapper trials land in the sweep's own cache, not the env default."""
        from repro.runtime import build_design, trial_runner

        flexagon = build_design(
            "Flexagon", default_config(), trial_cache=str(tmp_path)
        )
        assert str(flexagon.mapper.runner.cache.directory) == str(tmp_path)
        live = ResultCache(tmp_path)
        in_process = build_design("Flexagon", default_config(), trial_cache=live)
        assert in_process.mapper.runner.cache is live
        shared = build_design("Flexagon", default_config())
        assert shared.mapper.runner is trial_runner()

    def test_cpu_jobs_are_cached_independently_of_the_config(self):
        """One CPU baseline result serves every accelerator design point."""
        small = _layer_job(design=CPU_DESIGN, config=default_config(num_multipliers=16))
        large = _layer_job(design=CPU_DESIGN, config=default_config(num_multipliers=64))
        assert small.key() == large.key()
        assert (
            _layer_job(design="SIGMA-like", config=default_config(num_multipliers=16)).key()
            != _layer_job(design="SIGMA-like", config=default_config(num_multipliers=64)).key()
        )

    def test_hermetic_sweep_never_touches_the_default_cache(self, tmp_path):
        """End to end: a custom-cache run writes trials only under its dir."""
        own = tmp_path / "own"
        runner = BatchRunner(parallel=False, cache=ResultCache(own))
        runner.run_one(_layer_job(design="Flexagon"))
        assert ResultCache(own).entry_count() > 1  # job + its trials


# ----------------------------------------------------------------------
# Parallel vs serial equivalence (acceptance criterion)
# ----------------------------------------------------------------------
def _end_to_end_fingerprint(results) -> dict:
    fingerprint: dict[str, object] = {"cpu": dict(results.cpu_cycles)}
    for model in results.model_names():
        for design, record in results.accelerator_results[model].items():
            fingerprint[f"{model}/{design}"] = [
                (
                    layer.dataflow.name,
                    layer.cycles.stationary,
                    layer.cycles.streaming,
                    layer.cycles.merging,
                    layer.traffic.onchip_bytes,
                    layer.traffic.offchip_bytes,
                )
                for layer in record.layer_results
            ]
    return fingerprint


class TestParallelSerialEquivalence:
    def test_end_to_end_bit_identical(self):
        serial = run_end_to_end(SETTINGS, runner=BatchRunner(parallel=False, cache=None))
        parallel = run_end_to_end(
            SETTINGS, runner=BatchRunner(parallel=True, max_workers=4, cache=None)
        )
        assert _end_to_end_fingerprint(serial) == _end_to_end_fingerprint(parallel)

    def test_layerwise_bit_identical(self):
        serial = run_layerwise_comparison(
            SETTINGS, runner=BatchRunner(parallel=False, cache=None)
        )
        parallel = run_layerwise_comparison(
            SETTINGS, runner=BatchRunner(parallel=True, max_workers=4, cache=None)
        )
        for layer in serial.layer_names():
            for design in DESIGN_ORDER:
                assert (
                    serial.result(layer, design).total_cycles
                    == parallel.result(layer, design).total_cycles
                ), (layer, design)


# ----------------------------------------------------------------------
# Warm-cache acceptance: a second sweep simulates nothing
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_persistent_pool_is_reused_across_batches(self):
        from repro.runtime.pool import WorkerPool

        pool = WorkerPool()
        try:
            first = pool.executor(2)
            assert pool.executor(2) is first
            assert pool.width == 2
        finally:
            pool.shutdown()
        assert pool.width == 0

    def test_pool_grows_when_more_workers_are_requested(self):
        from repro.runtime.pool import WorkerPool

        pool = WorkerPool()
        try:
            narrow = pool.executor(1)
            wide = pool.executor(3)
            assert wide is not narrow
            assert pool.width == 3
            # Asking for fewer workers keeps the wide pool.
            assert pool.executor(2) is wide
        finally:
            pool.shutdown()

    def test_growth_retires_the_old_executor_without_breaking_it(self):
        """A concurrent batch holding the pre-growth executor must be able
        to keep submitting to it; growth retires, never tears down in use."""
        from repro.runtime.pool import WorkerPool

        pool = WorkerPool()
        try:
            narrow = pool.executor(1)
            wide = pool.executor(2)
            assert wide is not narrow
            assert narrow.submit(int, "7").result() == 7
            assert wide.submit(int, "8").result() == 8
        finally:
            pool.shutdown()

    def test_broken_executor_is_replaced(self):
        """One crashed batch must not poison every later batch."""
        from repro.runtime.pool import WorkerPool

        pool = WorkerPool()
        try:
            poisoned = pool.executor(1)
            # Simulate a dead worker: the executor flags itself broken and
            # refuses further submissions.
            poisoned._broken = "a worker died"
            replacement = pool.executor(1)
            assert replacement is not poisoned
            assert replacement.submit(int, "7").result() == 7
        finally:
            pool.shutdown()

    def test_retired_executors_are_reaped_on_demand(self):
        """Growth retires the old executor; reaping shuts the retiree down
        without touching the live one (the retired-executor leak fix)."""
        from repro.runtime.pool import WorkerPool

        pool = WorkerPool()
        try:
            narrow = pool.executor(1)
            wide = pool.executor(2)
            assert wide is not narrow
            assert pool.reap_retired() == 1
            assert pool.reap_retired() == 0  # idempotent
            with pytest.raises(RuntimeError):
                narrow.submit(int, "7")  # the retiree is really shut down
            assert wide.submit(int, "8").result() == 8
        finally:
            pool.shutdown()

    def test_atexit_sweep_reaps_every_live_pool(self):
        """A pool whose owner never calls shutdown() must still get its
        retirees reaped by the module-level atexit sweep."""
        from repro.runtime.pool import WorkerPool, sweep_retired_pools

        pool = WorkerPool()
        try:
            abandoned = pool.executor(1)
            pool.executor(2)  # retires the narrow executor
            assert sweep_retired_pools() >= 1
            with pytest.raises(RuntimeError):
                abandoned.submit(int, "7")
        finally:
            pool.shutdown()

    def test_env_knob_validates(self, monkeypatch):
        from repro.runtime.pool import pool_mode_from_env

        monkeypatch.setenv("REPRO_POOL", "ephemeral")
        assert pool_mode_from_env() == "ephemeral"
        monkeypatch.delenv("REPRO_POOL")
        assert pool_mode_from_env() == "persistent"
        monkeypatch.setenv("REPRO_POOL", "bogus")
        with pytest.raises(ValueError, match="REPRO_POOL"):
            pool_mode_from_env()

    @pytest.mark.parametrize("pool_mode", ["persistent", "ephemeral"])
    def test_both_pool_modes_match_serial_results(self, tmp_path, pool_mode):
        from repro.runtime import reset_shared_pool

        jobs = [
            _layer_job(design=design, index=index)
            for index in (0, 1)
            for design in DESIGN_ORDER + (CPU_DESIGN,)
        ]
        serial = BatchRunner(parallel=False, cache=None).run(jobs)
        try:
            parallel = BatchRunner(
                parallel=True,
                max_workers=2,
                cache=ResultCache(tmp_path / pool_mode),
                pool_mode=pool_mode,
            ).run(jobs)
        finally:
            reset_shared_pool()
        for design_serial, design_parallel in zip(serial, parallel):
            assert design_serial.cycles == design_parallel.cycles
            assert design_serial.stats == design_parallel.stats


class TestCostModel:
    def test_flexagon_outweighs_fixed_designs(self):
        flexagon = _layer_job(design="Flexagon")
        sigma = _layer_job(design="SIGMA-like")
        cpu = _layer_job(design=CPU_DESIGN)
        from repro.runtime import estimate_job_cost

        assert estimate_job_cost(flexagon) > 5 * estimate_job_cost(sigma)
        assert estimate_job_cost(cpu) < estimate_job_cost(sigma)

    def test_cost_scales_with_the_layer(self):
        from repro.runtime import estimate_job_cost

        small = _layer_job(scale=0.05)
        large = _layer_job(scale=0.2)
        assert estimate_job_cost(large) > estimate_job_cost(small)

    def test_operand_jobs_use_nnz(self):
        from repro.runtime import estimate_job_cost

        config = default_config()
        a = random_sparse(16, 16, density=0.5, seed=0)
        b = random_sparse(16, 16, density=0.5, seed=1)
        job = SimJob(design="SIGMA-like", config=config, a=a, b=b)
        expected = max(1.0, a.nnz * b.nnz / a.ncols)
        assert estimate_job_cost(job) == expected

    def test_group_key_is_the_operand_identity(self):
        from repro.runtime import job_group_key

        same_layer = [
            _layer_job(design=design) for design in DESIGN_ORDER + (CPU_DESIGN,)
        ]
        assert len({job_group_key(job) for job in same_layer}) == 1
        assert job_group_key(_layer_job()) != job_group_key(_layer_job(index=1))
        assert job_group_key(_layer_job()) != job_group_key(_layer_job(scale=0.06))

        config = default_config()
        a = random_sparse(8, 8, density=0.5, seed=0)
        b = random_sparse(8, 8, density=0.5, seed=1)
        pair = [
            SimJob(design=design, config=config, a=a, b=b)
            for design in ("SIGMA-like", "GAMMA-like")
        ]
        assert job_group_key(pair[0]) == job_group_key(pair[1])


class TestStreamingProgress:
    def test_on_result_counts_every_job(self, tmp_path):
        runner = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        jobs = [_layer_job(design=d) for d in ("SIGMA-like", "GAMMA-like")]
        seen: list[tuple[int, int]] = []
        runner.run(jobs, on_result=lambda done, total: seen.append((done, total)))
        assert seen[0] == (0, 2)  # after the (empty) cache scan
        assert seen[-1] == (2, 2)
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)

    def test_cache_hits_are_reported_before_execution(self, tmp_path):
        runner = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        jobs = [_layer_job(design=d) for d in ("SIGMA-like", "GAMMA-like")]
        runner.run(jobs)
        seen: list[tuple[int, int]] = []
        runner.run(jobs, on_result=lambda done, total: seen.append((done, total)))
        assert seen == [(2, 2)]  # everything answered by the scan

    def test_runner_wide_default_callback(self, tmp_path):
        seen: list[tuple[int, int]] = []
        runner = BatchRunner(
            parallel=False,
            cache=ResultCache(tmp_path),
            on_result=lambda done, total: seen.append((done, total)),
        )
        runner.run_one(_layer_job())
        assert seen[-1] == (1, 1)

    def test_submit_runs_the_batch_off_thread(self, tmp_path):
        """``submit`` is ``run`` behind a Future — same results, live
        progress, counters intact (the serving front-end's async hook)."""
        import threading

        runner = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        jobs = [_layer_job(design=d) for d in ("SIGMA-like", "GAMMA-like")]
        reference = BatchRunner(parallel=False, cache=None).run(jobs)
        seen: list[tuple[int, int]] = []
        calling_thread = threading.get_ident()
        threads: set[int] = set()

        def observe(done: int, total: int) -> None:
            threads.add(threading.get_ident())
            seen.append((done, total))

        future = runner.submit(jobs, on_result=observe)
        results = future.result(timeout=300)
        assert results == reference
        assert seen[-1] == (2, 2)
        assert calling_thread not in threads  # progress came off-thread
        assert runner.stats.submitted == 2 and runner.stats.executed == 2
        # A second submit reuses the pool and answers from the cache.
        assert runner.submit(jobs).result(timeout=300) == results
        assert runner.stats.cache_hits == 2

    def test_results_stream_into_the_cache_as_they_land(self, tmp_path, monkeypatch):
        """Each finished job is on disk before the next one executes."""
        from repro.runtime import runner as runner_module

        cache = ResultCache(tmp_path)
        counts: dict[str, int] = {}
        original = runner_module.execute_job

        def observing(job, **kwargs):
            counts[job.design] = cache.entry_count()
            return original(job, **kwargs)

        monkeypatch.setattr(runner_module, "execute_job", observing)
        runner = BatchRunner(parallel=False, cache=cache)
        runner.run([_layer_job(design=d) for d in ("SIGMA-like", "GAMMA-like")])
        # The second job saw the first job's entry already persisted.
        first, second = counts["SIGMA-like"], counts["GAMMA-like"]
        if first > second:
            first, second = second, first
        assert first == 0
        assert second >= 1


class TestCrashResume:
    def test_completed_results_survive_a_mid_batch_crash(self, tmp_path, monkeypatch):
        from repro.runtime import runner as runner_module

        jobs = [
            _layer_job(design=design, index=index)
            for index in (0, 1)
            for design in ("SIGMA-like", "GAMMA-like", "SpArch-like")
        ]
        crash_after = 4
        executed = 0
        original = runner_module.execute_job

        def flaky(job, **kwargs):
            # Count top-level jobs only (design jobs also execute a nested
            # engine job through the shared trial runner).
            nonlocal executed
            if job.design != ENGINE_DESIGN:
                if executed >= crash_after:
                    raise RuntimeError("simulated mid-sweep crash")
                executed += 1
            return original(job, **kwargs)

        monkeypatch.setattr(runner_module, "execute_job", flaky)
        crashed = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        with pytest.raises(RuntimeError, match="mid-sweep crash"):
            crashed.run(jobs)
        # Everything finished before the crash is already on disk.
        on_disk = ResultCache(tmp_path)
        assert sum(on_disk.get(job.key()) is not MISS for job in jobs) == crash_after

        monkeypatch.setattr(runner_module, "execute_job", original)
        resumed = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        results = resumed.run(jobs)
        assert resumed.stats.cache_hits == crash_after
        assert resumed.stats.executed == len(jobs) - crash_after
        assert all(result is not None for result in results)

    def test_parallel_chunk_crash_preserves_the_completed_prefix(
        self, tmp_path, monkeypatch
    ):
        """A mid-chunk failure in a pool worker keeps earlier results."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork workers to inherit the patched executor")
        from repro.runtime import jobs as jobs_module

        # One operand group of four jobs, kept whole as one chunk (cost
        # order: Flexagon, then the fixed designs in insertion order).
        # SpArch — last in the chunk — blows up in the worker after its
        # chunk-mates finished; the ephemeral pool forks after the patch,
        # so the worker inherits it.
        jobs = [
            _layer_job(design=design)
            for design in ("Flexagon", "SIGMA-like", "GAMMA-like", "SpArch-like")
        ]
        original = jobs_module.execute_job

        def flaky(job, **kwargs):
            if job.design == "SpArch-like":
                raise RuntimeError("simulated worker crash")
            return original(job, **kwargs)

        monkeypatch.setattr(jobs_module, "execute_job", flaky)
        runner = BatchRunner(
            parallel=True,
            max_workers=2,
            cache=ResultCache(tmp_path),
            pool_mode="ephemeral",
        )
        with pytest.raises(RuntimeError, match="worker crash"):
            runner.run(jobs)
        on_disk = ResultCache(tmp_path)
        # GAMMA completed before its chunk-mate SpArch crashed: its result
        # must have been streamed to disk despite the crash.
        gamma = next(job for job in jobs if job.design == "GAMMA-like")
        sparch = next(job for job in jobs if job.design == "SpArch-like")
        assert on_disk.get(gamma.key()) is not MISS
        assert on_disk.get(sparch.key()) is MISS


class TestLegacyFlatCache:
    """Entries written by the pre-shard flat layout stay readable."""

    @staticmethod
    def _plant_flat_entry(cache, key, value):
        import pickle

        cache.directory.mkdir(parents=True, exist_ok=True)
        cache.legacy_path_for(key).write_bytes(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_get_reads_and_migrates_flat_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        self._plant_flat_entry(cache, key, {"cycles": 7.0})
        assert cache.get(key) == {"cycles": 7.0}
        # Migrated into its shard; the flat file is gone.
        assert cache.path_for(key).exists()
        assert not cache.legacy_path_for(key).exists()
        assert ResultCache(tmp_path).get(key) == {"cycles": 7.0}

    def test_get_many_spans_both_layouts(self, tmp_path):
        cache = ResultCache(tmp_path)
        flat_key = "cd" * 32
        sharded_key = "ef" * 32
        absent_key = "01" * 32
        self._plant_flat_entry(cache, flat_key, "flat")
        cache.put(sharded_key, "sharded")
        fresh = ResultCache(tmp_path)
        found = fresh.get_many([flat_key, sharded_key, absent_key])
        assert found == {flat_key: "flat", sharded_key: "sharded"}
        assert not fresh.legacy_path_for(flat_key).exists()

    def test_maintenance_covers_flat_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._plant_flat_entry(cache, "12" * 32, "legacy")
        cache.put("34" * 32, "sharded")
        assert cache.entry_count() == 2
        assert cache.size_bytes() > 0
        report = cache.stats_report()
        assert report["entries"] == 2
        assert report["legacy_entries"] == 1
        assert report["shard_dirs"] >= 1
        assert cache.clear() == 2
        assert cache.entry_count() == 0

    def test_prune_evicts_flat_entries_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._plant_flat_entry(cache, "56" * 32, "legacy-" + "x" * 100)
        report = cache.prune(0)
        assert report.removed_entries == 1
        assert cache.entry_count() == 0


class TestRunnerTelemetry:
    def test_wall_clock_counters_accumulate(self, tmp_path):
        runner = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        runner.run([_layer_job(design=d) for d in ("SIGMA-like", "GAMMA-like")])
        assert runner.stats.exec_seconds > 0
        assert runner.stats.cache_scan_seconds > 0
        assert runner.stats.peak_in_flight == 1
        row = runner.stats.as_row()
        assert {"exec seconds", "cache scan seconds", "peak in flight"} <= set(row)

    def test_warm_run_spends_no_exec_time(self, tmp_path):
        cold = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        job = _layer_job()
        cold.run_one(job)
        warm = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        warm.run_one(job)
        assert warm.stats.exec_seconds == 0
        assert warm.stats.cache_scan_seconds > 0


class TestEnvironmentKnobs:
    def test_workers_default_to_every_core(self, monkeypatch):
        from repro.runtime import runner as runner_module

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: 24)
        assert runner_module._env_workers() == 24

    def test_workers_env_overrides_the_core_count(self, monkeypatch):
        from repro.runtime import runner as runner_module

        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert runner_module._env_workers() == 3

    def test_repr_names_the_width_and_pool(self):
        runner = BatchRunner(
            parallel=True, max_workers=5, cache=None,
            pool_mode="persistent", schedule="cost",
        )
        text = repr(runner)
        assert "x5" in text and "persistent" in text and "cost" in text
        assert "serial" in repr(BatchRunner(parallel=False, cache=None))

    def test_schedule_knob_validates(self, monkeypatch):
        from repro.runtime import runner as runner_module

        monkeypatch.setenv("REPRO_SCHED", "bogus")
        with pytest.raises(ValueError, match="REPRO_SCHED"):
            runner_module._env_schedule()
        monkeypatch.setenv("REPRO_SCHED", "fifo")
        assert BatchRunner(parallel=False, cache=None).schedule == "fifo"

    def test_fifo_schedule_matches_cost_schedule_results(self, tmp_path):
        jobs = [
            _layer_job(design=design, index=index)
            for index in (0, 1)
            for design in DESIGN_ORDER
        ]
        cost = BatchRunner(parallel=False, cache=ResultCache(tmp_path / "a"))
        fifo = BatchRunner(
            parallel=False, cache=ResultCache(tmp_path / "b"), schedule="fifo"
        )
        for ours, legacy in zip(cost.run(jobs), fifo.run(jobs)):
            assert ours.total_cycles == legacy.total_cycles
            assert ours.stats == legacy.stats


class TestEngineResultSharing:
    def test_designs_reuse_cached_oracle_trials(self, tmp_path):
        """A fixed design's engine run hits the trials Flexagon cached."""
        cache = ResultCache(tmp_path)
        flexagon_first = BatchRunner(parallel=False, cache=cache)
        flexagon_first.run_one(_layer_job(design="Flexagon"))
        entries_after_flexagon = cache.entry_count()

        sigma = BatchRunner(parallel=False, cache=cache)
        result = sigma.run_one(_layer_job(design="SIGMA-like"))
        assert result.accelerator == "SIGMA-like"
        # Only the SIGMA job's own record is new; its engine run was served
        # from the cached trial, so no new engine entry appeared.
        assert cache.entry_count() == entries_after_flexagon + 1

    def test_sharing_is_bit_equivalent_to_direct_execution(self, tmp_path, monkeypatch):
        jobs = [_layer_job(design=design) for design in DESIGN_ORDER]
        direct = BatchRunner(parallel=False, cache=None).run(jobs)

        shared = BatchRunner(parallel=False, cache=ResultCache(tmp_path)).run(jobs)
        for via_cache, via_engine in zip(shared, direct):
            assert via_cache.accelerator == via_engine.accelerator
            assert via_cache.dataflow is via_engine.dataflow
            assert via_cache.layer_name == via_engine.layer_name
            assert via_cache.cycles == via_engine.cycles
            assert via_cache.traffic == via_engine.traffic
            assert via_cache.stats == via_engine.stats
            assert via_cache.str_cache_miss_rate == via_engine.str_cache_miss_rate
            assert via_cache.dram == via_engine.dram

        monkeypatch.setenv("REPRO_SHARE_ENGINE", "0")
        unshared = BatchRunner(
            parallel=False, cache=ResultCache(tmp_path / "unshared")
        ).run(jobs)
        for via_cache, via_engine in zip(unshared, direct):
            assert via_cache.cycles == via_engine.cycles
            assert via_cache.stats == via_engine.stats


class TestWarmCacheEndToEnd:
    def test_second_run_executes_zero_jobs(self, tmp_path):
        cold = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        first = run_end_to_end(SETTINGS, runner=cold)
        assert cold.stats.executed > 0
        assert cold.stats.cache_hits == 0

        warm = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        second = run_end_to_end(SETTINGS, runner=warm)
        assert warm.stats.executed == 0
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hits == warm.stats.submitted > 0
        assert _end_to_end_fingerprint(first) == _end_to_end_fingerprint(second)

    def test_parallel_writers_fill_a_shared_cache(self, tmp_path):
        cold = BatchRunner(parallel=True, max_workers=4, cache=ResultCache(tmp_path))
        run_layerwise_comparison(SETTINGS, runner=cold)
        warm = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
        run_layerwise_comparison(SETTINGS, runner=warm)
        assert warm.stats.executed == 0
