"""Tests of the ``repro.serve`` HTTP/JSON front-end.

Covers the serving contracts end to end, over real sockets:

* **Wire format** — golden files pin the static endpoint bodies; every
  endpoint's JSON body round-trips through canonical re-serialization
  byte-for-byte.
* **Warmth split** — cache-warm requests answer ``200`` with zero engine
  executions; cold ones answer ``202`` with a pollable job that completes
  to the same bytes the CLI produces.
* **ETags** — stable across server instances, honoured with ``304`` on
  ``If-None-Match`` before any work happens.
* **Coalescing** — N concurrent identical cold requests share exactly one
  in-flight computation.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.api import FigureQuery, Session, SweepSpec, canonical_json
from repro.cli import main as cli_main
from repro.experiments.settings import default_settings
from repro.runtime import BatchRunner, ResultCache
from repro.serve import BackgroundServer
from repro.serve.wire import request_etag, sweep_spec_from_payload

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Same micro budgets as tests/test_cli.py, so the fig12 grid stays tiny.
MICRO = default_settings(max_dense_macs=5e4, max_layers_per_model=1)

#: A one-job sweep (the cold-lifecycle and coalescing workload).
SWEEP_BODY = {"layers": ["A2"], "designs": ["SIGMA-like"], "scale": 0.05}


def micro_session(cache_dir) -> Session:
    return Session(
        MICRO, runner=BatchRunner(parallel=False, cache=ResultCache(cache_dir))
    )


def request(server, method, path, body=None, headers=None):
    """One HTTP exchange; returns ``(status, headers-dict, body-bytes)``."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=120)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def poll_job(server, url, deadline_seconds=120.0):
    """Poll a job URL until it stops answering ``202``."""
    deadline = time.monotonic() + deadline_seconds
    while True:
        status, headers, body = request(server, "GET", url)
        if status != 202:
            return status, headers, body
        assert time.monotonic() < deadline, "job did not finish in time"
        time.sleep(0.05)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("serve-cache")


@pytest.fixture(scope="module")
def server(cache_dir):
    with BackgroundServer(micro_session(cache_dir)) as handle:
        yield handle


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    @pytest.mark.parametrize(
        "path, golden",
        [
            ("/healthz", "serve_healthz.json"),
            ("/v1/figures", "serve_figures.json"),
            ("/nope", "serve_error_404.json"),
        ],
    )
    def test_bodies_match_the_committed_goldens(self, server, path, golden):
        _status, _headers, body = request(server, "GET", path)
        assert body == (GOLDEN_DIR / golden).read_bytes()

    def test_list_json_matches_the_catalog_golden(self, capsysbinary):
        assert cli_main(["list", "--json"]) == 0
        out, _err = capsysbinary.readouterr()
        assert out == (GOLDEN_DIR / "serve_catalog.json").read_bytes()

    def test_every_endpoint_body_reserializes_canonically(self, server):
        """The round-trip property: parse + canonical re-dump is identity."""
        paths = ["/healthz", "/v1/figures", "/v1/cache/stats", "/v1/figure/table3"]
        for path in paths:
            _status, _headers, body = request(server, "GET", path)
            record = json.loads(body)
            assert (canonical_json(record) + "\n").encode() == body, path

    def test_cache_stats_shares_the_cli_serializer(self, server, cache_dir):
        _status, _headers, body = request(server, "GET", "/v1/cache/stats")
        record = json.loads(body)
        assert record["kind"] == "cache_stats"
        assert record["cache"]["directory"] == str(cache_dir)
        assert set(record["runner"]) == set(
            micro_session(cache_dir).stats.as_row()
        )

    def test_sweep_payload_parsing(self):
        spec = sweep_spec_from_payload(json.dumps(SWEEP_BODY).encode())
        assert spec == SweepSpec(**SWEEP_BODY)
        with pytest.raises(ValueError, match="malformed JSON"):
            sweep_spec_from_payload(b"{nope")
        with pytest.raises(ValueError, match="JSON object"):
            sweep_spec_from_payload(b"[1, 2]")
        with pytest.raises(ValueError, match="unknown sweep field"):
            sweep_spec_from_payload(b'{"layers": ["A2"], "bogus": 1}')

    def test_wrong_typed_sweep_fields_are_client_errors(self):
        """Type confusion in a request body must surface as ValueError (a
        400 on the wire), never a TypeError (a 500)."""
        with pytest.raises(ValueError, match="malformed sweep field"):
            sweep_spec_from_payload(b'{"layers": 3}')
        with pytest.raises(ValueError, match="name, value"):
            sweep_spec_from_payload(b'{"layers": ["A2"], "config_overrides": [5]}')


# ----------------------------------------------------------------------
# Routing errors
# ----------------------------------------------------------------------
class TestRouting:
    def test_unknown_figure_is_404(self, server):
        status, _headers, body = request(server, "GET", "/v1/figure/fig99")
        assert status == 404
        assert "known figures" in json.loads(body)["error"]

    def test_unknown_job_is_404(self, server):
        assert request(server, "GET", "/v1/jobs/deadbeef")[0] == 404

    def test_wrong_method_is_405(self, server):
        assert request(server, "POST", "/v1/figure/fig12")[0] == 405
        assert request(server, "GET", "/v1/sweep")[0] == 405

    def test_bad_sweep_body_is_400(self, server):
        for payload in (b"{nope", b'{"layers": 3}', b'{"designs": 1}'):
            status, _headers, body = request(
                server, "POST", "/v1/sweep", body=payload
            )
            assert status == 400, payload
            assert json.loads(body)["kind"] == "error"

    def test_malformed_request_line_is_400(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")

    def test_chunked_transfer_encoding_is_rejected_not_misframed(self, server):
        """Unsupported body framing must be refused outright — ignoring it
        would leave the chunk bytes on the stream to be parsed as the next
        request (the smuggling/desync class)."""
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(
                b"POST /v1/sweep HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"5\r\nhello\r\n0\r\n\r\n"
            )
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")
        assert b"Transfer-Encoding" in reply

    def test_keep_alive_serves_multiple_requests_per_connection(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=120)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                assert conn.getresponse().read()
        finally:
            conn.close()


# ----------------------------------------------------------------------
# The warm/cold split + job lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_static_figure_is_always_warm(self, server):
        status, headers, _body = request(server, "GET", "/v1/figure/table3")
        assert status == 200
        assert headers["X-Repro-Jobs-Executed"] == "0"

    def test_cold_figure_202_poll_200_then_warm_zero_exec(self, server, tmp_path):
        status, headers, body = request(server, "GET", "/v1/figure/fig12")
        assert status == 202
        envelope = json.loads(body)
        assert envelope["kind"] == "job"
        assert envelope["request"] == {"figure": "fig12"}
        assert headers["Location"] == envelope["url"]

        status, headers, first = poll_job(server, envelope["url"])
        assert status == 200
        assert int(headers["X-Repro-Jobs-Executed"]) > 0

        # Now warm: answered synchronously, zero executions, same bytes.
        status, headers, second = request(server, "GET", "/v1/figure/fig12")
        assert status == 200
        assert headers["X-Repro-Jobs-Executed"] == "0"
        assert second == first

        # ... and byte-identical to the CLI over the same settings + cache.
        out = tmp_path / "cli-fig12.json"
        assert cli_main([
            "figure", "fig12", "--max-dense-macs", "5e4", "--max-layers", "1",
            "--serial", "--cache-dir", str(server.app.session.cache.directory),
            "--no-progress", "-o", str(out),
        ]) == 0
        assert out.read_bytes() == second

    def test_cold_sweep_202_poll_200(self, server):
        payload = json.dumps(dict(SWEEP_BODY, scale=0.07)).encode()
        status, _headers, body = request(server, "POST", "/v1/sweep", body=payload)
        assert status == 202
        envelope = json.loads(body)
        assert envelope["request_kind"] == "sweep"

        status, headers, result = poll_job(server, envelope["url"])
        assert status == 200
        record = json.loads(result)
        assert record["kind"] == "sweep"
        (row,) = record["rows"]
        assert row["design"] == "SIGMA-like" and row["cycles"] > 0

        # Re-POSTing the identical spec is now warm.
        status, headers, again = request(server, "POST", "/v1/sweep", body=payload)
        assert status == 200
        assert headers["X-Repro-Jobs-Executed"] == "0"
        assert again == result

    def test_fresh_server_over_the_same_cache_is_warm(self, server, cache_dir):
        # Uses the fig12 results the lifecycle test above cached.
        request(server, "GET", "/v1/figure/fig12")
        poll_job(server, "/v1/jobs/" + FigureQuery("fig12").key())
        with BackgroundServer(micro_session(cache_dir)) as fresh:
            status, headers, _body = request(fresh, "GET", "/v1/figure/fig12")
            assert status == 200
            assert headers["X-Repro-Jobs-Executed"] == "0"
            assert fresh.app.session.stats.executed == 0

    def test_failed_job_reports_500(self, tmp_path):
        with BackgroundServer(micro_session(tmp_path / "c")) as fresh:
            # Sabotage: fail every simulation by breaking the runner.
            fresh.app.session.runner.run = _boom
            status, _headers, body = request(
                fresh, "POST", "/v1/sweep", body=json.dumps(SWEEP_BODY).encode()
            )
            assert status == 202
            status, _headers, body = poll_job(fresh, json.loads(body)["url"])
            assert status == 500
            assert "RuntimeError" in json.loads(body)["error"]


def _boom(jobs, on_result=None):
    raise RuntimeError("sabotaged")


# ----------------------------------------------------------------------
# ETags
# ----------------------------------------------------------------------
class TestETags:
    def test_304_on_if_none_match(self, server):
        status, headers, _body = request(server, "GET", "/v1/figure/table3")
        etag = headers["ETag"]
        status, headers, body = request(
            server, "GET", "/v1/figure/table3", headers={"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag

    def test_304_needs_no_computation_even_when_cold(self, tmp_path):
        """The validator is derived from the request, not the bytes, so a
        cold server can answer a revalidation without simulating."""
        with BackgroundServer(micro_session(tmp_path / "c")) as fresh:
            etag = request_etag("figure", FigureQuery("fig12").key(), MICRO)
            status, _headers, _body = request(
                fresh, "GET", "/v1/figure/fig12", headers={"If-None-Match": etag}
            )
            assert status == 304
            assert fresh.app.session.stats.submitted == 0

    def test_stable_across_two_server_instances(self, cache_dir, tmp_path):
        etags = []
        for directory in (cache_dir, tmp_path / "other-cache"):
            with BackgroundServer(micro_session(directory)) as fresh:
                _status, headers, _body = request(fresh, "GET", "/v1/figure/table3")
                etags.append(headers["ETag"])
        assert etags[0] == etags[1]

    def test_varies_with_request_and_settings(self):
        fig12 = FigureQuery("fig12").key()
        fig13 = FigureQuery("fig13").key()
        other = default_settings(max_dense_macs=9e4, max_layers_per_model=1)
        assert request_etag("figure", fig12, MICRO) != request_etag("figure", fig13, MICRO)
        assert request_etag("figure", fig12, MICRO) != request_etag("figure", fig12, other)

    def test_weak_and_list_forms_match(self, server):
        _status, headers, _body = request(server, "GET", "/v1/figure/table3")
        etag = headers["ETag"]
        for value in (f'W/{etag}, "zzz"', f'"zzz", {etag}', "*"):
            status, _h, _b = request(
                server, "GET", "/v1/figure/table3", headers={"If-None-Match": value}
            )
            assert status == 304, value


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_identical_cold_requests_share_one_computation(self, tmp_path):
        body = json.dumps(dict(SWEEP_BODY, scale=0.06)).encode()
        with BackgroundServer(micro_session(tmp_path / "c")) as fresh:
            results = []

            def post():
                results.append(request(fresh, "POST", "/v1/sweep", body=body))

            threads = [threading.Thread(target=post) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            keys = set()
            for status, _headers, reply in results:
                assert status in (200, 202)
                record = json.loads(reply)
                if status == 202:
                    keys.add(record["key"])
            assert len(keys) <= 1  # every 202 pointed at the same job

            spec = SweepSpec(**dict(SWEEP_BODY, scale=0.06))
            status, _headers, _reply = poll_job(fresh, f"/v1/jobs/{spec.key()}")
            assert status == 200
            # The one-layer, one-design grid ran exactly once in total.
            assert fresh.app.session.stats.executed == 1

    def test_request_key_spaces_are_disjoint(self):
        assert FigureQuery("fig12").key() != SweepSpec(layers="A2").key()
