"""Bit-equivalence of the vectorized engine backend against the reference.

The vectorized backend (:mod:`repro.engine_vec`) promises *equality*, not
approximation: for any operands, dataflow and configuration, the full
:class:`LayerSimResult` — exact float cycle sums, traffic, cache and DRAM
counters — must match the reference walk, and cached results must be
shareable between backends (backend-agnostic job keys).  This suite sweeps
randomized sparsities/shapes/seeds across all six dataflows and several
cache geometries (including degenerate single-set caches), cross-checks the
batched LRU model against the per-line reference cache, and pins the
backend-selection plumbing (settings, env, CLI, job keys).
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.accelerators.engine import SpmspmEngine
from repro.arch.config import default_config
from repro.arch.memory.cache import StreamingCache
from repro.dataflows.base import Dataflow
from repro.engine_vec import ENGINE_BACKENDS, resolve_engine_backend
from repro.engine_vec.cache_model import lru_hits
from repro.engine_vec import kernels
from repro.runtime import BatchRunner, ResultCache, SimJob
from repro.sparse.formats import Layout, csr_from_dense
from repro.sparse.generate import SparsityPattern, random_sparse
from repro.sparse.reference import spgemm_reference

# ----------------------------------------------------------------------
# Property-style sweep: random layers x dataflows x geometries
# ----------------------------------------------------------------------
#: Cache/datapath geometries, including the degenerate shapes the scaling
#: policy produces (tiny single-set caches, narrow datapaths).
CONFIGS = [
    default_config(),
    default_config(
        num_multipliers=8,
        str_cache_bytes=2048,  # 16 lines, 16-way => a single set
        psram_bytes=2048,
    ),
    default_config(
        num_multipliers=16,
        distribution_bandwidth=4,
        reduction_bandwidth=4,
        str_cache_bytes=4096,
        str_cache_line_bytes=64,
        str_cache_associativity=4,
        psram_bytes=4096,
        psram_block_bytes=64,
    ),
]

#: (m, k, n, density_a, density_b, pattern, seed) grid; chosen to cover
#: empty operands, fibers longer than the array, PSRAM spills and both
#: fits/thrashes cache regimes.
LAYER_CASES = [
    (1, 1, 1, 1.0, 1.0, SparsityPattern.UNIFORM, 0),
    (5, 7, 3, 0.0, 0.5, SparsityPattern.UNIFORM, 1),
    (16, 16, 16, 0.3, 0.3, SparsityPattern.UNIFORM, 2),
    (40, 64, 24, 0.12, 0.4, SparsityPattern.ROW_SKEWED, 3),
    (64, 48, 64, 0.5, 0.08, SparsityPattern.BANDED, 4),
    (30, 200, 20, 0.25, 0.25, SparsityPattern.UNIFORM, 5),
    (128, 32, 96, 0.06, 0.6, SparsityPattern.BLOCK, 6),
    (80, 80, 80, 0.45, 0.45, SparsityPattern.UNIFORM, 7),
]


def _make_pair(case):
    m, k, n, da, db, pattern, seed = case
    a = random_sparse(m, k, da, pattern=pattern, seed=seed)
    b = random_sparse(k, n, db, pattern=pattern, seed=seed + 1000)
    return a, b


def _assert_results_equal(reference, vectorized, context):
    __tracebackhide__ = True
    assert reference.cycles == vectorized.cycles, context
    assert reference.traffic == vectorized.traffic, context
    assert reference.stats == vectorized.stats, context
    assert reference.dram == vectorized.dram, context
    assert reference.str_cache_accesses == vectorized.str_cache_accesses, context
    assert reference.str_cache_miss_rate == vectorized.str_cache_miss_rate, context
    assert reference == vectorized, context


@pytest.mark.parametrize("case", LAYER_CASES, ids=lambda c: f"{c[0]}x{c[1]}x{c[2]}s{c[6]}")
def test_backends_bit_equal_across_dataflows_and_geometries(case):
    a, b = _make_pair(case)
    for config in CONFIGS:
        reference = SpmspmEngine(config, backend="reference")
        vectorized = SpmspmEngine(config, backend="vectorized")
        for dataflow in Dataflow:
            r = reference.run_layer(dataflow, a, b)
            v = vectorized.run_layer(dataflow, a, b)
            _assert_results_equal(r, v, (dataflow, config.num_multipliers))


def test_backends_equal_output_matrix_and_reference_numerics():
    a, b = _make_pair(LAYER_CASES[3])
    golden = spgemm_reference(a, b)
    for dataflow in Dataflow:
        r = SpmspmEngine(CONFIGS[0], backend="reference").run_layer(
            dataflow, a, b, capture_output=True
        )
        v = SpmspmEngine(CONFIGS[0], backend="vectorized").run_layer(
            dataflow, a, b, capture_output=True
        )
        want = golden.with_layout(v.output.layout)
        assert v.output == r.output
        assert v.output.shape == want.shape
        assert np.array_equal(v.output.pointers, want.pointers)
        assert np.array_equal(v.output.indices, want.indices)
        assert np.allclose(v.output.values, want.values)


def test_vectorized_handles_empty_operands():
    a = csr_from_dense(np.zeros((4, 6)))
    b = csr_from_dense(np.zeros((6, 5)))
    for dataflow in Dataflow:
        r = SpmspmEngine(CONFIGS[0], backend="reference").run_layer(dataflow, a, b)
        v = SpmspmEngine(CONFIGS[0], backend="vectorized").run_layer(dataflow, a, b)
        _assert_results_equal(r, v, dataflow)
        assert v.total_cycles == r.total_cycles


# ----------------------------------------------------------------------
# The batched LRU model against the reference per-line cache
# ----------------------------------------------------------------------
def test_batched_lru_matches_streaming_cache_on_random_traces():
    rng = np.random.default_rng(7)
    for _ in range(200):
        num_sets = int(rng.choice([1, 2, 4, 8, 64]))
        ways = int(rng.choice([1, 2, 4, 16]))
        line_bytes = 128
        cache = StreamingCache(num_sets * ways * line_bytes, line_bytes, ways)
        n = int(rng.integers(1, 300))
        lines = rng.integers(0, int(rng.integers(1, 200)), size=n).astype(np.int64)
        walked = np.array([cache.access_byte(int(l) * line_bytes) for l in lines])
        assert np.array_equal(walked, lru_hits(lines, num_sets, ways))


def test_batched_lru_matches_fiber_touch_walk():
    """Span-shaped traces (whole-fiber touches), as the engine produces them."""
    from repro.arch.controllers.streaming import StreamingTileReader
    from repro.engine_vec.cache_model import expand_spans, fiber_line_spans

    rng = np.random.default_rng(11)
    b = random_sparse(64, 96, 0.3, seed=3)
    config = default_config(str_cache_bytes=4096, str_cache_line_bytes=64,
                            str_cache_associativity=4, num_multipliers=8,
                            psram_bytes=2048, psram_block_bytes=64)
    cache = StreamingCache(
        config.str_cache_bytes, config.str_cache_line_bytes,
        config.str_cache_associativity, element_bytes=config.element_bytes,
    )
    reader = StreamingTileReader(b, cache)
    fibers = rng.integers(0, b.major_dim, size=500)
    nnz = np.diff(b.pointers)[fibers]
    active = nnz > 0
    walked = np.array([reader.touch_fiber(int(f)) for f in fibers[active]])

    first, counts = fiber_line_spans(
        b.pointers[fibers[active]], nnz[active],
        config.element_bytes, config.str_cache_line_bytes,
    )
    lines, span_of = expand_spans(first, counts)
    hits = lru_hits(lines, cache.num_sets, config.str_cache_associativity)
    batched = np.bincount(span_of[~hits], minlength=len(first))
    assert np.array_equal(walked, batched)
    # Per-element stats credit: accesses = elements touched, hits fill in.
    assert cache.stats.accesses == int(nnz[active].sum())
    assert cache.stats.misses == int(batched.sum())
    assert cache.stats.miss_bytes == cache.stats.misses * config.str_cache_line_bytes


def test_trace_memory_fallback_is_bit_identical(monkeypatch):
    """Over-budget traces fall back to the per-line walk, same results."""
    monkeypatch.setattr(kernels, "_MAX_TRACE_LINES", 0)
    a, b = _make_pair(LAYER_CASES[3])
    for config in CONFIGS[:2]:
        for dataflow in (Dataflow.OP_M, Dataflow.GUST_M, Dataflow.GUST_N):
            r = SpmspmEngine(config, backend="reference").run_layer(dataflow, a, b)
            v = SpmspmEngine(config, backend="vectorized").run_layer(dataflow, a, b)
            _assert_results_equal(r, v, ("fallback", dataflow))


def test_grouped_union_counts_scipy_and_numpy_paths_agree(monkeypatch):
    if kernels._scipy_sparse is None:
        pytest.skip("scipy not installed: only the NumPy fallback exists here")
    rng = np.random.default_rng(5)
    b = random_sparse(50, 70, 0.2, seed=9)
    ks = np.sort(rng.integers(0, 50, size=200)).astype(np.int64)
    groups = np.sort(rng.integers(0, 12, size=200)).astype(np.int64)
    args = (
        np.asarray(b.indices, dtype=np.int64),
        np.asarray(b.pointers, dtype=np.int64),
        ks, groups, 12, b.ncols,
    )
    fast = kernels.grouped_union_counts(*args)
    monkeypatch.setattr(kernels, "_scipy_sparse", None)
    slow = kernels.grouped_union_counts(*args)
    assert np.array_equal(fast, slow)
    # Against a straightforward per-group set union.
    expected = np.zeros(12, dtype=np.int64)
    for g in range(12):
        cols = set()
        for k in ks[groups == g]:
            cols.update(b.indices[b.pointers[k]:b.pointers[k + 1]].tolist())
        expected[g] = len(cols)
    assert np.array_equal(fast, expected)


# ----------------------------------------------------------------------
# Backend selection plumbing
# ----------------------------------------------------------------------
def test_job_keys_are_backend_agnostic():
    a, b = _make_pair(LAYER_CASES[2])
    config = default_config()
    jobs = [
        SimJob(design="engine", config=config, a=a, b=b,
               dataflow=Dataflow.GUST_M, engine=engine)
        for engine in (None, "reference", "vectorized")
    ]
    keys = {job.key() for job in jobs}
    assert len(keys) == 1


def test_job_rejects_unknown_engine():
    a, b = _make_pair(LAYER_CASES[1])
    with pytest.raises(ValueError, match="engine backend"):
        SimJob(design="engine", config=default_config(), a=a, b=b,
               dataflow=Dataflow.IP_M, engine="turbo")


def test_cache_entries_are_shared_between_backends(tmp_path):
    a, b = _make_pair(LAYER_CASES[2])
    config = default_config()

    def job(engine):
        return SimJob(design="GAMMA-like", config=config, a=a, b=b, engine=engine)

    cold = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
    (first,) = cold.run([job("reference")])
    assert cold.stats.executed == 1

    warm = BatchRunner(parallel=False, cache=ResultCache(tmp_path))
    (second,) = warm.run([job("vectorized")])
    assert warm.stats.executed == 0 and warm.stats.cache_hits == 1
    assert first.cycles == second.cycles and first.traffic == second.traffic


def test_settings_engine_resolution(monkeypatch):
    from repro.experiments.settings import ExperimentSettings, default_settings

    assert ExperimentSettings().engine == "vectorized"
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert default_settings().engine == "reference"
    assert default_settings(engine="vectorized").engine == "vectorized"
    assert resolve_engine_backend(None) == "reference"
    monkeypatch.delenv("REPRO_ENGINE")
    assert resolve_engine_backend(None) == "vectorized"
    with pytest.raises(ValueError):
        ExperimentSettings(engine="turbo")
    record = default_settings(engine="reference").to_record()
    assert record["engine"] == "reference"
    assert ExperimentSettings.from_record(record).engine == "reference"


def test_settings_record_without_engine_defaults(monkeypatch):
    from repro.experiments.settings import ExperimentSettings

    record = ExperimentSettings().to_record()
    record.pop("engine")
    assert ExperimentSettings.from_record(record).engine == "vectorized"


def test_cli_engine_flag():
    from repro.cli import build_parser

    args = build_parser().parse_args(["figure", "fig12", "--engine", "reference"])
    assert args.engine == "reference"
    args = build_parser().parse_args(["figure", "fig12"])
    assert args.engine is None
    assert set(ENGINE_BACKENDS) == {"vectorized", "reference"}


def test_engine_env_reaches_spmspm_engine(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert SpmspmEngine(default_config()).backend == "reference"
    assert SpmspmEngine(default_config(), backend="vectorized").backend == "vectorized"


# ----------------------------------------------------------------------
# miss_bytes satellite
# ----------------------------------------------------------------------
def test_cache_stats_miss_bytes_is_a_real_field():
    from repro.arch.memory.cache import CacheStats

    stats = CacheStats()
    assert stats.miss_bytes == 0
    cache = StreamingCache(1024, 128, 2)
    cache.access_byte(0)
    cache.access_byte(1)  # same line: hit
    cache.access_byte(4096)
    assert cache.stats.misses == 2
    assert cache.stats.miss_bytes == 2 * 128
    assert CacheStats(misses=3, miss_bytes=5).miss_bytes == 5


@pytest.mark.parametrize("backend", ENGINE_BACKENDS)
def test_engine_accounts_inner_product_miss_bytes(backend):
    a, b = _make_pair(LAYER_CASES[2])
    config = CONFIGS[1]  # tiny cache: IP re-streams and thrashes
    engine = SpmspmEngine(config, backend=backend)
    ctx = engine._build_context(Dataflow.IP_M, a, b)
    if backend == "vectorized":
        kernels.run_inner_product(engine, ctx)
    else:
        engine._run_inner_product(ctx)
    assert ctx.cache.stats.miss_bytes == ctx.cache.stats.misses * config.str_cache_line_bytes
    assert ctx.cache.stats.miss_bytes == ctx.dram.traffic.str_read_bytes


# ----------------------------------------------------------------------
# End-to-end: a figure cell computed by both backends is identical
# ----------------------------------------------------------------------
def test_layerwise_grid_equal_under_both_backends():
    from repro.api import Session
    from repro.experiments.settings import default_settings

    results = {}
    for engine in ENGINE_BACKENDS:
        settings = default_settings(
            max_dense_macs=2e4, max_layers_per_model=1, engine=engine
        )
        session = Session(settings, parallel=False, cache=None)
        results[engine] = session.layerwise()
    ref, vec = results["reference"], results["vectorized"]
    assert ref.scales == vec.scales
    for layer, per_design in ref.results.items():
        for design, result in per_design.items():
            other = vec.results[layer][design]
            _assert_results_equal(result, other, (layer, design))
