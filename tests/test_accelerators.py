"""Tests for the four accelerator designs, the CPU baseline and the area model."""

import pytest

from repro.accelerators import (
    CpuMklLikeBaseline,
    FlexagonAccelerator,
    GammaLikeAccelerator,
    SigmaLikeAccelerator,
    SparchLikeAccelerator,
    accelerator_area_power,
    naive_triple_network_area,
)
from repro.accelerators.area_power import performance_per_area
from repro.accelerators.cpu import CpuConfig
from repro.arch.config import default_config
from repro.dataflows import Dataflow, DataflowClass
from repro.sparse import Layout, random_sparse
from repro.workloads import get_representative_layer, materialize_layer

CONFIG = default_config()
BASELINES = [SigmaLikeAccelerator, SparchLikeAccelerator, GammaLikeAccelerator]


def pair(seed=0, m=60, k=80, n=50, da=0.3, db=0.25):
    return (
        random_sparse(m, k, da, seed=seed),
        random_sparse(k, n, db, seed=seed + 99),
    )


class TestFixedDataflowBaselines:
    @pytest.mark.parametrize("cls,family", [
        (SigmaLikeAccelerator, DataflowClass.INNER_PRODUCT),
        (SparchLikeAccelerator, DataflowClass.OUTER_PRODUCT),
        (GammaLikeAccelerator, DataflowClass.GUSTAVSON),
    ])
    def test_supported_dataflows_are_one_family(self, cls, family):
        acc = cls(CONFIG)
        assert all(d.dataflow_class is family for d in acc.supported_dataflows)
        assert len(acc.supported_dataflows) == 2  # M and N variants

    @pytest.mark.parametrize("cls", BASELINES)
    def test_default_choice_is_m_stationary(self, cls):
        a, b = pair(seed=1)
        acc = cls(CONFIG)
        assert acc.choose_dataflow(a, b).is_m_stationary

    @pytest.mark.parametrize("cls", BASELINES)
    def test_produced_layout_selects_n_variant(self, cls):
        a, b = pair(seed=2)
        acc = cls(CONFIG)
        chosen = acc.choose_dataflow(a, b, produced_layout=Layout.CSC)
        assert chosen.is_n_stationary

    @pytest.mark.parametrize("cls", BASELINES)
    def test_run_layer_uses_own_dataflow(self, cls):
        a, b = pair(seed=3)
        acc = cls(CONFIG)
        result = acc.run_layer(a, b)
        assert result.dataflow in acc.supported_dataflows
        assert result.accelerator == acc.name
        assert result.total_cycles > 0

    def test_unsupported_forced_dataflow_rejected(self):
        a, b = pair(seed=4)
        acc = SigmaLikeAccelerator(CONFIG)
        with pytest.raises(ValueError, match="forced by the caller"):
            acc.run_layer(a, b, dataflow=Dataflow.GUST_M)

    def test_unsupported_policy_dataflow_rejected(self):
        """Regression: a dataflow from the design's *own* selection policy is
        validated too — a buggy or misconfigured policy (e.g. a custom mapper
        handed to Flexagon) must fail loudly, not silently run an illegal
        configuration on the engine."""

        class BrokenPolicy(SigmaLikeAccelerator):
            def choose_dataflow(self, a, b, **kwargs):
                return Dataflow.GUST_M  # not an Inner-Product variant

        a, b = pair(seed=5)
        with pytest.raises(ValueError, match="choose_dataflow"):
            BrokenPolicy(CONFIG).run_layer(a, b)

    def test_flexagon_validates_a_custom_mappers_choice(self):
        """Same regression at the Flexagon level: a mapper returning a value
        outside the design's supported set is caught before execution."""

        class BadMapper:
            def select(self, a, b, **kwargs):
                return "not-a-dataflow"

        a, b = pair(seed=6)
        accelerator = FlexagonAccelerator(CONFIG, mapper=BadMapper())
        with pytest.raises(ValueError, match="does not support"):
            accelerator.run_layer(a, b)


class TestFlexagon:
    def test_supports_all_six_dataflows(self):
        acc = FlexagonAccelerator(CONFIG)
        assert set(acc.supported_dataflows) == set(Dataflow)

    def test_never_slower_than_fixed_baselines_on_representative_layers(self):
        """The headline claim: Flexagon matches the best fixed design per layer."""
        flexagon = FlexagonAccelerator(CONFIG)
        baselines = [cls(CONFIG) for cls in BASELINES]
        for name in ("SQ5", "R6", "MB215"):
            spec = get_representative_layer(name)
            a, b = materialize_layer(spec, scale=0.35)
            flex_cycles = flexagon.run_layer(a, b).total_cycles
            best_baseline = min(acc.run_layer(a, b).total_cycles for acc in baselines)
            # Allow a small tolerance: the heuristic mapper may not always pick
            # the oracle-best dataflow.
            assert flex_cycles <= best_baseline * 1.30

    def test_activation_layout_steers_variant(self):
        a, b = pair(seed=5)
        acc = FlexagonAccelerator(CONFIG)
        chosen_csr = acc.choose_dataflow(a, b, activation_layout=Layout.CSR)
        chosen_csc = acc.choose_dataflow(a, b, activation_layout=Layout.CSC)
        from repro.dataflows.transitions import required_activation_layout

        assert required_activation_layout(chosen_csr) is Layout.CSR
        assert required_activation_layout(chosen_csc) is Layout.CSC

    def test_custom_mapper_injection(self):
        class AlwaysGustavson:
            def select(self, a, b, **kwargs):
                return Dataflow.GUST_M

        acc = FlexagonAccelerator(CONFIG, mapper=AlwaysGustavson())
        a, b = pair(seed=6)
        assert acc.run_layer(a, b).dataflow is Dataflow.GUST_M


class TestCpuBaseline:
    def test_cycles_scale_with_work(self):
        cpu = CpuMklLikeBaseline()
        small = cpu.run_layer(*pair(seed=7, m=20, k=20, n=20))
        large = cpu.run_layer(*pair(seed=7, m=80, k=80, n=80))
        assert large.cycles > small.cycles

    def test_seconds_follow_frequency(self):
        cpu = CpuMklLikeBaseline(CpuConfig(frequency_hz=1e9))
        result = cpu.run_layer(*pair(seed=8))
        assert result.seconds == pytest.approx(result.cycles / 1e9)

    def test_output_capture(self):
        from repro.sparse import matrices_allclose, spgemm_reference

        a, b = pair(seed=9, m=15, k=15, n=15)
        result = CpuMklLikeBaseline().run_layer(a, b, capture_output=True)
        assert matrices_allclose(result.output, spgemm_reference(a, b))

    def test_model_run_aggregates(self):
        cpu = CpuMklLikeBaseline()
        layers = [pair(seed=10), pair(seed=11)]
        total = cpu.run_model(layers)
        assert total.cycles == pytest.approx(
            sum(cpu.run_layer(a, b).cycles for a, b in layers)
        )

    def test_shape_mismatch_rejected(self):
        a = random_sparse(4, 5, 0.5, seed=1)
        b = random_sparse(6, 4, 0.5, seed=2)
        with pytest.raises(ValueError):
            CpuMklLikeBaseline().run_layer(a, b)

    def test_accelerators_are_much_faster_than_cpu(self):
        """Fig. 12's qualitative claim: the accelerators beat MKL by >10x."""
        spec = get_representative_layer("SQ11")
        a, b = materialize_layer(spec, scale=0.5)
        cpu = CpuMklLikeBaseline()
        flexagon = FlexagonAccelerator(CONFIG)
        cpu_seconds = cpu.run_layer(a, b).seconds
        accel_result = flexagon.run_layer(a, b)
        accel_seconds = CONFIG.cycles_to_seconds(accel_result.total_cycles)
        assert cpu_seconds / accel_seconds > 5.0


class TestAreaPowerModel:
    def test_table8_reference_values(self):
        sigma = accelerator_area_power("SIGMA-like")
        sparch = accelerator_area_power("SpArch-like")
        gamma = accelerator_area_power("GAMMA-like")
        flexagon = accelerator_area_power("Flexagon")
        assert sigma.total_area == pytest.approx(4.21, rel=0.02)
        assert sparch.total_area == pytest.approx(5.14, rel=0.02)
        assert gamma.total_area == pytest.approx(4.62, rel=0.02)
        assert flexagon.total_area == pytest.approx(5.28, rel=0.02)
        assert flexagon.total_power == pytest.approx(2998, rel=0.02)
        assert sigma.psram_area == 0.0

    def test_flexagon_overheads_match_paper_percentages(self):
        flexagon = accelerator_area_power("Flexagon")
        sigma = accelerator_area_power("SIGMA-like")
        sparch = accelerator_area_power("SpArch-like")
        gamma = accelerator_area_power("GAMMA-like")
        assert flexagon.total_area / sigma.total_area == pytest.approx(1.25, abs=0.03)
        assert flexagon.total_area / sparch.total_area == pytest.approx(1.03, abs=0.03)
        assert flexagon.total_area / gamma.total_area == pytest.approx(1.14, abs=0.03)

    def test_mrn_is_larger_than_fan_and_merger(self):
        flexagon = accelerator_area_power("Flexagon")
        sigma = accelerator_area_power("SIGMA-like")
        gamma = accelerator_area_power("GAMMA-like")
        assert flexagon.rn_area > sigma.rn_area
        assert flexagon.rn_area > gamma.rn_area

    def test_scaling_with_configuration(self):
        big = accelerator_area_power("Flexagon", default_config(num_multipliers=128))
        ref = accelerator_area_power("Flexagon")
        assert big.rn_area == pytest.approx(2 * ref.rn_area)
        assert big.cache_area == pytest.approx(ref.cache_area)

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            accelerator_area_power("TPU")

    def test_naive_design_is_larger(self):
        comparison = naive_triple_network_area()
        flexagon_total = sum(comparison["Flexagon"].values())
        naive_total = sum(comparison["Naive"].values())
        assert naive_total > flexagon_total
        # The paper attributes the overhead mostly to muxes/demuxes (~25%).
        assert comparison["Naive"]["mux_demux"] == pytest.approx(
            0.25 * flexagon_total, rel=0.05
        )

    def test_performance_per_area(self):
        assert performance_per_area(100.0, 2.0) == pytest.approx(1 / 200.0)
        with pytest.raises(ValueError):
            performance_per_area(0.0, 1.0)
