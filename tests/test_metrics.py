"""Tests for the metrics package: result records and report formatting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflows import Dataflow
from repro.dataflows.stats import DataflowStats
from repro.metrics import (
    LayerSimResult,
    ModelSimResult,
    PhaseCycles,
    TrafficBreakdown,
    format_markdown_table,
    format_table,
    geometric_mean,
    speedup,
)
from repro.metrics.reporting import histogram_line, series_to_rows


class TestPhaseCycles:
    def test_total(self):
        cycles = PhaseCycles(stationary=10, streaming=100, merging=40)
        assert cycles.total == 150

    def test_merge(self):
        a = PhaseCycles(1, 2, 3)
        b = PhaseCycles(10, 20, 30)
        merged = a.merged_with(b)
        assert (merged.stationary, merged.streaming, merged.merging) == (11, 22, 33)


class TestTrafficBreakdown:
    def test_onchip_total(self):
        traffic = TrafficBreakdown(sta_bytes=5, str_bytes=10, psum_bytes=15, offchip_bytes=3)
        assert traffic.onchip_bytes == 30

    def test_merge(self):
        a = TrafficBreakdown(1, 2, 3, 4)
        b = TrafficBreakdown(10, 20, 30, 40)
        merged = a.merged_with(b)
        assert merged.offchip_bytes == 44
        assert merged.onchip_bytes == 66


class TestModelSimResult:
    def _layer(self, cycles, dataflow=Dataflow.IP_M):
        return LayerSimResult(
            accelerator="X",
            dataflow=dataflow,
            cycles=PhaseCycles(streaming=cycles),
            traffic=TrafficBreakdown(str_bytes=10),
            stats=DataflowStats(multiplications=1),
        )

    def test_totals(self):
        result = ModelSimResult(accelerator="X", model_name="toy")
        result.layer_results = [self._layer(100), self._layer(50, Dataflow.GUST_M)]
        assert result.total_cycles == 150
        assert result.total_traffic.str_bytes == 20

    def test_dataflow_histogram(self):
        result = ModelSimResult(accelerator="X", model_name="toy")
        result.layer_results = [
            self._layer(1), self._layer(1), self._layer(1, Dataflow.GUST_M),
        ]
        histogram = result.dataflow_histogram
        assert histogram[Dataflow.IP_M] == 2
        assert histogram[Dataflow.GUST_M] == 1


class TestAggregations:
    def test_speedup(self):
        assert speedup(200, 100) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(100, 0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_geometric_mean_bounds(self, values):
        gmean = geometric_mean(values)
        assert min(values) <= gmean * (1 + 1e-9)
        assert gmean <= max(values) * (1 + 1e-9)


class TestReporting:
    ROWS = [
        {"name": "a", "value": 1.5, "flag": True},
        {"name": "bb", "value": 22.125, "flag": False},
    ]

    def test_format_table_contains_all_cells(self):
        text = format_table(self.ROWS, title="demo")
        assert "demo" in text
        assert "bb" in text
        assert "22.1" in text
        assert "yes" in text and "no" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_table_column_selection(self):
        text = format_table(self.ROWS, columns=["name"])
        assert "value" not in text

    def test_markdown_table(self):
        text = format_markdown_table(self.ROWS)
        assert text.startswith("| name | value | flag |")
        assert "| a | 1.5 | yes |" in text

    def test_markdown_empty(self):
        assert format_markdown_table([]) == "(empty)\n"

    def test_histogram_line(self):
        text = histogram_line({"IP": 3, "OP": 1, "Gust": 0})
        assert "IP" in text and "#" in text
        assert histogram_line({}) == "(no data)"

    def test_series_to_rows(self):
        rows = series_to_rows({"s1": [1, 2], "s2": [3]}, "idx", ["x", "y"])
        assert rows[0] == {"idx": "x", "s1": 1, "s2": 3}
        assert rows[1]["s2"] == ""
