"""Tests of the ``python -m repro`` CLI (and the ``repro.runtime`` shim)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.runtime import ResultCache
from repro.runtime.__main__ import main as runtime_main

#: Tiny settings flags shared by the simulation-backed CLI invocations.
MICRO = ["--max-dense-macs", "5e4", "--max-layers", "1", "--serial"]


class TestFigureCommand:
    def test_outputs_parseable_json(self, tmp_path, capsys):
        rc = main(["figure", "table8", "--no-cache", *MICRO])
        assert rc == 0
        out, err = capsys.readouterr()
        payload = json.loads(out)
        assert payload["figure"] == "table8"
        assert payload["kind"] == "figure"
        assert payload["rows"]
        assert "jobs:" in err  # counters go to stderr, not into the payload

    def test_second_run_is_cache_served_and_byte_identical(self, tmp_path, capsys):
        args = ["figure", "fig12", "--cache-dir", str(tmp_path / "cache"), *MICRO]
        first_path = tmp_path / "first.json"
        second_path = tmp_path / "second.json"
        assert main([*args, "-o", str(first_path)]) == 0
        assert "executed=0" not in capsys.readouterr().err
        assert main([*args, "-o", str(second_path)]) == 0
        assert "executed=0" in capsys.readouterr().err
        assert first_path.read_bytes() == second_path.read_bytes()

    def test_table_rendering(self, capsys):
        rc = main(["figure", "table3", "--table", "--no-cache"])
        assert rc == 0
        out, _ = capsys.readouterr()
        assert "Table 3" in out and "Gustavson" in out

    def test_unknown_figure_fails_cleanly(self, capsys):
        assert main(["figure", "fig99", "--no-cache"]) == 2
        assert "known figures" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_with_overrides(self, capsys):
        rc = main([
            "sweep", "--layers", "A2", "--designs", "GAMMA-like",
            "--scale", "0.05", "--set", "num_multipliers=16",
            "--no-cache", "--serial",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sweep"
        assert payload["spec"]["config_overrides"] == [["num_multipliers", 16]]
        (row,) = payload["rows"]
        assert row["design"] == "GAMMA-like" and row["cycles"] > 0

    def test_bad_override_value_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--layers", "A2", "--set", "num_multipliers=lots"])

    def test_unknown_override_key_fails_cleanly(self, capsys):
        rc = main(["sweep", "--layers", "A2", "--set", "bogus_field=1", "--no-cache"])
        assert rc == 2
        assert "unknown config override" in capsys.readouterr().err


class TestCacheCommand:
    def _warm_cache(self, tmp_path) -> ResultCache:
        cache = ResultCache(tmp_path / "cache")
        for index in range(3):
            cache.put(f"{index:02d}" * 32, {"payload": "x" * 2000, "index": index})
        return cache

    def test_stats(self, tmp_path, capsys):
        cache = self._warm_cache(tmp_path)
        rc = main(["cache", "--cache-dir", str(cache.directory), "stats"])
        assert rc == 0
        out, _ = capsys.readouterr()
        assert "entries         : 3" in out

    def test_clear(self, tmp_path, capsys):
        cache = self._warm_cache(tmp_path)
        rc = main(["cache", "--cache-dir", str(cache.directory), "clear"])
        assert rc == 0
        assert "removed 3 entries" in capsys.readouterr().out
        assert cache.entry_count() == 0

    def test_prune(self, tmp_path, capsys):
        cache = self._warm_cache(tmp_path)
        entry_bytes = cache.size_bytes() // 3
        rc = main([
            "cache", "--cache-dir", str(cache.directory),
            "prune", "--max-size-mb", str(entry_bytes / 1e6),
        ])
        assert rc == 0
        assert "pruned 2 entries" in capsys.readouterr().out
        assert cache.entry_count() == 1


class TestListCommand:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out, _ = capsys.readouterr()
        for token in ("fig12", "SqueezeNet", "MB215", "Flexagon", "CPU-MKL"):
            assert token in out

    def test_lists_one_section(self, capsys):
        assert main(["list", "figures"]) == 0
        out, _ = capsys.readouterr()
        assert "fig12" in out and "SqueezeNet" not in out


class TestRuntimeModuleShim:
    def test_stats_delegates_to_the_unified_cli(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert runtime_main(["stats"]) == 0
        out, _ = capsys.readouterr()
        assert "cache directory" in out and "entries" in out

    def test_clear_still_works(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        ResultCache().put("ab" * 32, 1)
        assert runtime_main(["clear"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out

    def test_unknown_command_is_rejected(self, capsys):
        assert runtime_main(["bogus"]) == 2
        assert "unknown command" in capsys.readouterr().err
