"""Setuptools shim.

The execution environment has no ``wheel`` package available (offline), so
``pip install -e .`` falls back to the legacy ``setup.py develop`` path, which
this file enables.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
