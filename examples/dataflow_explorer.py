"""Explore how the six dataflows behave on one of the paper's Table 6 layers.

Run with::

    python examples/dataflow_explorer.py [LAYER] [SCALE]

where ``LAYER`` is one of SQ5, SQ11, R4, R6, S-R3, V0, MB215, V7, A2
(default: V0) and ``SCALE`` shrinks the layer dimensions (default: 0.2).

The script simulates the layer under all six dataflows on the shared
substrate, prints the cycle/traffic/miss-rate comparison, and shows which
dataflow the heuristic mapper and the oracle mapper would configure —
reproducing, for a single layer, the reasoning behind Figs. 13-16.
"""

import sys

from repro.accelerators.engine import SpmspmEngine
from repro.core import HeuristicMapper, OracleMapper
from repro.dataflows import Dataflow
from repro.experiments import default_settings
from repro.metrics import format_table
from repro.workloads import get_representative_layer, materialize_layer


def main() -> None:
    layer_name = sys.argv[1] if len(sys.argv) > 1 else "V0"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    spec = get_representative_layer(layer_name)
    settings = default_settings()
    config = settings.scaled_config(scale)
    a, b = materialize_layer(spec, scale=scale)
    print(f"Layer {spec.name}: M={spec.m} N={spec.n} K={spec.k} "
          f"(scaled by {scale}); A nnz={a.nnz}, B nnz={b.nnz}")
    print(f"Accelerator: {config.num_multipliers} multipliers, "
          f"{config.str_cache_bytes // 1024} KiB STR cache, "
          f"{config.psram_bytes // 1024} KiB PSRAM")

    engine = SpmspmEngine(config)
    rows = []
    for dataflow in Dataflow:
        sim = engine.run_layer(dataflow, a, b, layer_name=spec.name)
        rows.append(
            {
                "dataflow": dataflow.informal_name,
                "cycles": round(sim.total_cycles),
                "mult cycles": round(sim.cycles.stationary + sim.cycles.streaming),
                "merge cycles": round(sim.cycles.merging),
                "on-chip (KB)": round(sim.traffic.onchip_bytes / 1e3, 1),
                "off-chip (KB)": round(sim.traffic.offchip_bytes / 1e3, 1),
                "miss rate (%)": round(100 * sim.str_cache_miss_rate, 2),
            }
        )
    print()
    print(format_table(rows, title=f"All six dataflows on layer {spec.name}"))

    heuristic = HeuristicMapper(config).select(a, b)
    oracle = OracleMapper(config).select(a, b)
    print(f"Heuristic mapper picks : {heuristic.informal_name}")
    print(f"Oracle mapper picks    : {oracle.informal_name}")
    best = min(rows, key=lambda row: row["cycles"])
    print(f"Fastest dataflow       : {best['dataflow']} ({best['cycles']} cycles)")


if __name__ == "__main__":
    main()
