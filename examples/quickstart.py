"""Quickstart: multiply two sparse matrices with every dataflow and on Flexagon.

Run with::

    python examples/quickstart.py

The script builds a random sparse matrix pair, executes the six SpMSpM
dataflows functionally (checking them against a reference SpGEMM), then
simulates the same layer on the Flexagon accelerator and the three
fixed-dataflow baselines through the public :class:`repro.api.Session`
facade — one job batch through the batched runtime, so re-running the
script answers the simulations from the persistent result cache — printing
cycles, traffic and the dataflow the mapper picked.
"""

from repro import Dataflow, Session, random_sparse, run_dataflow
from repro.metrics import format_table
from repro.runtime import DESIGN_ORDER
from repro.sparse import matrices_allclose, spgemm_reference


def main() -> None:
    # A small sparse layer: C[200, 150] = A[200, 180] x B[180, 150].
    a = random_sparse(200, 180, density=0.25, seed=1)
    b = random_sparse(180, 150, density=0.20, seed=2)
    reference = spgemm_reference(a, b)
    print(f"A: {a.shape}, nnz={a.nnz}   B: {b.shape}, nnz={b.nnz}   "
          f"C: {reference.shape}, nnz={reference.nnz}")

    # ------------------------------------------------------------------
    # 1. The six dataflows, functionally.
    # ------------------------------------------------------------------
    rows = []
    for dataflow in Dataflow:
        result = run_dataflow(dataflow, a, b, num_multipliers=64)
        assert matrices_allclose(result.output, reference), dataflow
        rows.append(
            {
                "dataflow": dataflow.informal_name,
                "output layout": str(result.output.layout),
                "multiplications": result.stats.multiplications,
                "psum writes": result.stats.psum_writes,
                "merge comparisons": result.stats.merge_comparisons,
            }
        )
    print()
    print(format_table(rows, title="Functional execution of the six dataflows"))

    # ------------------------------------------------------------------
    # 2. The same layer on the simulated accelerators.
    # ------------------------------------------------------------------
    # The session's design registry configures Flexagon with the oracle
    # mapper (the same policy the experiment harness evaluates), so its
    # choice here is the proven-best dataflow rather than the heuristic's.
    session = Session()
    sims = session.simulate(a, b, layer_name="quickstart")
    rows = []
    for design, sim in zip(DESIGN_ORDER, sims):
        rows.append(
            {
                "design": design,
                "dataflow": sim.dataflow.informal_name,
                "cycles": round(sim.total_cycles),
                "on-chip traffic (KB)": round(sim.traffic.onchip_bytes / 1e3, 1),
                "off-chip traffic (KB)": round(sim.traffic.offchip_bytes / 1e3, 1),
                "STR miss rate (%)": round(100 * sim.str_cache_miss_rate, 2),
            }
        )
    print(format_table(rows, title="Cycle-accounting simulation (Table 5 configuration)"))
    flexagon_cycles = rows[-1]["cycles"]
    best_fixed = min(row["cycles"] for row in rows[:-1])
    print(f"Flexagon picked {rows[-1]['dataflow']} and needs {flexagon_cycles} cycles "
          f"(best fixed design: {best_fixed}).")


if __name__ == "__main__":
    main()
