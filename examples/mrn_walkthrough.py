"""Walk through the paper's Figs. 5-7 on a tiny 4-multiplier Flexagon.

Run with::

    python examples/mrn_walkthrough.py

Using the same example matrices as the paper's walk-through (Fig. 2), the
script shows the three execution styles on the micro-architectural models:

* Inner Product  — dot products reduced by the MRN in adder mode,
* Outer Product  — partial-sum fibers staged in the PSRAM and merged by the
  MRN in comparator mode,
* Gustavson      — scaled B fibers merged on the fly, row by row.
"""

import numpy as np

from repro.arch.memory.psram import Psram
from repro.arch.mrn import MergerReductionNetwork
from repro.arch.multiplier import MultiplierMode, MultiplierNetwork
from repro.sparse import csr_from_dense, csc_from_dense
from repro.sparse.fiber import Element, Fiber


def paper_example_matrices():
    """The 4x4 example operands used throughout Section 3.2 (dense form)."""
    a = np.array([
        [0.0, 2.0, 0.0, 0.0],
        [1.0, 0.0, 3.0, 4.0],
        [0.0, 0.0, 0.0, 0.0],
        [0.0, 0.0, 0.0, 0.0],
    ])
    b = np.array([
        [0.0, 5.0, 0.0, 0.0],
        [6.0, 0.0, 7.0, 0.0],
        [8.0, 0.0, 9.0, 0.0],
        [1.0, 0.0, 0.0, 2.0],
    ])
    return a, b


def inner_product_walkthrough(a_dense, b_dense) -> None:
    print("=== Inner Product(M): stationary rows of A, streamed columns of B ===")
    a = csr_from_dense(a_dense)
    b = csc_from_dense(b_dense)
    mrn = MergerReductionNetwork(4)
    multipliers = MultiplierNetwork(4)
    multipliers.configure_all(MultiplierMode.MULTIPLIER)
    for m in range(a.nrows):
        a_fiber = a.fiber(m)
        if a_fiber.is_empty():
            continue
        for n in range(b.major_dim):
            b_fiber = b.fiber(n)
            products = []
            for coord in a_fiber.intersect_coords(b_fiber):
                switch = multipliers[len(products) % 4]
                switch.load_stationary(a_fiber.value_at(coord))
                products.append(switch.process(Element(coord, b_fiber.value_at(coord))).value)
            if products:
                total, cycles = mrn.reduce(products)
                print(f"  C[{m},{n}] = {total:g}  "
                      f"({len(products)} products reduced in {cycles} tree cycles)")
    print()


def outer_product_walkthrough(a_dense, b_dense) -> None:
    print("=== Outer Product(M): psum fibers staged in the PSRAM, then merged ===")
    a = csc_from_dense(a_dense)
    b = csr_from_dense(b_dense)
    psram = Psram(capacity_bytes=1024, block_bytes=64, num_sets=4)
    # Streaming phase: every stationary scalar A[m, k] scales the fiber B[k, :].
    for k in range(a.major_dim):
        for m, a_value in a.fiber(k):
            for element in b.fiber(k).scaled(a_value):
                psram.partial_write(m, k, element)
    # Merging phase: row by row, consume the k-fibers and merge them on the MRN.
    mrn = MergerReductionNetwork(4)
    for row in range(4):
        ks = psram.fiber_ks(row)
        if not ks:
            continue
        fibers = [Fiber(list(psram.consume_fiber(row, k)), sort=True) for k in ks]
        merged, cycles = mrn.merge(fibers)
        rendered = ", ".join(f"C[{row},{c}]={v:g}" for c, v in merged)
        print(f"  row {row}: merged {len(ks)} psum fibers in {cycles} cycles -> {rendered}")
    print()


def gustavson_walkthrough(a_dense, b_dense) -> None:
    print("=== Gustavson(M): scaled B rows merged on the fly, row by row ===")
    a = csr_from_dense(a_dense)
    b = csr_from_dense(b_dense)
    mrn = MergerReductionNetwork(4)
    for m in range(a.nrows):
        a_fiber = a.fiber(m)
        if a_fiber.is_empty():
            continue
        scaled = [b.fiber(k).scaled(value) for k, value in a_fiber]
        merged, cycles = mrn.merge(scaled)
        rendered = ", ".join(f"C[{m},{c}]={v:g}" for c, v in merged)
        print(f"  row {m}: merged {len(scaled)} scaled fibers in {cycles} cycles -> {rendered}")
    print()


def main() -> None:
    a_dense, b_dense = paper_example_matrices()
    expected = a_dense @ b_dense
    print("Reference C = A x B:")
    print(expected)
    print()
    inner_product_walkthrough(a_dense, b_dense)
    outer_product_walkthrough(a_dense, b_dense)
    gustavson_walkthrough(a_dense, b_dense)
    print("All three dataflows produce the same C, using the same MRN substrate.")


if __name__ == "__main__":
    main()
