"""End-to-end sparse DNN inference on the four accelerator designs.

Run with::

    python examples/sparse_dnn_inference.py [MODEL] [MAX_LAYERS]

where ``MODEL`` is one of the Table 2 short names (A, SQ, V, R, S-R, S-M, DB,
MB; default SQ) and ``MAX_LAYERS`` caps how many layers are simulated
(default 8).  The script chains the model's layers through the scheduler on
the SIGMA-like, SpArch-like, GAMMA-like and Flexagon designs and reports the
per-layer dataflow choices and the end-to-end comparison — a miniature
version of the paper's Fig. 12.
"""

import sys

from repro.accelerators import (
    CpuMklLikeBaseline,
    FlexagonAccelerator,
    GammaLikeAccelerator,
    SigmaLikeAccelerator,
    SparchLikeAccelerator,
)
from repro.core import DnnScheduler, LayerExecution, OracleMapper
from repro.experiments import default_settings
from repro.metrics import format_table
from repro.workloads import get_model, materialize_layer


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "SQ"
    max_layers = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    model = get_model(model_name)
    settings = default_settings(max_dense_macs=2e6, max_layers_per_model=max_layers)
    layers = list(model.layers)[:max_layers]
    scale = min(settings.layer_scale(spec) for spec in layers)
    config = settings.scaled_config(scale)
    print(f"{model.name}: simulating {len(layers)}/{model.num_layers} layers "
          f"at scale {scale:.3f}")

    executions = []
    operands = []
    for spec in layers:
        a, b = materialize_layer(spec, scale=scale)
        executions.append(LayerExecution(a=a, b=b, name=spec.name))
        operands.append((a, b))

    designs = [
        SigmaLikeAccelerator(config),
        SparchLikeAccelerator(config),
        GammaLikeAccelerator(config),
        FlexagonAccelerator(config, mapper=OracleMapper(config)),
    ]
    cpu_seconds = CpuMklLikeBaseline().run_model(operands).seconds

    rows = []
    flexagon_result = None
    for design in designs:
        scheduler = DnnScheduler(design, track_activation_layout=False)
        result = scheduler.run_model(executions, model_name=model.name)
        if design.name == "Flexagon":
            flexagon_result = result
        seconds = config.cycles_to_seconds(result.total_cycles)
        rows.append(
            {
                "design": design.name,
                "cycles": round(result.total_cycles),
                "speed-up vs CPU": round(cpu_seconds / seconds, 2),
                "on-chip traffic (MB)": round(result.total_traffic.onchip_bytes / 1e6, 2),
                "dataflows used": ", ".join(
                    f"{d.dataflow_class.value}x{count}"
                    for d, count in sorted(
                        result.dataflow_histogram.items(), key=lambda kv: kv[0].name
                    )
                ),
            }
        )
    print()
    print(format_table(rows, title=f"End-to-end comparison on {model.name}"))

    per_layer = [
        {
            "layer": layer.layer_name,
            "Flexagon dataflow": layer.dataflow.informal_name,
            "cycles": round(layer.total_cycles),
            "miss rate (%)": round(100 * layer.str_cache_miss_rate, 2),
        }
        for layer in flexagon_result.layer_results
    ]
    print(format_table(per_layer, title="Flexagon's per-layer dataflow choices"))


if __name__ == "__main__":
    main()
