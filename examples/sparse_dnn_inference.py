"""End-to-end sparse DNN inference on the four accelerator designs.

Run with::

    python examples/sparse_dnn_inference.py [MODEL] [MAX_LAYERS]

where ``MODEL`` is one of the Table 2 short names (A, SQ, V, R, S-R, S-M, DB,
MB; default SQ) and ``MAX_LAYERS`` caps how many layers are simulated
(default 8).  The script expresses the run as one declarative
:class:`repro.api.SweepSpec` — (model x designs x CPU baseline) — and hands
it to a :class:`repro.api.Session`: the grid fans out through the batched
runtime in parallel on a cold cache and is answered from the persistent
result cache on repeat runs.  It then reports the per-layer dataflow choices
and the end-to-end comparison — a miniature version of the paper's Fig. 12.
"""

import sys

from repro.api import Session, SweepSpec
from repro.experiments import default_settings
from repro.metrics import format_table
from repro.runtime import CPU_DESIGN, DESIGN_ORDER
from repro.workloads import get_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "SQ"
    max_layers = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    model = get_model(model_name)
    session = Session(default_settings(max_dense_macs=2e6))
    spec = SweepSpec(
        models=model_name,
        designs=DESIGN_ORDER + (CPU_DESIGN,),
        max_layers_per_model=max_layers,
    )
    sweep = session.sweep(spec)
    layers = {row["layer"] for row in sweep.rows}
    print(f"{model.name}: simulated {len(layers)}/{model.num_layers} layers")

    by_design = {
        design: [row for row in sweep.rows if row["design"] == design]
        for design in DESIGN_ORDER + (CPU_DESIGN,)
    }
    cpu_seconds = sum(row["seconds"] for row in by_design[CPU_DESIGN])

    rows = []
    for design in DESIGN_ORDER:
        design_rows = by_design[design]
        cycles = sum(row["cycles"] for row in design_rows)
        seconds = sum(row["seconds"] for row in design_rows)
        onchip = sum(row["onchip_bytes"] for row in design_rows)
        histogram: dict[str, int] = {}
        for row in design_rows:
            family = row["dataflow"].split("_")[0]
            histogram[family] = histogram.get(family, 0) + 1
        rows.append(
            {
                "design": design,
                "cycles": round(cycles),
                "speed-up vs CPU": round(cpu_seconds / seconds, 2),
                "on-chip traffic (MB)": round(onchip / 1e6, 2),
                "dataflows used": ", ".join(
                    f"{family}x{count}" for family, count in sorted(histogram.items())
                ),
            }
        )
    print()
    print(format_table(rows, title=f"End-to-end comparison on {model.name}"))

    per_layer = [
        {
            "layer": row["layer"],
            "Flexagon dataflow": row["dataflow"],
            "cycles": round(row["cycles"]),
            "miss rate (%)": round(row["miss_rate_pct"], 2),
        }
        for row in by_design["Flexagon"]
    ]
    print(format_table(per_layer, title="Flexagon's per-layer dataflow choices"))


if __name__ == "__main__":
    main()
