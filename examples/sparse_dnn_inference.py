"""End-to-end sparse DNN inference on the four accelerator designs.

Run with::

    python examples/sparse_dnn_inference.py [MODEL] [MAX_LAYERS]

where ``MODEL`` is one of the Table 2 short names (A, SQ, V, R, S-R, S-M, DB,
MB; default SQ) and ``MAX_LAYERS`` caps how many layers are simulated
(default 8).  The script fans the (design, layer) grid out through the
:mod:`repro.runtime` batch runner — in parallel on a cold cache, answered
from the persistent result cache on repeat runs — and reports the per-layer
dataflow choices and the end-to-end comparison — a miniature version of the
paper's Fig. 12.
"""

import sys

from repro.experiments import default_settings
from repro.metrics import ModelSimResult, format_table
from repro.runtime import CPU_DESIGN, DESIGN_ORDER, SimJob, default_runner
from repro.workloads import get_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "SQ"
    max_layers = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    model = get_model(model_name)
    settings = default_settings(max_dense_macs=2e6, max_layers_per_model=max_layers)
    layers = list(model.layers)[:max_layers]
    scale = min(settings.layer_scale(spec) for spec in layers)
    config = settings.scaled_config(scale)
    print(f"{model.name}: simulating {len(layers)}/{model.num_layers} layers "
          f"at scale {scale:.3f}")

    runner = default_runner()
    jobs = [
        SimJob(design=design, config=config, spec=spec, scale=scale,
               layer_name=spec.name)
        for design in DESIGN_ORDER + (CPU_DESIGN,)
        for spec in layers
    ]
    grid = iter(runner.run(jobs))
    per_design = {}
    for design in DESIGN_ORDER + (CPU_DESIGN,):
        per_design[design] = [next(grid) for _ in layers]

    cpu_seconds = sum(layer.seconds for layer in per_design[CPU_DESIGN])

    rows = []
    flexagon_result = None
    for design in DESIGN_ORDER:
        result = ModelSimResult(accelerator=design, model_name=model.name,
                                layer_results=per_design[design])
        if design == "Flexagon":
            flexagon_result = result
        seconds = config.cycles_to_seconds(result.total_cycles)
        rows.append(
            {
                "design": design,
                "cycles": round(result.total_cycles),
                "speed-up vs CPU": round(cpu_seconds / seconds, 2),
                "on-chip traffic (MB)": round(result.total_traffic.onchip_bytes / 1e6, 2),
                "dataflows used": ", ".join(
                    f"{d.dataflow_class.value}x{count}"
                    for d, count in sorted(
                        result.dataflow_histogram.items(), key=lambda kv: kv[0].name
                    )
                ),
            }
        )
    print()
    print(format_table(rows, title=f"End-to-end comparison on {model.name}"))

    per_layer = [
        {
            "layer": layer.layer_name,
            "Flexagon dataflow": layer.dataflow.informal_name,
            "cycles": round(layer.total_cycles),
            "miss rate (%)": round(100 * layer.str_cache_miss_rate, 2),
        }
        for layer in flexagon_result.layer_results
    ]
    print(format_table(per_layer, title="Flexagon's per-layer dataflow choices"))


if __name__ == "__main__":
    main()
