"""Flexagon reproduction: a multi-dataflow SpMSpM accelerator model.

The package reproduces, in pure Python, the system described in

    "Flexagon: A Multi-Dataflow Sparse-Sparse Matrix Multiplication
     Accelerator for Efficient DNN Processing", ASPLOS 2023.

Public API layers (see DESIGN.md for the full inventory):

* :mod:`repro.api` — **the public facade**: :class:`Session`,
  declarative :class:`SweepSpec`/:class:`FigureQuery` requests, typed
  JSON-round-trippable responses, and the ``python -m repro`` CLI.
* :mod:`repro.sparse` — compressed formats (CSR/CSC), fibers, generators.
* :mod:`repro.dataflows` — the six SpMSpM dataflows and their taxonomy.
* :mod:`repro.arch` — cycle-accounting hardware components (MRN, caches,
  PSRAM, DRAM, controllers).
* :mod:`repro.accelerators` — Flexagon plus the SIGMA-like, SpArch-like,
  GAMMA-like and CPU baselines, and the area/power model.
* :mod:`repro.core` — the mapper (dataflow analysis), tiling and the DNN
  layer-chain scheduler.
* :mod:`repro.workloads` — the 8 DNN models and 9 representative layers of
  the paper's evaluation.
* :mod:`repro.metrics` — result records and report formatting.
"""

__version__ = "1.1.0"

from repro.sparse import (
    CompressedMatrix,
    Fiber,
    Layout,
    csr_from_dense,
    csc_from_dense,
    random_sparse,
)
from repro.dataflows import Dataflow, DataflowClass, run_dataflow
from repro.api import FigureQuery, Session, SweepSpec

__all__ = [
    "__version__",
    "CompressedMatrix",
    "Fiber",
    "Layout",
    "csr_from_dense",
    "csc_from_dense",
    "random_sparse",
    "Dataflow",
    "DataflowClass",
    "run_dataflow",
    "FigureQuery",
    "Session",
    "SweepSpec",
]
