"""Reference SpGEMM implementations used to validate the accelerator models.

Every dataflow implementation and every accelerator simulation in this
repository is checked against the two functions here:

* :func:`dense_matmul` — the obvious dense ``A @ B`` on expanded arrays.
* :func:`spgemm_reference` — a straightforward hash-based Gustavson SpGEMM
  operating directly on compressed matrices, useful when the dense expansion
  would be too large.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.formats import CompressedMatrix, Layout, matrix_from_coo


def dense_matmul(a: CompressedMatrix, b: CompressedMatrix) -> np.ndarray:
    """Dense reference product ``A @ B`` as a numpy array."""
    _check_shapes(a, b)
    return a.to_dense() @ b.to_dense()


def spgemm_reference(
    a: CompressedMatrix,
    b: CompressedMatrix,
    layout: Layout = Layout.CSR,
) -> CompressedMatrix:
    """Sparse reference product computed row-by-row with a hash accumulator.

    This is Gustavson's algorithm in its textbook software form; it does not
    model any hardware behaviour and exists purely as ground truth.
    """
    _check_shapes(a, b)
    a_rows = a if a.layout is Layout.CSR else a.with_layout(Layout.CSR)
    b_rows = b if b.layout is Layout.CSR else b.with_layout(Layout.CSR)

    triples: list[tuple[int, int, float]] = []
    for m in range(a_rows.nrows):
        accumulator: dict[int, float] = {}
        for k, a_val in a_rows.fiber(m):
            for n, b_val in b_rows.fiber(k):
                accumulator[n] = accumulator.get(n, 0.0) + a_val * b_val
        triples.extend((m, n, v) for n, v in accumulator.items() if v != 0.0)
    return matrix_from_coo(a.nrows, b.ncols, triples, layout=layout)


def matrices_allclose(
    a: CompressedMatrix | np.ndarray,
    b: CompressedMatrix | np.ndarray,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> bool:
    """Return True when the two matrices are numerically equal after densifying."""
    dense_a = a.to_dense() if isinstance(a, CompressedMatrix) else np.asarray(a)
    dense_b = b.to_dense() if isinstance(b, CompressedMatrix) else np.asarray(b)
    if dense_a.shape != dense_b.shape:
        return False
    return bool(np.allclose(dense_a, dense_b, rtol=rtol, atol=atol))


def _check_shapes(a: CompressedMatrix, b: CompressedMatrix) -> None:
    if a.ncols != b.nrows:
        raise ValueError(
            f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
        )
