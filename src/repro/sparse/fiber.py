"""Fibers: the unit of sparse data movement in Flexagon.

Following the terminology of the paper (Section 2.1, borrowed from GAMMA and
ExTensor), a *fiber* is one compressed row (CSR) or column (CSC) of a sparse
matrix: an ordered list of ``(coordinate, value)`` duples sorted by
coordinate.  A single duple is called an *element*.

Fibers are what the accelerator's memory controllers read and write, what the
multipliers scale, and what the Merger-Reduction Network merges, so the class
below provides exactly the operations those components need:

* coordinate-sorted construction and validation,
* scaling by a scalar (the Outer-Product / Gustavson multiply step),
* two-way and k-way merge with accumulation of equal coordinates (what the
  MRN comparator nodes implement in hardware),
* sorted intersection (what the Inner-Product dataflow needs to align
  effectual operands), and
* dot product of two fibers (a full Inner-Product reduction).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, NamedTuple, Sequence


class Element(NamedTuple):
    """A single ``(coordinate, value)`` duple inside a fiber."""

    coord: int
    value: float

    def scaled(self, scalar: float) -> "Element":
        """Return a copy of this element with its value multiplied by ``scalar``."""
        return Element(self.coord, self.value * scalar)


class Fiber:
    """A coordinate-sorted sequence of non-zero elements.

    The constructor accepts any iterable of ``(coord, value)`` pairs.  By
    default the input is validated to be strictly sorted by coordinate with no
    duplicates (the invariant every hardware unit in the paper relies on);
    pass ``sort=True`` to accept unsorted input and have duplicates
    accumulated.
    """

    __slots__ = ("_elements",)

    def __init__(
        self,
        elements: Iterable[tuple[int, float]] = (),
        *,
        sort: bool = False,
    ) -> None:
        elems = [Element(int(c), float(v)) for c, v in elements]
        if sort:
            elems = _accumulate_sorted(sorted(elems, key=lambda e: e.coord))
        else:
            _validate_sorted(elems)
        self._elements: list[Element] = elems

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __getitem__(self, index: int) -> Element:
        return self._elements[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fiber):
            return NotImplemented
        return self._elements == other._elements

    def __hash__(self) -> int:  # pragma: no cover - fibers are mutable-ish, rarely hashed
        return hash(tuple(self._elements))

    def __repr__(self) -> str:
        inner = ", ".join(f"({e.coord}, {e.value:g})" for e in self._elements[:8])
        if len(self._elements) > 8:
            inner += ", ..."
        return f"Fiber([{inner}])"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of non-zero elements stored in the fiber."""
        return len(self._elements)

    @property
    def coords(self) -> list[int]:
        """The coordinates of the stored elements, in ascending order."""
        return [e.coord for e in self._elements]

    @property
    def values(self) -> list[float]:
        """The values of the stored elements, ordered by coordinate."""
        return [e.value for e in self._elements]

    def is_empty(self) -> bool:
        """Return ``True`` when the fiber holds no elements."""
        return not self._elements

    def value_at(self, coord: int, default: float = 0.0) -> float:
        """Return the value stored at ``coord`` or ``default`` when absent.

        Uses binary search, mirroring the paper's observation that fibers are
        always kept coordinate-sorted.
        """
        lo, hi = 0, len(self._elements)
        while lo < hi:
            mid = (lo + hi) // 2
            c = self._elements[mid].coord
            if c == coord:
                return self._elements[mid].value
            if c < coord:
                lo = mid + 1
            else:
                hi = mid
        return default

    # ------------------------------------------------------------------
    # Dataflow building blocks
    # ------------------------------------------------------------------
    def scaled(self, scalar: float) -> "Fiber":
        """Return a new fiber with every value multiplied by ``scalar``.

        This is the elementary operation a multiplier performs in the OP and
        Gustavson dataflows: one stationary scalar linearly combines an entire
        streamed fiber.
        """
        out = Fiber()
        out._elements = [e.scaled(scalar) for e in self._elements]
        return out

    def merged(self, other: "Fiber") -> "Fiber":
        """Two-way merge with accumulation on equal coordinates.

        Equal coordinates are added together; otherwise the element with the
        smaller coordinate is emitted first.  This is exactly the behaviour of
        one MRN comparator node (Section 3.2.2).
        """
        out: list[Element] = []
        i = j = 0
        a, b = self._elements, other._elements
        while i < len(a) and j < len(b):
            ca, cb = a[i].coord, b[j].coord
            if ca == cb:
                out.append(Element(ca, a[i].value + b[j].value))
                i += 1
                j += 1
            elif ca < cb:
                out.append(a[i])
                i += 1
            else:
                out.append(b[j])
                j += 1
        out.extend(a[i:])
        out.extend(b[j:])
        result = Fiber()
        result._elements = out
        return result

    def intersect_coords(self, other: "Fiber") -> list[int]:
        """Return the coordinates present in both fibers (sorted).

        The Inner-Product dataflow needs this intersection to know which
        multiplications are effectual.
        """
        out: list[int] = []
        i = j = 0
        a, b = self._elements, other._elements
        while i < len(a) and j < len(b):
            ca, cb = a[i].coord, b[j].coord
            if ca == cb:
                out.append(ca)
                i += 1
                j += 1
            elif ca < cb:
                i += 1
            else:
                j += 1
        return out

    def dot(self, other: "Fiber") -> tuple[float, int]:
        """Sparse dot product with ``other``.

        Returns ``(value, effectual_multiplies)`` where the second member is
        the number of coordinate matches — i.e. the number of multiplications
        a hardware intersection unit would actually issue.
        """
        total = 0.0
        matches = 0
        i = j = 0
        a, b = self._elements, other._elements
        while i < len(a) and j < len(b):
            ca, cb = a[i].coord, b[j].coord
            if ca == cb:
                total += a[i].value * b[j].value
                matches += 1
                i += 1
                j += 1
            elif ca < cb:
                i += 1
            else:
                j += 1
        return total, matches

    def pruned(self, tolerance: float = 0.0) -> "Fiber":
        """Return a copy with elements whose magnitude is <= ``tolerance`` removed."""
        out = Fiber()
        out._elements = [e for e in self._elements if abs(e.value) > tolerance]
        return out

    def to_dense(self, length: int) -> list[float]:
        """Expand the fiber into a dense list of ``length`` values."""
        dense = [0.0] * length
        for coord, value in self._elements:
            if coord >= length:
                raise ValueError(
                    f"coordinate {coord} does not fit in dense vector of length {length}"
                )
            dense[coord] = value
        return dense

    # ------------------------------------------------------------------
    # Class-level helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, values: Sequence[float], tolerance: float = 0.0) -> "Fiber":
        """Build a fiber from a dense vector, dropping near-zero entries."""
        return cls(
            (i, v) for i, v in enumerate(values) if abs(v) > tolerance
        )

    @staticmethod
    def merge_many(fibers: Sequence["Fiber"]) -> "Fiber":
        """K-way merge with accumulation, the job of a full MRN merge pass.

        Implemented with a heap so the element emission order matches what a
        merge tree produces; ties on coordinate are accumulated into a single
        output element.
        """
        streams = [f._elements for f in fibers if f._elements]
        if not streams:
            return Fiber()
        heap: list[tuple[int, int, int]] = []
        for s, stream in enumerate(streams):
            heapq.heappush(heap, (stream[0].coord, s, 0))
        out: list[Element] = []
        while heap:
            coord, s, idx = heapq.heappop(heap)
            value = streams[s][idx].value
            if out and out[-1].coord == coord:
                out[-1] = Element(coord, out[-1].value + value)
            else:
                out.append(Element(coord, value))
            if idx + 1 < len(streams[s]):
                heapq.heappush(heap, (streams[s][idx + 1].coord, s, idx + 1))
        result = Fiber()
        result._elements = out
        return result


def _validate_sorted(elements: list[Element]) -> None:
    """Raise ``ValueError`` unless coordinates are strictly increasing."""
    for previous, current in zip(elements, elements[1:]):
        if current.coord <= previous.coord:
            raise ValueError(
                "fiber elements must be strictly sorted by coordinate; "
                f"found {previous.coord} followed by {current.coord} "
                "(pass sort=True to sort and accumulate automatically)"
            )


def _accumulate_sorted(elements: list[Element]) -> list[Element]:
    """Collapse duplicate coordinates in an already-sorted element list."""
    out: list[Element] = []
    for element in elements:
        if out and out[-1].coord == element.coord:
            out[-1] = Element(element.coord, out[-1].value + element.value)
        else:
            out.append(element)
    return out
