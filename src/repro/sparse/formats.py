"""Compressed matrix formats (CSR / CSC) built on top of fibers.

The paper treats CSR and CSC as one compression method viewed along two
different major axes (Section 2.1): three one-dimensional tensors — a pointer
vector, an index vector and a data vector.  ``CompressedMatrix`` captures that
directly and exposes the matrix as a sequence of fibers along its major axis,
which is how every dataflow in the accelerator consumes it.
"""

from __future__ import annotations

import enum
import weakref
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.sparse.fiber import Element, Fiber

#: Bytes used by one element on chip: a 32-bit word holds value + coordinate
#: (Table 5, "Total Word Size (Value+Coordinate) 32 bits").
ELEMENT_BYTES = 4
#: Bytes used by one pointer entry in the pointer vector.
POINTER_BYTES = 4


def _frozen(array_like, dtype) -> np.ndarray:
    """A read-only int/float array over ``array_like``, without copying.

    When ``asarray`` had to convert, the fresh array is simply frozen; when
    the caller's own ndarray came through unchanged, a zero-copy *view* is
    frozen instead, so the caller's handle keeps its writability (freezing
    an object the constructor does not own would be a visible side effect).
    """
    arr = np.asarray(array_like, dtype=dtype)
    if arr.flags.writeable:
        if arr is array_like:
            arr = arr.view()
        arr.setflags(write=False)
    return arr


class Layout(enum.Enum):
    """Major-axis layout of a compressed matrix."""

    CSR = "csr"
    CSC = "csc"

    @property
    def major_is_row(self) -> bool:
        """True when fibers run along rows (CSR)."""
        return self is Layout.CSR

    @property
    def other(self) -> "Layout":
        """The opposite layout."""
        return Layout.CSC if self is Layout.CSR else Layout.CSR

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()


class CompressedMatrix:
    """A sparse matrix stored in CSR or CSC form.

    Parameters
    ----------
    nrows, ncols:
        Logical (uncompressed) dimensions.
    layout:
        ``Layout.CSR`` (row-major fibers) or ``Layout.CSC`` (column-major).
    pointers:
        ``major_dim + 1`` monotonically non-decreasing offsets into
        ``indices`` / ``values``.
    indices:
        The minor-axis coordinate of each stored element.
    values:
        The value of each stored element.
    """

    # __weakref__ lets the runtime memoize content digests per instance
    # (repro.runtime.jobs) without keeping matrices alive.
    __slots__ = ("nrows", "ncols", "layout", "pointers", "indices", "values", "__weakref__")

    def __init__(
        self,
        nrows: int,
        ncols: int,
        layout: Layout,
        pointers: Sequence[int],
        indices: Sequence[int],
        values: Sequence[float],
        *,
        validate: bool = True,
    ) -> None:
        if nrows < 0 or ncols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.layout = layout
        # Matrices are immutable by contract: instances (and zero-copy
        # layout/transpose views sharing these arrays) are memoized and
        # shared across jobs, so an in-place edit would silently corrupt
        # other results.  Freezing turns that into an immediate error.
        self.pointers = _frozen(pointers, np.int64)
        self.indices = _frozen(indices, np.int64)
        self.values = _frozen(values, np.float64)
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Validation and basic properties
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        major = self.major_dim
        minor = self.minor_dim
        if len(self.pointers) != major + 1:
            raise ValueError(
                f"pointer vector must have {major + 1} entries, got {len(self.pointers)}"
            )
        if len(self.indices) != len(self.values):
            raise ValueError("indices and values must have the same length")
        if major and (self.pointers[0] != 0 or self.pointers[-1] != len(self.indices)):
            raise ValueError("pointer vector must start at 0 and end at nnz")
        if np.any(np.diff(self.pointers) < 0):
            raise ValueError("pointer vector must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= minor
        ):
            raise ValueError("minor indices out of range")
        # Coordinates within each fiber must be strictly increasing: a
        # coordinate may only be <= its predecessor where a new fiber starts.
        if len(self.indices) > 1:
            fiber_of = np.repeat(
                np.arange(major, dtype=np.int64), np.diff(self.pointers)
            )
            within_fiber = fiber_of[1:] == fiber_of[:-1]
            if np.any(within_fiber & (np.diff(self.indices) <= 0)):
                raise ValueError("fiber coordinates must be strictly increasing")

    @property
    def shape(self) -> tuple[int, int]:
        """The ``(nrows, ncols)`` logical shape."""
        return (self.nrows, self.ncols)

    @property
    def major_dim(self) -> int:
        """Extent of the major (fiber) axis."""
        return self.nrows if self.layout.major_is_row else self.ncols

    @property
    def minor_dim(self) -> int:
        """Extent of the minor (within-fiber coordinate) axis."""
        return self.ncols if self.layout.major_is_row else self.nrows

    @property
    def nnz(self) -> int:
        """Number of stored non-zero elements."""
        return int(len(self.values))

    @property
    def density(self) -> float:
        """Fraction of non-zero entries, in ``[0, 1]``."""
        total = self.nrows * self.ncols
        return self.nnz / total if total else 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries, in ``[0, 1]`` (the paper reports this in %)."""
        return 1.0 - self.density

    def compressed_size_bytes(self) -> int:
        """On-chip footprint: data + index + pointer vectors.

        Values and coordinates each use :data:`ELEMENT_BYTES` /2 in hardware
        (packed 32-bit word per element); here we charge one packed word per
        element plus the pointer vector, matching how the paper reports
        compressed matrix sizes.
        """
        return self.nnz * ELEMENT_BYTES + (self.major_dim + 1) * POINTER_BYTES

    # ------------------------------------------------------------------
    # Fiber access
    # ------------------------------------------------------------------
    def fiber(self, major_index: int) -> Fiber:
        """Return the fiber (compressed row or column) at ``major_index``."""
        if not 0 <= major_index < self.major_dim:
            raise IndexError(
                f"fiber index {major_index} out of range for major dim {self.major_dim}"
            )
        start = int(self.pointers[major_index])
        end = int(self.pointers[major_index + 1])
        fiber = Fiber()
        fiber._elements = [
            Element(int(c), float(v))
            for c, v in zip(self.indices[start:end], self.values[start:end])
        ]
        return fiber

    def fiber_nnz(self, major_index: int) -> int:
        """Number of stored elements in a given fiber, without materialising it."""
        return int(self.pointers[major_index + 1] - self.pointers[major_index])

    def iter_fibers(self) -> Iterator[tuple[int, Fiber]]:
        """Yield ``(major_index, fiber)`` pairs for every fiber, including empty ones."""
        for major in range(self.major_dim):
            yield major, self.fiber(major)

    def iter_nonempty_fibers(self) -> Iterator[tuple[int, Fiber]]:
        """Yield only the fibers that contain at least one element."""
        for major in range(self.major_dim):
            if self.fiber_nnz(major):
                yield major, self.fiber(major)

    def iter_elements(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(row, col, value)`` triples in major-axis order."""
        for major in range(self.major_dim):
            start = int(self.pointers[major])
            end = int(self.pointers[major + 1])
            for minor, value in zip(self.indices[start:end], self.values[start:end]):
                if self.layout.major_is_row:
                    yield major, int(minor), float(value)
                else:
                    yield int(minor), major, float(value)

    def row(self, r: int) -> Fiber:
        """Return row ``r`` as a fiber regardless of layout (may be O(nnz) for CSC)."""
        if self.layout.major_is_row:
            return self.fiber(r)
        return Fiber(
            ((c, v) for rr, c, v in self.iter_elements() if rr == r), sort=True
        )

    def col(self, c: int) -> Fiber:
        """Return column ``c`` as a fiber regardless of layout (may be O(nnz) for CSR)."""
        if not self.layout.major_is_row:
            return self.fiber(c)
        return Fiber(
            ((r, v) for r, cc, v in self.iter_elements() if cc == c), sort=True
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Expand into a dense ``numpy`` array (used for validation only)."""
        dense = np.zeros((self.nrows, self.ncols), dtype=np.float64)
        for r, c, v in self.iter_elements():
            dense[r, c] = v
        return dense

    def with_layout(self, layout: Layout) -> "CompressedMatrix":
        """Return an equivalent matrix stored in ``layout``.

        This is the *explicit format conversion* the paper's inter-layer
        dataflow mechanism avoids in hardware; in software we provide it both
        as a utility and to model the cost of explicit conversions.

        Matrices are treated as immutable once built, so the converted view
        is memoized per instance: the engine (and the mapper's candidate
        trials) can re-request the CSR/CSC view of the same operand without
        paying the conversion again.
        """
        if layout is self.layout:
            return self
        return cached_derived(layout.value, lambda: self._convert_layout(layout), self)

    def _convert_layout(self, layout: Layout) -> "CompressedMatrix":
        major_dim = self.major_dim
        counts = np.diff(self.pointers)
        majors = np.repeat(np.arange(major_dim, dtype=np.int64), counts)
        if self.layout.major_is_row:
            rows, cols = majors, self.indices
        else:
            rows, cols = self.indices, majors
        return matrix_from_arrays(
            self.nrows, self.ncols, rows, cols, self.values, layout=layout
        )

    def transposed(self) -> "CompressedMatrix":
        """Return the transpose, keeping the same physical storage interpretation.

        A CSR matrix transposed becomes a CSC matrix with rows and columns
        swapped but identical pointer/index/value vectors, which is why the
        paper can treat CSR and CSC with the same control logic.  The view is
        zero-copy (shared storage arrays) and memoized per instance.
        """
        return cached_derived("transposed", self._transpose, self)

    def _transpose(self) -> "CompressedMatrix":
        return CompressedMatrix(
            nrows=self.ncols,
            ncols=self.nrows,
            layout=self.layout.other,
            pointers=self.pointers,
            indices=self.indices,
            values=self.values,
            # Shares this matrix's (already validated) storage arrays.
            validate=False,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompressedMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.layout is other.layout
            and np.array_equal(self.pointers, other.pointers)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.values, other.values)
        )

    def __repr__(self) -> str:
        return (
            f"CompressedMatrix(shape={self.shape}, layout={self.layout}, "
            f"nnz={self.nnz}, density={self.density:.4f})"
        )


# ----------------------------------------------------------------------
# Per-instance derived-value memoization
# ----------------------------------------------------------------------
#: ``(kind, id(owner), ...) -> ((weakref(owner), ...), value)``.  Keyed by
#: ``id`` because ``CompressedMatrix`` defines ``__eq__`` without
#: ``__hash__``; the weakref callbacks evict an entry when any owner is
#: collected, so a recycled id can never alias.  Values keep their owners
#: alive only through this table, and the table never outlives the owners.
_DERIVED_CACHE: dict[tuple, tuple] = {}


def cached_derived(kind: str, build, *owners):
    """Memoize ``build()`` per live ``owners`` instance tuple.

    Shared by the layout/transpose views below and by derived per-pair
    structure elsewhere (e.g. the engine's output-row counts), so the
    subtle id+weakref eviction logic exists exactly once.
    """
    # ``id`` here is only a *memo* key for the per-instance derived value —
    # it never reaches a content digest (key paths that traverse a derived
    # matrix hash its stored arrays), so cached results stay process-
    # independent.
    key = (kind,) + tuple(id(owner) for owner in owners)  # repro: allow[determinism]
    entry = _DERIVED_CACHE.get(key)
    if entry is not None and all(
        ref() is owner for ref, owner in zip(entry[0], owners)
    ):
        return entry[1]
    value = build()
    evict = lambda _ref, key=key: _DERIVED_CACHE.pop(key, None)  # noqa: E731
    _DERIVED_CACHE[key] = (
        tuple(weakref.ref(owner, evict) for owner in owners),
        value,
    )
    return value


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def empty_matrix(nrows: int, ncols: int, layout: Layout = Layout.CSR) -> CompressedMatrix:
    """Create an all-zero compressed matrix of the requested shape."""
    major = nrows if layout.major_is_row else ncols
    return CompressedMatrix(nrows, ncols, layout, [0] * (major + 1), [], [])


def matrix_from_coo(
    nrows: int,
    ncols: int,
    triples: Iterable[tuple[int, int, float]],
    layout: Layout = Layout.CSR,
    accumulate_duplicates: bool = True,
) -> CompressedMatrix:
    """Build a compressed matrix from ``(row, col, value)`` triples.

    Duplicate coordinates are accumulated (added) by default, mirroring how
    partial sums combine.  Zero values are kept out of the compressed
    representation.
    """
    entries: dict[tuple[int, int], float] = {}
    for r, c, v in triples:
        if not (0 <= r < nrows and 0 <= c < ncols):
            raise ValueError(f"coordinate ({r}, {c}) outside shape ({nrows}, {ncols})")
        key = (int(r), int(c))
        if accumulate_duplicates and key in entries:
            entries[key] += float(v)
        else:
            entries[key] = float(v)

    major_of = (lambda r, c: r) if layout.major_is_row else (lambda r, c: c)
    minor_of = (lambda r, c: c) if layout.major_is_row else (lambda r, c: r)
    ordered = sorted(
        ((major_of(r, c), minor_of(r, c), v) for (r, c), v in entries.items() if v != 0.0)
    )

    major_dim = nrows if layout.major_is_row else ncols
    pointers = [0] * (major_dim + 1)
    indices: list[int] = []
    values: list[float] = []
    for major, minor, value in ordered:
        pointers[major + 1] += 1
        indices.append(minor)
        values.append(value)
    for i in range(major_dim):
        pointers[i + 1] += pointers[i]
    return CompressedMatrix(nrows, ncols, layout, pointers, indices, values)


def matrix_from_arrays(
    nrows: int,
    ncols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    layout: Layout = Layout.CSR,
) -> CompressedMatrix:
    """Vectorised COO -> compressed constructor for large matrices.

    Equivalent to :func:`matrix_from_coo` (duplicates accumulated, zeros
    dropped) but implemented entirely with numpy so that the synthetic
    workload generator and the layout converter stay fast for matrices with
    millions of non-zeros.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if not (len(rows) == len(cols) == len(values)):
        raise ValueError("rows, cols and values must have the same length")
    if len(rows) and (
        rows.min() < 0 or rows.max() >= nrows or cols.min() < 0 or cols.max() >= ncols
    ):
        raise ValueError("coordinates outside the matrix shape")

    major = rows if layout.major_is_row else cols
    minor = cols if layout.major_is_row else rows
    major_dim = nrows if layout.major_is_row else ncols

    if len(values) == 0:
        return empty_matrix(nrows, ncols, layout)

    order = np.lexsort((minor, major))
    major, minor, values = major[order], minor[order], values[order]

    # Accumulate duplicates: group boundaries where (major, minor) changes.
    new_group = np.empty(len(major), dtype=bool)
    new_group[0] = True
    new_group[1:] = (major[1:] != major[:-1]) | (minor[1:] != minor[:-1])
    group_starts = np.flatnonzero(new_group)
    group_ids = np.cumsum(new_group) - 1
    summed = np.zeros(len(group_starts), dtype=np.float64)
    np.add.at(summed, group_ids, values)
    major = major[group_starts]
    minor = minor[group_starts]

    keep = summed != 0.0
    major, minor, summed = major[keep], minor[keep], summed[keep]

    counts = np.bincount(major, minlength=major_dim)
    pointers = np.zeros(major_dim + 1, dtype=np.int64)
    np.cumsum(counts, out=pointers[1:])
    # The lexsort + dedup above produce canonical storage (in-range, grouped,
    # strictly increasing within fibers), so re-validation is redundant.
    return CompressedMatrix(
        nrows, ncols, layout, pointers, minor, summed, validate=False
    )


def matrix_from_fibers(
    nrows: int,
    ncols: int,
    fibers: dict[int, Fiber],
    layout: Layout = Layout.CSR,
) -> CompressedMatrix:
    """Build a compressed matrix from a mapping of major index to fiber."""
    major_dim = nrows if layout.major_is_row else ncols
    minor_dim = ncols if layout.major_is_row else nrows
    pointers = [0] * (major_dim + 1)
    indices: list[int] = []
    values: list[float] = []
    for major in range(major_dim):
        fiber = fibers.get(major)
        if fiber is not None:
            for coord, value in fiber:
                if coord >= minor_dim:
                    raise ValueError(
                        f"coordinate {coord} outside minor dimension {minor_dim}"
                    )
                if value != 0.0:
                    indices.append(coord)
                    values.append(value)
        pointers[major + 1] = len(indices)
    return CompressedMatrix(nrows, ncols, layout, pointers, indices, values)


def csr_from_dense(dense: np.ndarray, tolerance: float = 0.0) -> CompressedMatrix:
    """Compress a dense array into CSR, dropping entries with ``|v| <= tolerance``."""
    return _from_dense(dense, Layout.CSR, tolerance)


def csc_from_dense(dense: np.ndarray, tolerance: float = 0.0) -> CompressedMatrix:
    """Compress a dense array into CSC, dropping entries with ``|v| <= tolerance``."""
    return _from_dense(dense, Layout.CSC, tolerance)


def _from_dense(dense: np.ndarray, layout: Layout, tolerance: float) -> CompressedMatrix:
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError("only 2-D arrays can be compressed")
    nrows, ncols = dense.shape
    triples = [
        (int(r), int(c), float(dense[r, c]))
        for r in range(nrows)
        for c in range(ncols)
        if abs(dense[r, c]) > tolerance
    ]
    return matrix_from_coo(nrows, ncols, triples, layout=layout)
