"""Synthetic sparse matrix generation.

The paper evaluates on the weights and activations of eight pruned DNN models
(Table 2).  We do not have the original pruned checkpoints, so — per the
substitution policy in DESIGN.md — we generate synthetic matrices that match
the published dimensions and sparsity ratios.  Several sparsity *patterns* are
provided because the relative behaviour of the dataflows depends not only on
the sparsity degree but also on how the non-zeros cluster:

* ``UNIFORM`` — every entry is independently non-zero with the target density
  (models activation sparsity from ReLU).
* ``ROW_SKEWED`` — per-row densities drawn from a power-law, modelling pruned
  weight matrices where some output channels keep many more weights.
* ``BANDED`` — non-zeros concentrated around the diagonal band (models
  depthwise/locally-connected structure).
* ``BLOCK`` — non-zeros grouped in dense blocks (models structured pruning).

Generation is fully vectorised (numpy) so that layers with millions of
non-zeros remain cheap to synthesise.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.sparse.formats import CompressedMatrix, Layout, empty_matrix, matrix_from_arrays


class SparsityPattern(enum.Enum):
    """How the non-zero coordinates of a generated matrix are distributed."""

    UNIFORM = "uniform"
    ROW_SKEWED = "row_skewed"
    BANDED = "banded"
    BLOCK = "block"


def random_sparse(
    nrows: int,
    ncols: int,
    density: float,
    *,
    pattern: SparsityPattern = SparsityPattern.UNIFORM,
    layout: Layout = Layout.CSR,
    seed: int | np.random.Generator = 0,
    value_scale: float = 1.0,
) -> CompressedMatrix:
    """Generate a random sparse matrix with (approximately) the given density.

    Parameters
    ----------
    nrows, ncols:
        Matrix shape.
    density:
        Target fraction of non-zero entries in ``[0, 1]``.
    pattern:
        Spatial distribution of the non-zeros; see :class:`SparsityPattern`.
    layout:
        Storage layout of the returned matrix.
    seed:
        Integer seed or an existing ``numpy`` generator, for reproducibility.
    value_scale:
        Standard deviation of the generated (normal) non-zero values.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be within [0, 1], got {density}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if nrows == 0 or ncols == 0 or density == 0.0:
        return empty_matrix(max(nrows, 0), max(ncols, 0), layout)

    if pattern is SparsityPattern.UNIFORM:
        rows, cols = _uniform_coords(nrows, ncols, density, rng)
    elif pattern is SparsityPattern.ROW_SKEWED:
        rows, cols = _row_skewed_coords(nrows, ncols, density, rng)
    elif pattern is SparsityPattern.BANDED:
        rows, cols = _banded_coords(nrows, ncols, density, rng)
    elif pattern is SparsityPattern.BLOCK:
        rows, cols = _block_coords(nrows, ncols, density, rng)
    else:  # pragma: no cover - exhaustive over enum
        raise ValueError(f"unknown pattern {pattern}")

    values = _nonzero_values(len(rows), rng, value_scale)
    return matrix_from_arrays(nrows, ncols, rows, cols, values, layout=layout)


def sparse_from_density_map(
    row_densities: np.ndarray,
    ncols: int,
    *,
    layout: Layout = Layout.CSR,
    seed: int | np.random.Generator = 0,
    value_scale: float = 1.0,
) -> CompressedMatrix:
    """Generate a matrix whose i-th row has (approximately) ``row_densities[i]`` density.

    Useful for reproducing layers where the sparsity is known to differ across
    output channels.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    row_densities = np.clip(np.asarray(row_densities, dtype=np.float64), 0.0, 1.0)
    nrows = len(row_densities)
    row_list: list[np.ndarray] = []
    col_list: list[np.ndarray] = []
    for r, rho in enumerate(row_densities):
        count = min(ncols, _stochastic_round(rho * ncols, rng))
        if count:
            cols = rng.choice(ncols, size=count, replace=False)
            row_list.append(np.full(count, r, dtype=np.int64))
            col_list.append(cols.astype(np.int64))
    if not row_list:
        return empty_matrix(nrows, ncols, layout)
    rows = np.concatenate(row_list)
    cols = np.concatenate(col_list)
    values = _nonzero_values(len(rows), rng, value_scale)
    return matrix_from_arrays(nrows, ncols, rows, cols, values, layout=layout)


# ----------------------------------------------------------------------
# Pattern implementations (each returns parallel row/col index arrays)
# ----------------------------------------------------------------------
def _uniform_coords(
    nrows: int, ncols: int, density: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    total = nrows * ncols
    count = max(0, min(_stochastic_round(density * total, rng), total))
    if count == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    flat = rng.choice(total, size=count, replace=False)
    return flat // ncols, flat % ncols


def _row_skewed_coords(
    nrows: int, ncols: int, density: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    # Pareto-distributed weights produce a heavy-tailed row occupancy, then
    # rescale so the expected overall density matches the request.
    weights = rng.pareto(1.5, size=nrows) + 0.05
    weights = weights / weights.sum()
    target_nnz = density * nrows * ncols
    per_row = np.minimum(ncols, np.round(weights * target_nnz).astype(np.int64))
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    for r in range(nrows):
        count = int(per_row[r])
        if count:
            rows_out.append(np.full(count, r, dtype=np.int64))
            cols_out.append(rng.choice(ncols, size=count, replace=False).astype(np.int64))
    if not rows_out:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(rows_out), np.concatenate(cols_out)


def _banded_coords(
    nrows: int, ncols: int, density: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    # Band half-width chosen so that the band area matches the target nnz.
    target_nnz = density * nrows * ncols
    per_row = max(1, int(math.ceil(target_nnz / max(nrows, 1))))
    half_width = max(1, per_row)
    scale = ncols / max(nrows, 1)
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    for r in range(nrows):
        center = int(r * scale)
        lo = max(0, center - half_width)
        hi = min(ncols, center + half_width + 1)
        candidates = np.arange(lo, hi, dtype=np.int64)
        keep = min(len(candidates), per_row)
        if keep:
            rows_out.append(np.full(keep, r, dtype=np.int64))
            cols_out.append(rng.choice(candidates, size=keep, replace=False))
    if not rows_out:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(rows_out), np.concatenate(cols_out)


def _block_coords(
    nrows: int, ncols: int, density: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    block = max(1, min(8, nrows, ncols))
    blocks_r = math.ceil(nrows / block)
    blocks_c = math.ceil(ncols / block)
    total_blocks = blocks_r * blocks_c
    keep_blocks = min(total_blocks, max(1, _stochastic_round(density * total_blocks, rng)))
    chosen = rng.choice(total_blocks, size=keep_blocks, replace=False)
    br = chosen // blocks_c
    bc = chosen % blocks_c
    offsets_r, offsets_c = np.meshgrid(np.arange(block), np.arange(block), indexing="ij")
    rows = (br[:, None, None] * block + offsets_r[None]).ravel()
    cols = (bc[:, None, None] * block + offsets_c[None]).ravel()
    keep = (rows < nrows) & (cols < ncols)
    return rows[keep].astype(np.int64), cols[keep].astype(np.int64)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _stochastic_round(x: float, rng: np.random.Generator) -> int:
    """Round ``x`` to an integer, randomly breaking the fractional part.

    Keeps the expected nnz equal to the target even for very small counts
    (important for the extremely sparse NLP layers in Table 2).
    """
    base = int(math.floor(x))
    frac = x - base
    return base + (1 if rng.random() < frac else 0)


def _nonzero_values(count: int, rng: np.random.Generator, scale: float) -> np.ndarray:
    """Draw ``count`` normal values, re-mapping exact zeros to ``scale``."""
    values = rng.normal(0.0, scale, size=count)
    values[values == 0.0] = scale
    return values
