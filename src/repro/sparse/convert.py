"""Format conversion helpers and the cost model of explicit conversions.

Flexagon's inter-layer dataflow mechanism (Section 3.3, Table 4) exists so
that the accelerator never has to pay for an explicit CSR ⇄ CSC conversion
between layers.  This module provides the software equivalents of that
conversion together with a cost model that the scheduler uses to account for
the traffic an explicit conversion would add when a layer chain picks an
illegal transition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.formats import (
    ELEMENT_BYTES,
    POINTER_BYTES,
    CompressedMatrix,
    Layout,
    matrix_from_coo,
)


def change_layout(matrix: CompressedMatrix, layout: Layout) -> CompressedMatrix:
    """Return ``matrix`` re-encoded in ``layout`` (no-op when already there)."""
    return matrix.with_layout(layout)


def transpose(matrix: CompressedMatrix) -> CompressedMatrix:
    """Return the logical transpose of ``matrix``.

    The storage vectors are reused unchanged; only the layout tag and the
    shape flip, which is why CSR and CSC share control logic in hardware.
    """
    return matrix.transposed()


def to_dense(matrix: CompressedMatrix) -> np.ndarray:
    """Expand a compressed matrix into a dense numpy array."""
    return matrix.to_dense()


@dataclass(frozen=True)
class ConversionCost:
    """Traffic and operation cost of an explicit format conversion.

    Attributes
    ----------
    element_reads:
        Elements read from the source representation.
    element_writes:
        Elements written into the destination representation.
    pointer_writes:
        Pointer-vector entries written.
    bytes_moved:
        Total bytes moved through memory for the conversion.
    """

    element_reads: int
    element_writes: int
    pointer_writes: int
    bytes_moved: int


def explicit_conversion_cost(matrix: CompressedMatrix) -> ConversionCost:
    """Model the cost of converting ``matrix`` to the opposite layout.

    An explicit conversion reads every element once, scatters it into the
    opposite-major buckets and writes every element plus a fresh pointer
    vector.  This is the cost Flexagon avoids via dataflow selection and that
    prior accelerators pay (e.g. MatRaptor-style converters referenced in the
    paper's related work).
    """
    element_reads = matrix.nnz
    element_writes = matrix.nnz
    pointer_writes = (matrix.minor_dim if matrix.layout.major_is_row else matrix.nrows) + 1
    # A conversion to the opposite layout creates `other_major_dim + 1` pointers.
    other_major = matrix.ncols if matrix.layout.major_is_row else matrix.nrows
    pointer_writes = other_major + 1
    bytes_moved = (
        (element_reads + element_writes) * ELEMENT_BYTES
        + pointer_writes * POINTER_BYTES
    )
    return ConversionCost(element_reads, element_writes, pointer_writes, bytes_moved)


def convert_with_cost(
    matrix: CompressedMatrix, layout: Layout
) -> tuple[CompressedMatrix, ConversionCost]:
    """Convert ``matrix`` to ``layout`` and report the explicit-conversion cost.

    When the matrix already uses ``layout`` the conversion is free, mirroring
    the "no explicit conversion" cells of Table 4.
    """
    if matrix.layout is layout:
        return matrix, ConversionCost(0, 0, 0, 0)
    converted = matrix_from_coo(
        matrix.nrows, matrix.ncols, list(matrix.iter_elements()), layout=layout
    )
    return converted, explicit_conversion_cost(matrix)
