"""Sparse matrix substrate used by every other subsystem in the repository.

The package implements the compressed formats the paper builds on (CSR and
CSC, Section 2.1), the *fiber* abstraction (a compressed row or column stored
as a coordinate-sorted list of ``(coordinate, value)`` elements), synthetic
sparse matrix generation with controllable sparsity patterns, format
conversion and a dense reference implementation used for validation.
"""

from repro.sparse.fiber import Element, Fiber
from repro.sparse.formats import (
    CompressedMatrix,
    Layout,
    csc_from_dense,
    csr_from_dense,
    empty_matrix,
    matrix_from_arrays,
    matrix_from_coo,
    matrix_from_fibers,
)
from repro.sparse.convert import (
    change_layout,
    to_dense,
    transpose,
)
from repro.sparse.generate import (
    SparsityPattern,
    random_sparse,
    sparse_from_density_map,
)
from repro.sparse.reference import (
    dense_matmul,
    matrices_allclose,
    spgemm_reference,
)

__all__ = [
    "Element",
    "Fiber",
    "CompressedMatrix",
    "Layout",
    "csr_from_dense",
    "csc_from_dense",
    "empty_matrix",
    "matrix_from_arrays",
    "matrix_from_coo",
    "matrix_from_fibers",
    "change_layout",
    "to_dense",
    "transpose",
    "SparsityPattern",
    "random_sparse",
    "sparse_from_density_map",
    "dense_matmul",
    "spgemm_reference",
    "matrices_allclose",
]
