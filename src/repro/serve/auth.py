"""API-key authentication for the serving front-end.

The server never stores a secret: ``REPRO_API_KEYS`` carries a
comma-separated list of ``label:sha256hex`` entries (the *hash* of each
key, hex-encoded; a bare hash gets a positional label), and a client
presents the raw key as an ``Authorization: Bearer <key>`` header or the
``X-Repro-Api-Key`` header.  The presented key is hashed and compared in
constant time against every registered digest.

Authentication is strictly opt-in: with ``REPRO_API_KEYS`` unset the
registry is *open* and every request runs as the anonymous principal —
exactly today's behaviour.  Once any key is registered, every non-fabric
``/v1/*`` route requires one (``401`` otherwise); ``/healthz`` stays open
so liveness probes never need credentials, and the fabric routes keep
their own shared-token gate (:mod:`repro.fabric.api`).

Generate a registry entry with::

    python -c "import hashlib,secrets; k=secrets.token_hex(16); \\
               print(k, hashlib.sha256(k.encode()).hexdigest())"
    export REPRO_API_KEYS="alice:<that hash>"
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro import knobs

#: Headers a client may present its key in (lowercased, post-parse).
BEARER_HEADER = "authorization"
KEY_HEADER = "x-repro-api-key"


class AuthError(Exception):
    """A request that failed authentication (the router's ``401``)."""


@dataclass(frozen=True)
class Principal:
    """Who a request runs as — the admission policies key on ``key_id``."""

    key_id: str
    authenticated: bool = False


#: The principal of every request against an open (keyless) server.
ANONYMOUS = Principal("anonymous", authenticated=False)


def hash_key(secret: str) -> str:
    """The stored form of an API key (SHA-256 hex of the raw key)."""
    return hashlib.sha256(secret.encode("utf-8")).hexdigest()


def _presented_key(headers: dict[str, str]) -> str | None:
    bearer = headers.get(BEARER_HEADER, "")
    if bearer.lower().startswith("bearer "):
        return bearer[len("Bearer ") :].strip() or None
    return headers.get(KEY_HEADER, "").strip() or None


class KeyRegistry:
    """The set of accepted key digests, labelled for quota accounting."""

    def __init__(self, entries: dict[str, str]) -> None:
        #: digest (sha256 hex) -> label.
        self._entries = dict(entries)

    @classmethod
    def from_env(cls) -> "KeyRegistry":
        """Parse ``REPRO_API_KEYS``; malformed entries fail at startup.

        Each entry is ``label:sha256hex`` or a bare 64-char hex digest —
        never a raw key, so a leaked environment cannot replay clients.
        """
        text = knobs.get("REPRO_API_KEYS")
        entries: dict[str, str] = {}
        if not text:
            return cls(entries)
        for index, chunk in enumerate(text.split(",")):
            chunk = chunk.strip()
            if not chunk:
                continue
            label, sep, digest = chunk.rpartition(":")
            if not sep:
                label, digest = f"key{index}", chunk
            digest = digest.strip().lower()
            if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
                raise ValueError(
                    "REPRO_API_KEYS entries must be label:sha256hex "
                    f"(got {chunk!r}; store the hash, never the raw key)"
                )
            entries[digest] = label.strip() or f"key{index}"
        return cls(entries)

    @property
    def open(self) -> bool:
        """No keys registered: every request is the anonymous principal."""
        return not self._entries

    def authenticate(self, headers: dict[str, str]) -> Principal:
        """The principal behind one request's headers.

        Raises :class:`AuthError` when keys are configured and the request
        carries none, or an unknown one.
        """
        if self.open:
            return ANONYMOUS
        presented = _presented_key(headers)
        if presented is None:
            raise AuthError(
                "API key required (Authorization: Bearer <key> or X-Repro-Api-Key)"
            )
        digest = hash_key(presented)
        for known, label in self._entries.items():
            # compare_digest over every entry: lookup time is independent
            # of where (or whether) the digest matches.
            if hmac.compare_digest(digest, known):
                return Principal(label, authenticated=True)
        raise AuthError("unknown API key")
