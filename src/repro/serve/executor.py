"""Background job manager of the serving front-end.

The split the server is built around: a request whose every simulation job
is already in the result cache is **warm** and is answered in the request
handler (zero engine executions — the collation work left is milliseconds);
anything else is **cold** and runs as a background :class:`ServeJob`, with
the client polling a ``/v1/jobs/<key>`` URL that streams the runner's
``on_result`` progress until the finished body is ready.

Concurrent identical requests are **coalesced**: jobs are registered under
the request's content key (:meth:`FigureQuery.key` / :meth:`SweepSpec.key`),
so N clients asking for the same cold figure share one in-flight
computation and one result.  Requests that are distinct but overlap (fig12
and fig18 both need the end-to-end grid) still compute once, because grid
computation is serialized and memoized inside the shared
:class:`~repro.api.session.Session` — the second job blocks on the
session's grid lock and then renders from the memo.

Everything here is thread-aware by construction: job state is mutated from
the background thread that runs the simulation and read from the event
loop, so each job guards its fields with a lock and exposes an immutable
:meth:`~ServeJob.snapshot`.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor

from repro import knobs, resilience
from repro.api.requests import FigureQuery, SweepSpec
from repro.api.session import Session
from repro.dse.explore import DseSpec
from repro.runtime import SimJob

#: Job lifecycle states (the ``status`` field of the job envelope).
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Finished jobs kept for late pollers before the oldest are dropped.
FINISHED_JOBS_KEPT = 64

#: Width of the manager's dedicated job thread pool.  Cold jobs must not
#: run on the event loop's default executor: that pool is shared with the
#: warm-path ``asyncio.to_thread`` renders and the warmth probes, which a
#: few long simulations would otherwise starve.
MAX_CONCURRENT_JOBS = 4

#: ``Retry-After`` a shed cold request is told to wait: by then at least
#: one pool slot has usually turned over on the micro grids, and a client
#: that retries is re-admitted or re-shed — never queued invisibly.
SHED_RETRY_AFTER = 1.0


class PoolSaturated(RuntimeError):
    """Cold admission refused: the job pool is at its depth bound.

    The router maps this to ``503`` + ``Retry-After`` — the load-shedding
    contract.  Shedding beats queueing because every accepted cold job
    holds memory and a progress registration until some client collects
    it; an unbounded backlog is how an overloaded server turns into an
    unresponsive one.
    """

    def __init__(self, depth: int) -> None:
        super().__init__(f"job pool saturated ({depth} jobs in flight)")
        self.depth = depth
        self.retry_after = SHED_RETRY_AFTER


class Draining(RuntimeError):
    """Cold admission refused: the server is shutting down.

    Warm answers and job polls keep flowing while the drain window runs;
    only *new* simulation work is turned away (``503``), so clients can
    still collect finished results from a terminating replica.
    """

    def __init__(self) -> None:
        super().__init__("server is draining; no new cold work is admitted")
        self.retry_after = resilience.drain_seconds()


class ServeJob:
    """One background computation, addressed by its request's content key."""

    def __init__(self, key: str, kind: str, request, total: int) -> None:
        #: Request content key (also the job's URL segment).
        self.key = key
        #: ``"figure"`` or ``"sweep"``.
        self.kind = kind
        #: The :class:`FigureQuery` / :class:`SweepSpec` being answered.
        self.request = request
        self._lock = threading.Lock()
        self._status = PENDING  # guarded-by: _lock
        self._done = 0  # guarded-by: _lock
        self._total = total  # guarded-by: _lock
        self._error: str | None = None  # guarded-by: _lock
        #: Finished response body (the same bytes the warm path serves).
        self.body: bytes | None = None
        self.etag: str | None = None
        #: Engine-grid jobs this computation actually executed.
        self.executed = 0
        #: Set once the job is done or failed (tests and benches wait on it).
        self.finished = threading.Event()

    # -- mutation (background thread) ----------------------------------
    def progress(self, done: int, total: int) -> None:
        """Runner ``on_result`` callback: stream live (done, total)."""
        with self._lock:
            self._status = RUNNING
            self._done = done
            self._total = total

    def start(self) -> None:
        with self._lock:
            if self._status == PENDING:
                self._status = RUNNING

    def finish(self, body: bytes, etag: str, executed: int) -> None:
        with self._lock:
            self._status = DONE
            self._done = self._total
            self.body = body
            self.etag = etag
            self.executed = executed
        self.finished.set()

    def fail(self, message: str) -> None:
        with self._lock:
            self._status = FAILED
            self._error = message
        self.finished.set()

    # -- observation (event loop) --------------------------------------
    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    def snapshot(self) -> dict:
        """Consistent, JSON-safe view of the job's state."""
        with self._lock:
            record: dict = {
                "key": self.key,
                "request_kind": self.kind,
                "request": self.request.to_record(),
                "status": self._status,
                "done": self._done,
                "total": self._total,
            }
            if self._error is not None:
                record["error"] = self._error
            return record


class _ExecutionCounter:
    """Per-call executed-job counter fed by run-progress callbacks.

    The runner's ``on_result`` fires once after the cache scan and then once
    per job executed in *that* ``run`` call, so counting invocations past
    the first measures this request's own executions — unlike a delta over
    the session-wide :class:`RunnerStats`, which concurrent requests on the
    same session would corrupt.
    """

    def __init__(self, forward=None) -> None:
        self.executed = 0
        self._scan_seen = False
        self._forward = forward

    def __call__(self, done: int, total: int) -> None:
        if self._scan_seen:
            self.executed += 1
        else:
            self._scan_seen = True
        if self._forward is not None:
            self._forward(done, total)


class JobManager:
    """Registry of background jobs over one shared :class:`Session`."""

    def __init__(self, session: Session, max_depth: int | None = None) -> None:
        self.session = session
        #: Unfinished jobs admitted before cold requests shed with 503.
        #: Deeper than the thread pool on purpose: a short queue absorbs
        #: bursts, the bound keeps it from becoming an invisible backlog.
        self.max_depth = (
            max_depth if max_depth is not None else knobs.get("REPRO_JOB_POOL_DEPTH")
        )
        self._jobs: dict[str, ServeJob] = {}  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=MAX_CONCURRENT_JOBS, thread_name_prefix="repro-serve-job"
        )

    # ------------------------------------------------------------------
    # Warmth probe
    # ------------------------------------------------------------------
    def classify(
        self, request: FigureQuery | SweepSpec | DseSpec
    ) -> tuple[list[SimJob], int]:
        """``(still-missing jobs, full grid size)`` for one request.

        No missing jobs means warm: every needed job is memoized or already
        in the result cache, so the request can be answered synchronously
        with zero engine executions.  The probe never opens a cache entry —
        :meth:`ResultCache.missing` works from shard listings alone.  The
        grid size is what a cold job advertises as its progress ``total``:
        the runner's ``on_result`` counts cache hits as instantly done, so
        the denominator must be the whole grid, not just the misses.
        """
        jobs = self.session.required_jobs(request)
        if not jobs:
            return [], 0
        cache = self.session.cache
        if cache is None:
            return jobs, len(jobs)
        keys = [job.key() for job in jobs]
        absent = set(cache.missing(keys))
        return [job for job, key in zip(jobs, keys) if key in absent], len(jobs)

    # ------------------------------------------------------------------
    # Submission + coalescing
    # ------------------------------------------------------------------
    def get(self, key: str) -> ServeJob | None:
        with self._lock:
            return self._jobs.get(key)

    def coalesce(self, key: str, kind: str, request, total: int) -> tuple[ServeJob, bool]:
        """The in-flight job for ``key``, creating one if none is running.

        Returns ``(job, created)``; ``created`` tells the caller to actually
        start the computation.  A finished job under the same key is only
        replaced because the caller just re-classified the request as cold
        (e.g. the cache was cleared since), so a fresh run is wanted.

        Admission happens here, under the same lock that registers the job,
        so two racing requests can never both squeeze past the depth bound:
        creating a new job raises :class:`Draining` during shutdown and
        :class:`PoolSaturated` past ``max_depth``.  Joining an existing job
        is always allowed — coalescing adds no work.
        """
        with self._lock:
            job = self._jobs.get(key)
            if job is not None and not job.finished.is_set():
                return job, False
            if self._draining:
                raise Draining()
            depth = sum(
                1 for other in self._jobs.values() if not other.finished.is_set()
            )
            if depth >= self.max_depth:
                raise PoolSaturated(depth)
            job = ServeJob(key, kind, request, total)
            self._jobs[key] = job
            self._evict_finished_locked()
            return job, True

    # ------------------------------------------------------------------
    # Graceful shutdown
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def begin_drain(self) -> None:
        """Refuse new cold work from now on (idempotent).

        Warm renders and job polls are untouched: the drain contract is
        "finish what you accepted, hand out what you finished, take
        nothing new".
        """
        with self._lock:
            self._draining = True

    def drain(self, timeout_seconds: float) -> bool:
        """Wait up to ``timeout_seconds`` for in-flight jobs to finish.

        Returns ``True`` when every job completed inside the window.  Jobs
        still running after the deadline are abandoned to :meth:`close`
        (a simulation cannot be interrupted mid-flight anyway).
        """
        deadline = resilience.Deadline.after(timeout_seconds)
        with self._lock:
            unfinished = [
                job for job in self._jobs.values() if not job.finished.is_set()
            ]
        for job in unfinished:
            if not job.finished.wait(max(0.0, deadline.remaining())):
                return False
        return True

    def _evict_finished_locked(self) -> None:
        """Drop the oldest finished jobs past the keep bound (lock held)."""
        finished = [k for k, job in self._jobs.items() if job.finished.is_set()]
        for key in finished[: max(0, len(finished) - FINISHED_JOBS_KEPT)]:
            del self._jobs[key]

    # ------------------------------------------------------------------
    # Execution (on the manager's dedicated thread pool)
    # ------------------------------------------------------------------
    def start(self, job: ServeJob, etag: str) -> Future:
        """Dispatch one created job onto the manager's thread pool."""
        return self._pool.submit(self.run_job, job, etag)

    def run_job(self, job: ServeJob, etag: str) -> None:
        """Compute the job's response body; never raises (fails the job)."""
        job.start()
        try:
            body, executed = self.render(job.request, on_result=job.progress)
        except Exception as error:  # the failure belongs to the poller
            job.fail(f"{type(error).__name__}: {error}")
            return
        job.finish(body, etag, executed)

    def render(self, request, on_result=None) -> tuple[bytes, int]:
        """The response body for ``request``, plus jobs executed to build it.

        The body is byte-identical to ``python -m repro figure|sweep``
        output: the canonical JSON of the response record plus a trailing
        newline.  The executed count comes from this call's own progress
        stream (:class:`_ExecutionCounter`), so concurrent requests on the
        shared session can never bleed into each other's telemetry.
        """
        counter = _ExecutionCounter(on_result)
        if isinstance(request, SweepSpec):
            payload = self.session.sweep(request, on_result=counter).to_json()
        elif isinstance(request, DseSpec):
            payload = self.session.dse(request, on_result=counter).to_json()
        else:
            payload = self.session.figure(request, on_result=counter).to_json()
        return (payload + "\n").encode("utf-8"), counter.executed

    def close(self) -> None:
        """Stop accepting jobs and drop queued ones.

        Running jobs finish on their own threads (a simulation cannot be
        interrupted mid-flight), but anything still queued is cancelled —
        otherwise the pool's non-daemon workers would drain the whole queue
        before interpreter exit lets go.
        """
        self._pool.shutdown(wait=False, cancel_futures=True)
