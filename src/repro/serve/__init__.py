"""``repro.serve`` — the async HTTP/JSON serving front-end.

A stdlib-only (``asyncio``) server over the :mod:`repro.api` facade: figure
and sweep requests arrive as HTTP, cache-warm ones are answered in
milliseconds with zero engine executions, and cold ones run as background
jobs behind pollable ``202``s.  Start it with ``python -m repro serve`` or
embed it::

    from repro.api import Session
    from repro.serve import BackgroundServer

    with BackgroundServer(Session()) as server:
        print(server.url)  # http://127.0.0.1:<port>

See :mod:`repro.serve.app` for the endpoint table and
:mod:`repro.serve.wire` for the wire formats and ETag semantics.
"""

from repro.serve.app import BackgroundServer, ServeApp, run_server, start_server
from repro.serve.executor import DONE, FAILED, PENDING, RUNNING, JobManager, ServeJob

__all__ = [
    "BackgroundServer",
    "ServeApp",
    "run_server",
    "start_server",
    "JobManager",
    "ServeJob",
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
]
