"""Per-key admission policies: rate limits, cold-job quotas, shedding.

Three independent, individually opt-in policies compose into the
:class:`AdmissionControl` the router consults:

* :class:`SlidingWindow` — at most ``REPRO_RATE_LIMIT`` figure/sweep
  requests per key per ``REPRO_RATE_WINDOW`` seconds, tracked in memory
  as an event deque per key.
* :class:`ColdQuota` — at most ``REPRO_COLD_QUOTA`` *created* cold jobs
  per key per UTC day, backed by an on-disk JSON counter under
  ``REPRO_QUOTA_DIR`` so the budget survives server restarts.  Warm
  (cache-served) answers are never charged, and a request that coalesces
  onto an already-running job is refunded — the quota prices simulation
  work, not HTTP traffic.
* load shedding lives in :class:`~repro.serve.executor.JobManager`
  (bounded job-pool depth), not here — the router maps its refusal to the
  same ``Retry-After``-carrying :class:`Decision` shape.

Every denial is a :class:`Decision` with ``retry_after`` seconds and a
``reset_at`` epoch timestamp, which the router surfaces as a ``429`` with
a ``Retry-After`` header — clients can back off precisely instead of
guessing.  All clocks here are wall time (``time.time``): the numbers are
client-facing.  The counter store assumes one coordinator process per
quota directory (the in-process lock serializes writers; there is no
cross-process file lock).
"""

from __future__ import annotations

import calendar
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro import knobs
from repro.serve.auth import KeyRegistry, Principal

#: Seconds per UTC day (the cold-quota accounting period).
DAY_SECONDS = 86400


@dataclass(frozen=True)
class Decision:
    """One admission verdict; denials say when to come back."""

    allowed: bool
    #: Seconds after which a retry can succeed (denials only).
    retry_after: float = 0.0
    #: Epoch timestamp at which the limit window resets (denials only).
    reset_at: float = 0.0
    reason: str = ""


#: The verdict of every disabled policy.
ADMITTED = Decision(True)


class SlidingWindow:
    """Per-key sliding-window rate limiter (``limit`` per ``window`` s)."""

    def __init__(self, limit: int | None, window_seconds: float) -> None:
        self.limit = limit
        self.window_seconds = window_seconds
        self._lock = threading.Lock()
        self._events: dict[str, deque[float]] = {}  # guarded-by: _lock

    def admit(self, key: str, *, now: float | None = None) -> Decision:
        """Record-and-check one request; denials do not consume an event."""
        if self.limit is None:
            return ADMITTED
        stamp = time.time() if now is None else now
        horizon = stamp - self.window_seconds
        with self._lock:
            events = self._events.setdefault(key, deque())
            while events and events[0] <= horizon:
                events.popleft()
            if len(events) >= self.limit:
                reset_at = events[0] + self.window_seconds
                return Decision(
                    False,
                    retry_after=max(0.0, reset_at - stamp),
                    reset_at=reset_at,
                    reason=(
                        f"rate limit exceeded ({self.limit} requests per "
                        f"{self.window_seconds:g}s)"
                    ),
                )
            events.append(stamp)
        return ADMITTED


class ColdQuota:
    """Daily cold-job budget per key, persisted as on-disk counters.

    One JSON file per UTC day (``quota-YYYYMMDD.json``) maps key labels to
    jobs charged; writes go through an atomic temp-file replace so a
    killed server never leaves a torn counter.  Old day files are inert
    and tiny; prune them like logs.
    """

    def __init__(self, directory: str | os.PathLike, limit: int | None) -> None:
        self.directory = os.fspath(directory)
        self.limit = limit
        self._lock = threading.Lock()

    def _day_path(self, stamp: float) -> tuple[str, float]:
        """The counter file for ``stamp``'s UTC day, and the epoch second
        that day's budget resets at (the next UTC midnight)."""
        day = time.gmtime(stamp)
        name = f"quota-{day.tm_year:04d}{day.tm_mon:02d}{day.tm_mday:02d}.json"
        midnight = calendar.timegm(
            (day.tm_year, day.tm_mon, day.tm_mday, 0, 0, 0)
        )
        return os.path.join(self.directory, name), float(midnight + DAY_SECONDS)

    def _load(self, path: str) -> dict[str, int]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return {}
        except (OSError, ValueError):
            # A torn or foreign file must not brick admission; a fresh
            # counter errs in the client's favour.
            return {}
        if not isinstance(record, dict):
            return {}
        return {
            key: int(value)
            for key, value in record.items()
            if isinstance(key, str) and isinstance(value, int)
        }

    def _store(self, path: str, record: dict[str, int]) -> None:
        os.makedirs(self.directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
        os.replace(tmp, path)

    def charge(self, key: str, *, now: float | None = None) -> Decision:
        """Spend one cold job from ``key``'s budget for today."""
        if self.limit is None:
            return ADMITTED
        stamp = time.time() if now is None else now
        path, reset_at = self._day_path(stamp)
        with self._lock:
            record = self._load(path)
            spent = record.get(key, 0)
            if spent >= self.limit:
                return Decision(
                    False,
                    retry_after=max(0.0, reset_at - stamp),
                    reset_at=reset_at,
                    reason=(
                        f"daily cold-job quota exhausted "
                        f"({self.limit} per key per UTC day)"
                    ),
                )
            record[key] = spent + 1
            self._store(path, record)
        return ADMITTED

    def refund(self, key: str, *, now: float | None = None) -> None:
        """Return one charged job (the request coalesced or was shed)."""
        if self.limit is None:
            return
        stamp = time.time() if now is None else now
        path, _reset_at = self._day_path(stamp)
        with self._lock:
            record = self._load(path)
            spent = record.get(key, 0)
            if spent <= 0:
                return
            record[key] = spent - 1
            self._store(path, record)


class AdmissionControl:
    """The router's one-stop admission surface: auth + rate + quota."""

    def __init__(
        self,
        registry: KeyRegistry,
        window: SlidingWindow,
        cold_quota: ColdQuota,
    ) -> None:
        self.registry = registry
        self.window = window
        self.cold_quota = cold_quota

    @classmethod
    def from_env(cls) -> "AdmissionControl":
        return cls(
            registry=KeyRegistry.from_env(),
            window=SlidingWindow(
                knobs.get("REPRO_RATE_LIMIT"), knobs.get("REPRO_RATE_WINDOW")
            ),
            cold_quota=ColdQuota(
                knobs.get("REPRO_QUOTA_DIR"), knobs.get("REPRO_COLD_QUOTA")
            ),
        )

    def authenticate(self, headers: dict[str, str]) -> Principal:
        return self.registry.authenticate(headers)

    def admit_request(self, principal: Principal, *, now: float | None = None) -> Decision:
        """Rate-limit gate on every figure/sweep request (warm or cold)."""
        return self.window.admit(principal.key_id, now=now)

    def admit_cold(self, principal: Principal, *, now: float | None = None) -> Decision:
        """Quota gate charged when a request is about to create a cold job."""
        return self.cold_quota.charge(principal.key_id, now=now)

    def refund_cold(self, principal: Principal) -> None:
        """Undo one :meth:`admit_cold` charge (coalesced or shed request)."""
        self.cold_quota.refund(principal.key_id)
