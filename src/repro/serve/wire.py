"""Wire-format serializers shared by the HTTP endpoints and the CLI.

Every machine-readable body the serving front-end emits — and the
``python -m repro cache stats --json`` / ``list --json`` CLI outputs — is
built here, so dashboards scraping the CLI and clients of ``/v1/...`` read
one format.  Records follow the same conventions as the response records of
:mod:`repro.api.responses`: a ``kind`` discriminator, the
:data:`~repro.metrics.results.RESULT_SCHEMA_VERSION` stamp, and canonical
(sorted-key, strict) JSON so equal records are byte-identical on the wire.

The ``ETag`` story lives here too.  Responses are deterministic functions of
(request, settings, schema versions): the result cache is content-addressed
by everything a simulation depends on, so the bytes a figure/sweep endpoint
returns can only change when the request, the settings, or a schema version
changes.  :func:`request_etag` therefore derives a strong validator from
exactly those inputs — computable *before* any simulation runs, stable
across server instances and restarts, and honoured with ``304`` on
``If-None-Match`` without touching the cache at all.
"""

from __future__ import annotations

import hashlib
import json

from repro.api.figures import FIGURES
from repro.api.responses import canonical_json
from repro.api.requests import SWEEPABLE_DESIGNS, SweepSpec
from repro.dse.designs import design_point_names, get_design_point
from repro.dse.explore import DseSpec
from repro.dse.workloads import get_workload, workload_names
from repro.experiments.settings import ExperimentSettings
from repro.metrics.results import RESULT_SCHEMA_VERSION
from repro.runtime import CACHE_SCHEMA_VERSION
from repro.workloads.models import MODEL_REGISTRY
from repro.workloads.representative import representative_layer_names


#: Response header carrying a raw cache entry's SHA-256 (the fabric's
#: ``/v1/cache/entry/<key>`` replication route); the ``cache pull`` client
#: verifies the body against it before storing anything.
CONTENT_DIGEST_HEADER = "X-Repro-Content-SHA256"


def dump_body(record: dict) -> bytes:
    """Encode one record as a canonical JSON body (newline-terminated,
    exactly like the CLI's payloads, so the two surfaces stay comparable
    byte for byte)."""
    return (canonical_json(record) + "\n").encode("utf-8")


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
def health_record() -> dict:
    """Body of ``GET /healthz``."""
    return {"kind": "health", "schema": RESULT_SCHEMA_VERSION, "status": "ok"}


def figures_record() -> dict:
    """Body of ``GET /v1/figures``: every answerable figure/table."""
    return {
        "kind": "figures",
        "schema": RESULT_SCHEMA_VERSION,
        "figures": [
            {"figure": d.figure, "title": d.title, "experiment": d.kind}
            for d in FIGURES.values()
        ],
    }


def catalog_record() -> dict:
    """Body of ``python -m repro list --json``: the full request vocabulary."""
    return {
        "kind": "catalog",
        "schema": RESULT_SCHEMA_VERSION,
        "figures": figures_record()["figures"],
        "models": [
            {"model": short_name, "name": model.name, "layers": model.num_layers}
            for short_name, model in MODEL_REGISTRY.items()
        ],
        "layers": representative_layer_names(),
        "designs": list(SWEEPABLE_DESIGNS),
        "workloads": [
            get_workload(name).to_record() for name in workload_names()
        ],
        "design_points": [
            {
                "name": name,
                "family": get_design_point(name).family,
                "accelerator": get_design_point(name).accelerator,
            }
            for name in design_point_names()
        ],
    }


def cache_stats_record(report: dict | None) -> dict:
    """Normalise a cache stats report to the wire form.

    ``report`` is :meth:`ResultCache.stats_report` output, optionally with
    the ``"runner"`` counters :meth:`Session.cache_stats` merges in (the
    server has a session; the bare CLI does not).  ``None`` — a session
    explicitly running without a cache — serializes as ``"cache": null``.
    """
    record: dict = {"kind": "cache_stats", "schema": RESULT_SCHEMA_VERSION}
    if report is None:
        record["cache"] = None
        record["runner"] = None
        return record
    cache = dict(report)
    record["runner"] = cache.pop("runner", None)
    record["cache"] = cache
    return record


def error_record(status: int, message: str) -> dict:
    """Body of every non-2xx JSON response."""
    return {
        "kind": "error",
        "schema": RESULT_SCHEMA_VERSION,
        "status": status,
        "error": message,
    }


def limit_record(
    status: int, message: str, retry_after: float, reset_at: float | None = None
) -> dict:
    """Body of a ``429``/``503`` admission refusal.

    Besides the standard error fields it carries machine-readable backoff
    guidance: ``retry_after`` (seconds, mirroring the ``Retry-After``
    header without its integer rounding) and, when the refusing policy has
    a window boundary, the ``reset_at`` epoch timestamp it resets at.
    """
    record = error_record(status, message)
    record["retry_after"] = round(max(0.0, retry_after), 3)
    if reset_at:
        record["reset_at"] = round(reset_at, 3)
    return record


def job_record(snapshot: dict) -> dict:
    """Status envelope of one background job (``202`` bodies and polls).

    ``snapshot`` is :meth:`repro.serve.executor.ServeJob.snapshot` output;
    this stamps the schema and the poll URL onto it.
    """
    return {
        "kind": "job",
        "schema": RESULT_SCHEMA_VERSION,
        "url": f"/v1/jobs/{snapshot['key']}",
        **snapshot,
    }


# ----------------------------------------------------------------------
# Requests off the wire
# ----------------------------------------------------------------------
def sweep_spec_from_payload(payload: bytes) -> SweepSpec:
    """Parse a ``POST /v1/sweep`` body into a :class:`SweepSpec`.

    Accepts a partial record — absent fields take the spec's defaults, so
    ``{"layers": ["A2"]}`` is a valid body — and reports unknown fields and
    malformed JSON as :class:`ValueError` (the router's ``400``).
    """
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"malformed JSON body: {error}") from None
    if not isinstance(record, dict):
        raise ValueError("sweep body must be a JSON object (a SweepSpec record)")
    fields = dict(record)
    known = set(SweepSpec.__dataclass_fields__)
    unknown = sorted(set(fields) - known)
    if unknown:
        raise ValueError(
            f"unknown sweep field(s) {', '.join(unknown)}; expected a subset "
            f"of {sorted(known)}"
        )
    overrides = fields.get("config_overrides")
    if isinstance(overrides, list):
        try:
            fields["config_overrides"] = [tuple(pair) for pair in overrides]
        except TypeError:
            raise ValueError(
                "config_overrides must be a list of [name, value] pairs"
            ) from None
    try:
        return SweepSpec(**fields)
    except TypeError as error:
        # A wrong-typed field (e.g. "layers": 3) is a client error like any
        # other validation failure, not a server fault.
        raise ValueError(f"malformed sweep field: {error}") from None


def dse_spec_from_payload(payload: bytes) -> DseSpec:
    """Parse a ``POST /v1/dse`` body into a :class:`DseSpec`.

    Accepts a partial record — absent fields take the spec's defaults, so
    ``{"workloads": ["xf-prune-80"]}`` is a valid body — and reports unknown
    fields and malformed JSON as :class:`ValueError` (the router's ``400``).
    """
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"malformed JSON body: {error}") from None
    if not isinstance(record, dict):
        raise ValueError("dse body must be a JSON object (a DseSpec record)")
    fields = dict(record)
    known = set(DseSpec.__dataclass_fields__)
    unknown = sorted(set(fields) - known)
    if unknown:
        raise ValueError(
            f"unknown dse field(s) {', '.join(unknown)}; expected a subset "
            f"of {sorted(known)}"
        )
    try:
        return DseSpec(**fields)
    except TypeError as error:
        raise ValueError(f"malformed dse field: {error}") from None


# ----------------------------------------------------------------------
# ETags
# ----------------------------------------------------------------------
def settings_key(settings: ExperimentSettings) -> str:
    """Stable content hash of one settings value (an ETag ingredient)."""
    encoded = json.dumps(settings.to_record(), sort_keys=True)
    return hashlib.sha256(encoded.encode()).hexdigest()


def request_etag(kind: str, request_key: str, settings: ExperimentSettings) -> str:
    """Strong ETag of the response to one (request, settings) pair.

    Hashes the request key with both schema versions —
    :data:`RESULT_SCHEMA_VERSION` pins the wire layout,
    :data:`CACHE_SCHEMA_VERSION` pins the simulation semantics the cached
    state was produced under — and the settings, so the validator changes
    exactly when the bytes can.
    """
    encoded = json.dumps(
        {
            "kind": kind,
            "request": request_key,
            "result_schema": RESULT_SCHEMA_VERSION,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "settings": settings_key(settings),
        },
        sort_keys=True,
    )
    return '"' + hashlib.sha256(encoded.encode()).hexdigest()[:32] + '"'


def etag_matches(if_none_match: str | None, etag: str) -> bool:
    """``If-None-Match`` header semantics: comma list, ``*``, weak prefixes."""
    if not if_none_match:
        return False
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate == "*":
            return True
        if candidate.removeprefix("W/") == etag:
            return True
    return False
