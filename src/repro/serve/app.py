"""The async HTTP/JSON application: routes onto one shared ``Session``.

Endpoints (all JSON; see the README's "Serving" section for curl examples):

============================  =================================================
``GET /healthz``              liveness probe
``GET /v1/figures``           every answerable figure/table
``GET /v1/figure/<id>``       one figure's rows — ``200`` warm, ``202`` cold
``POST /v1/sweep``            a ``SweepSpec`` record — ``200`` warm, ``202`` cold
``POST /v1/dse``              a ``DseSpec`` record — ``200`` warm, ``202`` cold
``GET /v1/dse/<key>``         a campaign's cached Pareto report (by spec key)
``GET /v1/jobs/<key>``        poll a background job — ``202`` running, ``200`` done
``GET /v1/cache/stats``       result-cache + runner telemetry
``POST /v1/work/*``           the fabric's claim/heartbeat/complete protocol*
``GET /v1/work/stats``        work-queue telemetry*
``GET /v1/cache/keys``        cache key inventory (replication)*
``GET /v1/cache/entry/<key>`` one raw entry, digest-verified (replication)*
============================  =================================================

The starred ``/v1/work`` and cache-replication routes
(:mod:`repro.fabric.api`) are mounted **only when the session's runner is
in remote pool mode** — run the server with ``REPRO_POOL=remote`` and
point ``python -m repro worker <url>`` processes at the same port; cold
figure/sweep jobs then execute on the workers while ``/v1/jobs`` progress
streams through from their remote completions.  A plain query server never
carries them: work uploads are pickled payloads, so the fabric surface is
strictly opt-in, and exposing it beyond loopback requires the shared
``REPRO_FABRIC_TOKEN`` secret (see :mod:`repro.fabric.api`).

Request handling never blocks the event loop on simulation: warm responses
are collated on a worker thread (``asyncio.to_thread``) and cold requests
run as background :class:`~repro.serve.executor.ServeJob` tasks.  Responses
carry a strong ``ETag`` derived from (request key, schema versions,
settings) — see :func:`repro.serve.wire.request_etag` — and
``If-None-Match`` is answered with ``304`` before any work happens.  The
``X-Repro-Jobs-Executed`` header reports how many simulation jobs a response
actually executed; a warm hit reports ``0``.

**Admission control** (see the README's "Operations & resilience"): every
non-fabric ``/v1/*`` route authenticates against the optional
``REPRO_API_KEYS`` registry (:mod:`repro.serve.auth`; ``401`` on failure,
open when unset), figure/sweep requests pass the per-key rate limit and —
when about to create a cold job — the daily cold quota
(:mod:`repro.serve.quota`; ``429`` with ``Retry-After``), and cold work
past the job-pool depth bound or during shutdown drain is shed with
``503`` + ``Retry-After``.  Warm answers and job polls are never shed.
Each request runs under the ``REPRO_REQUEST_DEADLINE`` wall budget;
``SIGTERM`` (or :meth:`BackgroundServer.close`) drains in-flight jobs for
``REPRO_DRAIN_SECONDS`` while refusing new cold work.
"""

from __future__ import annotations

import asyncio
import math
import signal
import sys
import threading

from repro import resilience
from repro.api.figures import get_figure
from repro.api.requests import FigureQuery
from repro.api.session import Session
from repro.serve.auth import ANONYMOUS, AuthError, Principal
from repro.serve.executor import (
    DONE,
    FAILED,
    SHED_RETRY_AFTER,
    Draining,
    JobManager,
    PoolSaturated,
    ServeJob,
)
from repro.serve.quota import AdmissionControl, Decision
from repro.serve.http import (
    ALLOWED_METHODS,
    MAX_BODY_BYTES,
    HttpError,
    Request,
    Response,
    body_bound_for_path,
    encode_response,
    read_request,
)
from repro.serve import wire

#: Telemetry header: simulation jobs executed to produce this response.
EXECUTED_HEADER = "X-Repro-Jobs-Executed"


class ServeApp:
    """Router + connection handler over one session and its job manager."""

    def __init__(
        self, session: Session, admission: AdmissionControl | None = None
    ) -> None:
        self.session = session
        self.manager = JobManager(session)
        self.admission = (
            admission if admission is not None else AdmissionControl.from_env()
        )
        #: Wall budget per request (None: disabled).  Enforced around the
        #: whole dispatch, so a stuck warmth probe or render cannot wedge a
        #: connection forever — the client gets a 503 and may retry.
        self.request_deadline = resilience.request_deadline_seconds()
        #: Fabric routes are opt-in: only a session whose runner dispatches
        #: to the remote fabric is a coordinator surface.  A plain query
        #: server must not carry the pickle-deserializing upload routes.
        self.fabric_routes = (
            getattr(session.runner, "pool_mode", None) == "remote"
        )

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = False
                try:
                    # Only a coordinator surface admits large bodies, and
                    # then only on the upload route — every other route
                    # keeps the tiny-JSON bound.
                    request = await read_request(
                        reader,
                        max_body=(
                            body_bound_for_path
                            if self.fabric_routes
                            else MAX_BODY_BYTES
                        ),
                    )
                    if request is None:
                        break
                    keep_alive = not request.wants_close()
                    response = await self._dispatch_bounded(request)
                except HttpError as error:
                    response = self._error(error.status, error.message)
                except Exception as error:  # route bug: report, keep serving
                    response = self._error(500, f"{type(error).__name__}: {error}")
                writer.write(encode_response(response, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            # Server shutdown cancelled this handler (typically parked on a
            # keep-alive read).  Ending normally keeps asyncio's stream
            # callback from logging the cancellation as an error; the task
            # is finished either way.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # A cancelled handler stays cancelled: the await above
                # re-raises even after the body absorbed the first
                # delivery.  The transport is already closing.
                pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch_bounded(self, request: Request) -> Response:
        """Run :meth:`dispatch` under the per-request wall deadline."""
        if self.request_deadline is None:
            return await self.dispatch(request)
        try:
            return await asyncio.wait_for(
                self.dispatch(request), timeout=self.request_deadline
            )
        except TimeoutError:
            return self._limited(
                503,
                Decision(
                    False,
                    retry_after=SHED_RETRY_AFTER,
                    reason=(
                        f"request exceeded the {self.request_deadline:g}s "
                        "deadline"
                    ),
                ),
            )

    async def dispatch(self, request: Request) -> Response:
        if request.method not in ALLOWED_METHODS:
            return self._error(405, f"method {request.method} not allowed")
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            # Always open and never rate-limited: liveness probes must work
            # without credentials, on a saturated or draining server too.
            return self._json(200, wire.health_record())
        # Fabric routes (work queue + cache replication) delegate to the
        # shared handler so this surface and the standalone fabric listener
        # speak one protocol — but only when this session opted into remote
        # pool mode; otherwise the paths fall through to the 404 below.
        # They are excluded from API-key auth either way: the fabric has its
        # own shared-token gate.  Imported lazily: repro.fabric imports this
        # module's siblings at load, so a top-level import would cycle.
        fabric_path = False
        if path.startswith("/v1/"):
            from repro.fabric import api as fabric_api

            fabric_path = fabric_api.is_fabric_path(path)
            if fabric_path and self.fabric_routes:
                from repro.fabric import shared_queue

                return await asyncio.to_thread(
                    fabric_api.dispatch_route,
                    path,
                    request,
                    shared_queue(),
                    self.session.cache,
                )
        principal = ANONYMOUS
        if path.startswith("/v1/") and not fabric_path:
            try:
                principal = self.admission.authenticate(request.headers)
            except AuthError as error:
                response = self._error(401, str(error))
                response.headers["WWW-Authenticate"] = "Bearer"
                return response
        if path in ("/v1/sweep", "/v1/dse") or path.startswith("/v1/figure/"):
            # The rate limit prices the expensive request class (anything
            # that may classify/render/simulate); job polls, warm DSE report
            # reads and catalog reads stay cheap and unmetered.
            decision = self.admission.admit_request(principal)
            if not decision.allowed:
                return self._limited(429, decision)
        if path == "/v1/figures":
            return self._json(200, wire.figures_record())
        if path == "/v1/cache/stats":
            report = await asyncio.to_thread(self.session.cache_stats)
            return self._json(200, wire.cache_stats_record(report))
        if path.startswith("/v1/figure/"):
            if request.method != "GET":
                return self._error(405, "figure queries are GET")
            return await self._figure(
                request, path.removeprefix("/v1/figure/"), principal
            )
        if path == "/v1/sweep":
            if request.method != "POST":
                return self._error(405, "sweeps are POST (a SweepSpec record)")
            return await self._sweep(request, principal)
        if path == "/v1/dse":
            if request.method != "POST":
                return self._error(405, "DSE campaigns are POST (a DseSpec record)")
            return await self._dse(request, principal)
        if path.startswith("/v1/dse/"):
            if request.method != "GET":
                return self._error(405, "DSE report reads are GET")
            return await self._dse_report(request, path.removeprefix("/v1/dse/"))
        if path.startswith("/v1/jobs/"):
            return self._job(path.removeprefix("/v1/jobs/"))
        return self._error(404, f"no route for {request.path}")

    # ------------------------------------------------------------------
    # Figure / sweep: warm-sync or cold-202
    # ------------------------------------------------------------------
    async def _figure(
        self, request: Request, identifier: str, principal: Principal
    ) -> Response:
        try:
            query = FigureQuery(identifier)
            get_figure(query.figure)
        except (ValueError, KeyError) as error:
            return self._error(404, str(error).strip('"'))
        return await self._answer(request, "figure", query, query.key(), principal)

    async def _sweep(self, request: Request, principal: Principal) -> Response:
        try:
            spec = wire.sweep_spec_from_payload(request.body)
        except ValueError as error:
            return self._error(400, str(error))
        return await self._answer(request, "sweep", spec, spec.key(), principal)

    async def _dse(self, request: Request, principal: Principal) -> Response:
        try:
            spec = wire.dse_spec_from_payload(request.body)
        except ValueError as error:
            return self._error(400, str(error))
        return await self._answer(request, "dse", spec, spec.key(), principal)

    async def _dse_report(self, request: Request, spec_key: str) -> Response:
        """Serve one campaign's persisted Pareto report body, warm only.

        ``<key>`` is the campaign's :meth:`DseSpec.key`.  The stored body is
        a deterministic function of (spec, settings, schema versions) — the
        same bytes ``POST /v1/dse`` and the CLI emit — so it is served with
        the same strong ETag and always reports zero executions.  A
        campaign still in flight answers with its job envelope; an unknown
        one is a 404 pointing at the POST route.
        """
        etag = wire.request_etag("dse", spec_key, self.session.settings)
        if wire.etag_matches(request.headers.get("if-none-match"), etag):
            return Response(status=304, headers={"ETag": etag})
        if self.session.cache is not None:
            from repro.dse.explore import report_key_for

            report_key = report_key_for(spec_key, self.session.settings)
            body = await asyncio.to_thread(self.session.cache.get_blob, report_key)
            if body is not None:
                return Response(
                    status=200,
                    body=body,
                    headers={"ETag": etag, EXECUTED_HEADER: "0"},
                )
        job = self.manager.get(spec_key)
        if job is not None:
            if not job.finished.is_set():
                return self._job_envelope(job, status=202)
            if job.status == DONE and job.body is not None:
                return Response(
                    status=200,
                    body=job.body,
                    headers={"ETag": etag, EXECUTED_HEADER: "0"},
                )
        return self._error(
            404,
            f"no cached DSE report for {spec_key!r}; "
            "POST /v1/dse runs the campaign",
        )

    async def _answer(
        self, request: Request, kind: str, obj, key: str, principal: Principal
    ) -> Response:
        etag = wire.request_etag(kind, key, self.session.settings)
        if wire.etag_matches(request.headers.get("if-none-match"), etag):
            return Response(status=304, headers={"ETag": etag})
        # Coalescing fast path: an identical request already in flight
        # answers with its job envelope before any warmth probing — and a
        # finished one serves its stored body outright.  Responses are
        # deterministic functions of (request, settings), so the stored
        # bytes can never go stale; this is also what spares a repeat
        # request the probe's grid compile + key hashing.
        job = self.manager.get(key)
        if job is not None:
            if not job.finished.is_set():
                return self._job_envelope(job, status=202)
            if job.status == DONE and job.body is not None:
                return Response(
                    status=200,
                    body=job.body,
                    headers={"ETag": etag, EXECUTED_HEADER: "0"},
                )
        pending, grid_total = await asyncio.to_thread(self.manager.classify, obj)
        if pending:
            # Cold path.  The quota is charged *before* coalescing (the
            # admission decision must come first) and refunded whenever no
            # new job actually resulted — joining an in-flight computation
            # or being shed costs nothing.  Warm requests below never get
            # here, so saturation and drain cannot touch cached answers.
            decision = self.admission.admit_cold(principal)
            if not decision.allowed:
                return self._limited(429, decision)
            try:
                job, created = self.manager.coalesce(key, kind, obj, grid_total)
            except (Draining, PoolSaturated) as refusal:
                self.admission.refund_cold(principal)
                return self._limited(
                    503,
                    Decision(
                        False,
                        retry_after=refusal.retry_after,
                        reason=str(refusal),
                    ),
                )
            if created:
                self.manager.start(job, etag)
            else:
                self.admission.refund_cold(principal)
            return self._job_envelope(job, status=202)
        body, executed = await asyncio.to_thread(self.manager.render, obj)
        return Response(
            status=200,
            body=body,
            headers={"ETag": etag, EXECUTED_HEADER: str(executed)},
        )

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def _job(self, key: str) -> Response:
        job = self.manager.get(key)
        if job is None:
            return self._error(404, f"no such job {key!r}")
        status = job.status
        if status == DONE:
            assert job.body is not None and job.etag is not None
            return Response(
                status=200,
                body=job.body,
                headers={"ETag": job.etag, EXECUTED_HEADER: str(job.executed)},
            )
        if status == FAILED:
            snapshot = job.snapshot()
            return self._json(
                500, wire.error_record(500, snapshot.get("error", "job failed"))
            )
        return self._job_envelope(job, status=202)

    def _job_envelope(self, job: ServeJob, *, status: int) -> Response:
        record = wire.job_record(job.snapshot())
        return Response(
            status=status,
            body=wire.dump_body(record),
            headers={"Location": record["url"], "Retry-After": "1"},
        )

    # ------------------------------------------------------------------
    def _json(self, status: int, record: dict) -> Response:
        return Response(status=status, body=wire.dump_body(record))

    def _error(self, status: int, message: str) -> Response:
        return self._json(status, wire.error_record(status, message))

    def _limited(self, status: int, decision: Decision) -> Response:
        """A ``429``/``503`` refusal with precise backoff guidance.

        Every refusal carries ``Retry-After`` (integer seconds, rounded
        up so a compliant client never retries early) and, when the policy
        has a window boundary, ``X-Repro-Reset`` with the reset epoch.
        """
        reset_at = decision.reset_at or None
        record = wire.limit_record(
            status, decision.reason, decision.retry_after, reset_at
        )
        headers = {
            "Retry-After": str(max(1, math.ceil(decision.retry_after)))
        }
        if reset_at is not None:
            headers["X-Repro-Reset"] = f"{reset_at:.3f}"
        return Response(
            status=status, body=wire.dump_body(record), headers=headers
        )


# ----------------------------------------------------------------------
# Running a server
# ----------------------------------------------------------------------
async def start_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Bind and start serving ``app``; the caller owns the returned server."""
    return await asyncio.start_server(app.handle_connection, host, port)


def run_server(
    session: Session, host: str = "127.0.0.1", port: int = 8734
) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    app = ServeApp(session)
    if app.fabric_routes:
        from repro.fabric.api import require_loopback_or_token

        try:
            require_loopback_or_token(host, surface="the serve front-end")
        except ValueError as error:
            print(f"[repro.serve] {error}", file=sys.stderr)
            return 2

    async def main(app: ServeApp) -> None:
        server = await start_server(app, host, port)
        bound = server.sockets[0].getsockname()
        keys = "open" if app.admission.registry.open else "API keys required"
        print(
            f"[repro.serve] listening on http://{bound[0]}:{bound[1]} "
            f"(cache: {session.cache.directory if session.cache else 'disabled'}; "
            f"{keys}; job pool depth {app.manager.max_depth})",
            file=sys.stderr,
            flush=True,
        )
        terminated = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, terminated.set)
        except (NotImplementedError, RuntimeError):
            pass  # platform without signal handlers (or a nested loop)
        async with server:
            # SIGTERM starts the graceful ramp-down instead of killing the
            # process: refuse new cold work, keep answering warm requests
            # and job polls while the drain window runs, then exit.
            await terminated.wait()
            window = resilience.drain_seconds()
            print(
                f"[repro.serve] SIGTERM: draining in-flight jobs "
                f"(up to {window:g}s)",
                file=sys.stderr,
                flush=True,
            )
            app.manager.begin_drain()
            drained = await asyncio.to_thread(app.manager.drain, window)
            print(
                "[repro.serve] drain "
                + ("complete" if drained else "window expired"),
                file=sys.stderr,
                flush=True,
            )

    try:
        asyncio.run(main(app))
    except KeyboardInterrupt:
        print("[repro.serve] shutting down", file=sys.stderr)
    finally:
        app.manager.close()
    return 0


class BackgroundServer:
    """A server on its own event-loop thread (tests, benches, notebooks).

    ::

        with BackgroundServer(Session(...)) as server:
            urllib.request.urlopen(server.url + "/healthz")
    """

    def __init__(
        self, session: Session, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = ServeApp(session)
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                start_server(self.app, self.host, self.port)
            )
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            # Cancel handler tasks *before* wait_closed(): idle keep-alive
            # connections park their handlers on a read, and on Python >=
            # 3.12.1 wait_closed() blocks until every connection is gone —
            # waiting first would deadlock on exactly the tasks this drains.
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            loop.run_until_complete(server.wait_closed())
            loop.close()

    def close(self, drain: float | None = None) -> None:
        """Graceful stop: drain in-flight jobs, then tear the loop down.

        Mirrors the SIGTERM path of :func:`run_server` — new cold work is
        refused (``503``) the moment the drain begins, in-flight jobs get
        up to ``drain`` seconds (``REPRO_DRAIN_SECONDS`` by default) to
        finish, and only then is the listener stopped.  Idempotent.
        """
        window = resilience.drain_seconds() if drain is None else drain
        self.app.manager.begin_drain()
        if window > 0:
            self.app.manager.drain(window)
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.app.manager.close()

    def __exit__(self, *exc_info) -> None:
        self.close()
