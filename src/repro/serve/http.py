"""Minimal HTTP/1.1 plumbing for the serving front-end.

A deliberately small, dependency-free layer over ``asyncio`` streams: parse
one request (request line, headers, ``Content-Length`` body) into a
:class:`Request`, encode a :class:`Response` back out, nothing more.  It
supports exactly what the JSON API under :mod:`repro.serve.app` needs —
``GET``/``POST``, keep-alive connections, bounded header/body sizes — and
rejects everything else with a clean status code instead of guessing.

``http.server`` is avoided on purpose: its threading model would put one OS
thread behind every connection, while the asyncio front-end keeps thousands
of idle keep-alive connections cheap and pushes the actual simulation work
onto background threads only when a request is cache-cold.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable
from urllib.parse import unquote

#: Reason phrases for every status the app emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request-line methods the router understands at all.
ALLOWED_METHODS = ("GET", "POST")

#: Upper bounds keeping a hostile or confused client from ballooning memory.
MAX_HEADER_COUNT = 100
MAX_BODY_BYTES = 1 << 20  # 1 MiB — a SweepSpec record is a few hundred bytes

#: Body bound for the one route that accepts fabric work uploads: a
#: ``/v1/work/complete`` payload carries a chunk's pickled result records
#: (base64-inflated), which can legitimately run to megabytes on full-scale
#: sweeps.  Every other route still parses tiny JSON records and keeps the
#: 1 MiB bound — see :func:`body_bound_for_path`.
WORK_MAX_BODY_BYTES = 64 << 20


def body_bound_for_path(path: str) -> int:
    """Per-route request-body bound for listeners carrying fabric routes.

    Only ``/v1/work/complete`` may carry a large upload; holding every other
    route at :data:`MAX_BODY_BYTES` keeps the big bound from widening the
    memory exposure of the whole surface (bodies are read fully into memory).
    """
    if path.rstrip("/") == "/v1/work/complete":
        return WORK_MAX_BODY_BYTES
    return MAX_BODY_BYTES


class HttpError(Exception):
    """A malformed request, reportable with a specific status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    #: Percent-decoded path, query string stripped (e.g. ``/v1/figure/fig12``).
    path: str
    #: Header name (lowercased) -> value.
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def wants_close(self) -> bool:
        """Whether the client asked to drop the connection after this reply."""
        return self.headers.get("connection", "").lower() == "close"


@dataclass
class Response:
    """One response about to be encoded onto the wire."""

    status: int = 200
    body: bytes = b""
    #: Extra headers (``ETag``, ``Location``, telemetry) beyond the
    #: content/framing ones :func:`encode_response` always emits.
    headers: dict[str, str] = field(default_factory=dict)
    content_type: str = "application/json; charset=utf-8"


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body: int | Callable[[str], int] = MAX_BODY_BYTES,
) -> Request | None:
    """Parse one request off the stream; ``None`` on clean end-of-stream.

    Raises :class:`HttpError` for anything malformed — the connection
    handler reports the status and closes, which is the correct recovery
    for a framing error (the stream position is no longer trustworthy).
    ``max_body`` is the ``413`` bound: an integer, or a callable mapping the
    percent-decoded request path to a bound (listeners carrying fabric
    result uploads pass :func:`body_bound_for_path` so only the upload
    route admits large bodies).
    """
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise HttpError(431, "request line too long") from None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts

    headers: dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise HttpError(431, "header line too long") from None
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise HttpError(400, "truncated headers")
        name, colon, value = raw.decode("latin-1").partition(":")
        if not colon:
            raise HttpError(400, "malformed header")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > MAX_HEADER_COUNT:
            raise HttpError(431, "too many headers")

    if "transfer-encoding" in headers:
        # Only Content-Length framing is implemented.  Silently ignoring a
        # chunked body would leave its bytes on the stream to be misread as
        # the next request — the request-smuggling desync class.
        raise HttpError(400, "Transfer-Encoding is not supported; use Content-Length")
    path, _sep, _query = target.partition("?")
    path = unquote(path)
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        bound = max_body(path) if callable(max_body) else max_body
        if length > bound:
            raise HttpError(413, f"body larger than {bound} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated body") from None

    return Request(method=method, path=path, headers=headers, body=body)


def encode_response(response: Response, *, keep_alive: bool) -> bytes:
    """Serialize one response, with framing and connection headers."""
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    if response.status != 304:
        lines.append(f"Content-Type: {response.content_type}")
        lines.append(f"Content-Length: {len(response.body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    # A 304 carries headers only (RFC 9110 §15.4.5) — the body the client
    # already holds is, by the ETag contract, byte-identical.
    return head if response.status == 304 else head + response.body
