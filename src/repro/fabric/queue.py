"""The coordinator's pull-based work queue with lease-based claims.

:class:`WorkQueue` is the synchronisation point between a
:class:`~repro.runtime.runner.BatchRunner` in ``remote`` pool mode and any
number of ``python -m repro worker`` processes:

* the runner's :class:`~repro.fabric.executor.RemoteExecutor` turns each
  dispatch chunk into a :class:`WorkItem` and gets a
  :class:`~concurrent.futures.Future` back;
* workers *pull*: :meth:`claim` leases pending items (never pushes — a slow
  or dead worker simply stops claiming), :meth:`heartbeat` extends a lease
  while a long chunk runs, :meth:`complete` uploads the results;
* a lease that expires without a completion (worker died, stalled, or lost
  its network) requeues the item at the *front* of the queue, so recovered
  stragglers do not wait behind fresh work.  Expiry is swept on every
  claim/heartbeat/complete/snapshot — with at least one live worker polling,
  no orphaned lease survives.

Every upload is verified before it can touch anything: blob digests are
recomputed, payloads must unpickle, and the outcome count must match the
chunk the *coordinator* keyed (results are bound to the coordinator's own
``SimJob.key()`` values, never to keys the worker declares).  A corrupt
upload is rejected with a ``400`` and the item goes back on the queue.  For
the *extras* path (nested results a chunk touched) the keys are necessarily
worker-declared — the coordinator cannot derive a chunk's nested key set
without executing it — so its guarantee is narrower: an extra must carry a
well-formed content key and decode, and it may only *fill an absent* cache
entry, never replace existing bytes.  What lands under a fresh extras key
is trusted to the worker set, which is why the fabric surface is opt-in and
token-guarded (:mod:`repro.fabric.api`) rather than open.  The first
*valid* completion wins; duplicates (a stalled worker finishing after its
lease was reassigned) are acknowledged idempotently.

Environment knobs:

* ``REPRO_LEASE_SECONDS`` — lease length granted per claim (default 30).
* ``REPRO_MAX_ATTEMPTS`` — leases an item may burn before the queue gives
  up and fails the batch (default 5).

Both limits live in a :class:`repro.resilience.LeasePolicy`: each item's
lease expiry is a :class:`~repro.resilience.Deadline` and its attempt
budget a :class:`~repro.resilience.RetryBudget`, the same vocabulary every
other wait/retry limit in the repository is expressed in.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError

from repro import knobs, resilience
from repro.fabric import wire
from repro.fabric.unpickle import UnpickleError, restricted_loads
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import SimJob

#: Work-item lifecycle states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"

DEFAULT_LEASE_SECONDS = 30.0
DEFAULT_MAX_ATTEMPTS = 5


def lease_seconds_from_env() -> float:
    """Lease length the environment asks for (default 30 s)."""
    return knobs.get("REPRO_LEASE_SECONDS")


def max_attempts_from_env() -> int:
    """Lease budget per item the environment asks for (default 5)."""
    return knobs.get("REPRO_MAX_ATTEMPTS")


class FabricError(Exception):
    """A queue-protocol violation, reportable with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class RemoteWorkerError(RuntimeError):
    """A chunk failed remotely: either the worker reported an execution
    error (re-raised here so the runner surfaces it exactly like a local
    failure) or the item exhausted its lease budget."""


class WorkItem:
    """One leasable dispatch unit: a keyed chunk plus its result future."""

    __slots__ = (
        "item_id",
        "chunk",
        "keys",
        "payload",
        "extras_dir",
        "state",
        "worker",
        "deadline",
        "budget",
        "future",
    )

    def __init__(
        self,
        item_id: str,
        chunk: list[tuple[str, SimJob]],
        extras_dir: str | None,
        budget: resilience.RetryBudget,
    ) -> None:
        self.item_id = item_id
        self.chunk = list(chunk)
        #: The coordinator's own keys — completions are bound to these, so a
        #: worker can never steer a result under a key it did not earn.
        self.keys = [key for key, _job in self.chunk]
        self.payload = wire.encode_jobs([job for _key, job in self.chunk])
        self.extras_dir = extras_dir
        self.state = PENDING
        self.worker: str | None = None
        #: Lease expiry while LEASED; ``None`` otherwise.
        self.deadline: resilience.Deadline | None = None
        #: Lease budget; one grant is spent per claim.
        self.budget = budget
        self.future: Future = Future()

    @property
    def attempts(self) -> int:
        """Leases granted on this item so far (the budget's spend count)."""
        return self.budget.spent


class WorkQueue:
    """Thread-safe lease queue; see the module docstring for the protocol."""

    def __init__(
        self,
        lease_seconds: float | None = None,
        max_attempts: int | None = None,
    ) -> None:
        self.policy = resilience.LeasePolicy(
            lease_seconds=(
                lease_seconds if lease_seconds is not None else lease_seconds_from_env()
            ),
            max_attempts=(
                max_attempts if max_attempts is not None else max_attempts_from_env()
            ),
        )
        self._lock = threading.Lock()
        self._pending: deque[WorkItem] = deque()  # guarded-by: _lock
        self._items: dict[str, WorkItem] = {}  # guarded-by: _lock
        self._ids = itertools.count(1)
        #: Per-directory caches the extras of completed items deposit into,
        #: shared so their in-memory level stays warm across completions.
        self._extras_caches: dict[str, ResultCache] = {}  # guarded-by: _lock
        # Telemetry (guarded by the lock).
        self.requeued_leases = 0  # guarded-by: _lock
        self.rejected_uploads = 0  # guarded-by: _lock
        self.completed_items = 0  # guarded-by: _lock
        self.failed_items = 0  # guarded-by: _lock

    @property
    def lease_seconds(self) -> float:
        return self.policy.lease_seconds

    @property
    def max_attempts(self) -> int:
        return self.policy.max_attempts

    # ------------------------------------------------------------------
    # Runner side
    # ------------------------------------------------------------------
    def submit_chunk(
        self, chunk: list[tuple[str, SimJob]], extras_dir: str | None = None
    ) -> Future:
        """Enqueue one keyed chunk; the future resolves to the
        ``(outcomes, error)`` pair :func:`~repro.runtime.jobs.execute_chunk`
        would have returned locally."""
        if not chunk:
            raise ValueError("cannot submit an empty chunk")
        # Built outside the lock: the constructor pickles the whole chunk
        # (wire.encode_jobs), and serializing megabytes under the lock would
        # stall concurrent claim/heartbeat/complete calls — delaying exactly
        # the lease extensions a long batch depends on.  (``itertools.count``
        # is safe to advance concurrently.)
        item = WorkItem(
            f"w{next(self._ids):08d}", chunk, extras_dir, self.policy.lease_budget()
        )
        with self._lock:
            self._items[item.item_id] = item
            self._pending.append(item)
        return item.future

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self, worker: str, max_items: int = 1) -> tuple[list[dict], int]:
        """Lease up to ``max_items`` pending items to ``worker``.

        Returns ``(item records, outstanding)`` where *outstanding* counts
        items not yet done/failed — a worker loop's idle/busy signal.
        Expired leases are swept (and requeued at the front) first, so the
        poll of any healthy worker is what rescues a dead worker's items.
        """
        now = time.monotonic()
        granted: list[WorkItem] = []
        with self._lock:
            self._expire_locked(now)
            while self._pending and len(granted) < max(1, int(max_items)):
                item = self._pending.popleft()
                if item.future.cancelled():
                    # The submitting batch was abandoned (its runner raised
                    # and cancelled outstanding futures); executing the item
                    # would be wasted work with nowhere to land.
                    item.state = FAILED
                    continue
                item.state = LEASED
                item.worker = worker
                item.budget.grant()
                item.deadline = self.policy.lease_deadline(now=now)
                granted.append(item)
            outstanding = self._outstanding_locked()
        return [self._item_record(item) for item in granted], outstanding

    def heartbeat(self, worker: str, item_ids: list[str]) -> dict:
        """Extend the leases ``worker`` still holds; report the ones it lost.

        A lost lease (expired and requeued, or completed by another worker)
        tells the worker its in-flight execution is now advisory — it may
        finish and upload (first valid completion wins) or abandon the work.
        """
        now = time.monotonic()
        extended: list[str] = []
        lost: list[str] = []
        with self._lock:
            self._expire_locked(now)
            for item_id in item_ids:
                item = self._items.get(item_id)
                if item is not None and item.state == LEASED and item.worker == worker:
                    item.deadline = self.policy.lease_deadline(now=now)
                    extended.append(item_id)
                else:
                    lost.append(item_id)
        return {"extended": extended, "lost": lost}

    def complete(self, worker: str, record: dict) -> dict:
        """Accept (or reject) one completion upload.

        Verification happens before any state changes: every blob's digest
        is recomputed, outcomes and extras must unpickle, and the outcome
        count must cover the chunk (exactly, unless the worker reports an
        execution error — then a completed prefix is legal, mirroring
        ``execute_chunk``'s crash-resume contract).  A verification failure
        requeues the item and raises :class:`FabricError` (the ``400``).
        """
        item_id = record.get("item_id")
        if not isinstance(item_id, str):
            raise FabricError(400, "completion must name its item_id")
        with self._lock:
            item = self._items.get(item_id)
        if item is None:
            raise FabricError(404, f"no such work item {item_id!r}")

        error_text = record.get("error")
        if error_text is not None and not isinstance(error_text, str):
            raise FabricError(400, "error must be a string or null")
        try:
            outcomes = []
            for blob_record in record.get("outcomes", ()):
                blob = wire.decode_blob(blob_record)
                try:
                    outcomes.append(restricted_loads(blob))
                except UnpickleError as err:
                    raise wire.IntegrityError(
                        f"outcome does not unpickle: {err}"
                    ) from None
            extras: list[tuple[str, bytes]] = []
            for extra in record.get("extras", ()):
                key = extra.get("key") if isinstance(extra, dict) else None
                if not isinstance(key, str) or not wire.is_content_key(key):
                    raise wire.IntegrityError("extra entry carries no valid key")
                blob = wire.decode_blob(extra)
                try:
                    restricted_loads(blob)
                except UnpickleError as err:
                    raise wire.IntegrityError(
                        f"extra entry does not unpickle: {err}"
                    ) from None
                extras.append((key, blob))
            if len(outcomes) > len(item.keys) or (
                error_text is None and len(outcomes) != len(item.keys)
            ):
                raise wire.IntegrityError(
                    f"expected {len(item.keys)} outcomes, got {len(outcomes)}"
                )
        except wire.IntegrityError as err:
            self._reject(item, worker)
            raise FabricError(400, f"corrupt upload rejected: {err}") from None

        with self._lock:
            if item.state == DONE:
                return {"status": "duplicate", "item_id": item_id}
            if item.state == FAILED:
                return {"status": "stale", "item_id": item_id}
            if item.state == PENDING:
                # A late but *valid* completion from a worker whose lease
                # already expired: accept it (first valid result wins) and
                # pull the item back off the pending queue.
                try:
                    self._pending.remove(item)
                except ValueError:
                    pass
            item.state = DONE
            item.worker = worker
            item.deadline = None
            self.completed_items += 1
            extras_cache = (
                self._extras_cache_locked(item.extras_dir) if extras else None
            )
        # Disk writes and future resolution happen outside the lock: the
        # future's waiter is the runner thread, which immediately caches the
        # outcomes — no reason to serialise that against other claims.
        if extras_cache is not None:
            # Extras keys are worker-declared, so they only get to *fill*
            # absent entries — an existing entry keeps its bytes.  Honest
            # workers lose nothing (a present entry is already the right
            # bytes: the cache key binds every simulation input), and a
            # corrupt worker cannot replace entries of unrelated jobs.
            absent = set(extras_cache.missing([key for key, _blob in extras]))
            for key, blob in extras:
                if key in absent:
                    extras_cache.put_blob(key, blob)
        error = RemoteWorkerError(error_text) if error_text else None
        self._resolve(item, (outcomes, error))
        return {"status": "accepted", "item_id": item_id}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Telemetry counts (also sweeps expired leases, so an observer's
        poll keeps requeues moving even between worker claims)."""
        with self._lock:
            self._expire_locked(time.monotonic())
            states = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
            for item in self._items.values():
                states[item.state] += 1
            return {
                "pending": states[PENDING],
                "leased": states[LEASED],
                "done": states[DONE],
                "failed": states[FAILED],
                "outstanding": states[PENDING] + states[LEASED],
                "requeued_leases": self.requeued_leases,
                "rejected_uploads": self.rejected_uploads,
                "completed_items": self.completed_items,
                "failed_items": self.failed_items,
                "lease_seconds": self.lease_seconds,
                "max_attempts": self.max_attempts,
            }

    def outstanding(self) -> int:
        """Items not yet done or failed."""
        with self._lock:
            return self._outstanding_locked()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _item_record(self, item: WorkItem) -> dict:
        return {
            "item_id": item.item_id,
            "jobs": item.payload,
            "keys": list(item.keys),
            "lease_seconds": self.lease_seconds,
            "attempt": item.attempts,
        }

    def _outstanding_locked(self) -> int:
        return sum(
            1 for item in self._items.values() if item.state in (PENDING, LEASED)
        )

    def _expire_locked(self, now: float) -> None:
        expired = [
            item
            for item in self._items.values()
            if item.state == LEASED
            and item.deadline is not None
            and item.deadline.expired(now=now)
        ]
        for item in expired:
            self.requeued_leases += 1
            self._release_locked(item)

    def _release_locked(self, item: WorkItem) -> None:
        """Take a lease back: requeue at the front, or fail the item when
        its lease budget is spent (resolving the future with the give-up
        error, so the waiting runner raises instead of hanging forever)."""
        item.worker = None
        item.deadline = None
        if item.budget.exhausted:
            item.state = FAILED
            self.failed_items += 1
            self._resolve(
                item,
                (
                    [],
                    RemoteWorkerError(
                        f"work item {item.item_id} gave up after "
                        f"{item.attempts} leases ({len(item.keys)} jobs)"
                    ),
                ),
            )
        else:
            item.state = PENDING
            self._pending.appendleft(item)

    def _reject(self, item: WorkItem, worker: str) -> None:
        """Bookkeeping for a corrupt upload: count it and, if the uploader
        still holds the lease, release the item back to the queue."""
        with self._lock:
            self.rejected_uploads += 1
            if item.state == LEASED and item.worker == worker:
                self.requeued_leases += 1
                self._release_locked(item)

    def _resolve(self, item: WorkItem, result: tuple) -> None:
        try:
            item.future.set_result(result)
        except InvalidStateError:
            pass  # cancelled by an abandoned batch; nothing is waiting

    def _extras_cache_locked(self, extras_dir: str | None) -> ResultCache | None:
        if extras_dir is None:
            return None
        cache = self._extras_caches.get(extras_dir)
        if cache is None:
            cache = self._extras_caches[extras_dir] = ResultCache(extras_dir)
        return cache
