"""The fabric worker: claim a chunk, simulate it, upload the results.

``python -m repro worker <coordinator-url>`` runs :func:`run_worker`: a
pull loop that claims leased work items from the coordinator, executes the
jobs through the local engine (exactly the
:func:`~repro.runtime.jobs.execute_chunk` path a local pool worker runs),
and uploads the serialized result records.  While a chunk runs, a
background thread heartbeats at a third of the lease length so a healthy
worker never loses a long chunk to lease expiry; a worker that dies simply
stops heartbeating and the coordinator requeues its items.

Bit-equivalence with local execution is carried by two things:

* jobs execute through the very same ``execute_chunk`` function, and
* nested results (oracle trials, shared engine runs) land in a
  :class:`RecordingCache` — the worker's local cache wrapped to remember
  every blob that passes through it — and are uploaded as *extras*, so the
  coordinator's cache ends up with exactly the key set a local run of the
  same chunk would have produced.

Fault injection (the chaos test harness, ``REPRO_CHAOS``):

* ``die_after:N`` — complete N items, then vanish while holding a lease;
* ``stall``      — claim an item, then hang without heartbeating;
* ``corrupt``    — flip a byte in each upload's payload (digest mismatch).

Every wait in this module goes through :mod:`repro.resilience`: idle polls
are jittered so a fleet never thunders in lockstep, transient claim/upload
failures back off exponentially, and a coordinator that stays unreachable
trips a circuit breaker — the worker then sleeps through the breaker's
cooldown instead of hammering a dead endpoint.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from repro import knobs, resilience
from repro.fabric import wire
from repro.fabric.queue import FabricError, WorkQueue
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.jobs import execute_chunk


def parse_chaos(text: str | None) -> "Chaos | None":
    """Parse a ``REPRO_CHAOS`` value; ``None``/empty means no chaos."""
    if not text:
        return None
    mode, _, raw = text.partition(":")
    if mode == "die_after":
        try:
            return Chaos("die_after", int(raw))
        except ValueError:
            raise ValueError(
                f"REPRO_CHAOS=die_after needs an integer, got {raw!r}"
            ) from None
    if mode in ("stall", "corrupt"):
        if raw:
            raise ValueError(f"REPRO_CHAOS={mode} takes no argument")
        return Chaos(mode, 0)
    raise ValueError(
        f"unknown REPRO_CHAOS mode {text!r}; expected die_after:N, stall or corrupt"
    )


@dataclass(frozen=True)
class Chaos:
    """One fault-injection behaviour (see the module docstring)."""

    mode: str
    value: int = 0


@dataclass
class WorkerReport:
    """What one worker's run loop did (the chaos tests assert on this)."""

    claimed: int = 0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    #: Claim calls that failed (coordinator refused or unreachable).
    claim_failures: int = 0
    #: CLOSED -> OPEN transitions of the coordinator circuit breaker.
    breaker_opens: int = 0
    #: Leases the coordinator reported lost while this worker held them.
    leases_lost: int = 0
    died: bool = False
    stalled: bool = False
    rejected_messages: list[str] = field(default_factory=list)


class RecordingCache(ResultCache):
    """A :class:`ResultCache` that remembers every blob passing through it.

    Handed to ``execute_chunk`` as the nested trial cache: puts *and* read
    hits both funnel through :meth:`_remember`/:meth:`_memory_get`, so
    ``recorded`` accumulates every nested result the chunk's execution
    touched — including entries the worker's local cache already held from
    an earlier chunk, which the coordinator may still be missing (e.g. when
    that earlier upload was lost to a crash).  Uploading the touched set,
    not just the fresh puts, is what keeps the coordinator's key inventory
    identical to a local run's.
    """

    def __init__(self, directory) -> None:
        super().__init__(directory)
        self.recorded: dict[str, bytes] = {}

    def _remember(self, key: str, blob: bytes) -> None:
        self.recorded[key] = blob
        super()._remember(key, blob)

    def _memory_get(self, key: str) -> bytes | None:
        blob = super()._memory_get(key)
        if blob is not None:
            self.recorded[key] = blob
        return blob


# ----------------------------------------------------------------------
# Queue clients: in-process (tests) and HTTP (real deployments)
# ----------------------------------------------------------------------
class DirectClient:
    """Drives a :class:`WorkQueue` object in-process — the test harness's
    client, running the exact record protocol the HTTP client speaks."""

    def __init__(self, queue: WorkQueue) -> None:
        self.queue = queue

    def claim(self, worker: str, max_items: int) -> list[dict]:
        items, _outstanding = self.queue.claim(worker, max_items)
        return items

    def heartbeat(self, worker: str, item_ids: list[str]) -> dict:
        return self.queue.heartbeat(worker, item_ids)

    def complete(self, worker: str, record: dict) -> dict:
        return self.queue.complete(worker, record)


class HttpClient:
    """Speaks the coordinator's ``/v1/work/*`` JSON protocol over HTTP.

    When ``REPRO_FABRIC_TOKEN`` is set (the coordinator's shared secret),
    every request carries it in the auth header — the same environment
    variable configures both sides of the connection.
    """

    def __init__(self, base_url: str, timeout: float | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout if timeout is not None else resilience.http_timeout()

    def _post(self, route: str, record: dict) -> dict:
        from repro.fabric.api import TOKEN_HEADER, fabric_token

        body = json.dumps(record).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        token = fabric_token()
        if token is not None:
            headers[TOKEN_HEADER] = token
        request = urllib.request.Request(
            self.base_url + route,
            data=body,
            headers=headers,
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                payload = json.loads(error.read().decode("utf-8"))
                detail = payload.get("error", "")
            except (OSError, ValueError, AttributeError):
                # The error body is advisory only; a coordinator answering
                # with a non-JSON page still maps to the status-code message.
                detail = ""
            raise FabricError(
                error.code, detail or f"coordinator answered {error.code}"
            ) from None

    def claim(self, worker: str, max_items: int) -> list[dict]:
        record = self._post(
            "/v1/work/claim", {"worker": worker, "max_items": max_items}
        )
        return record.get("items", [])

    def heartbeat(self, worker: str, item_ids: list[str]) -> dict:
        return self._post("/v1/work/heartbeat", {"worker": worker, "items": item_ids})

    def complete(self, worker: str, record: dict) -> dict:
        return self._post("/v1/work/complete", record)


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
class Worker:
    """One claim/execute/upload loop over a queue client.

    ``target`` is a coordinator URL (HTTP client), a live
    :class:`WorkQueue` (in-process client, the test harness), or any
    object already speaking the client protocol (``claim``/``heartbeat``/
    ``complete`` — the chaos harness wraps clients this way).  ``stop`` is
    an optional external kill switch; :meth:`run` also exits when chaos
    says the worker "dies".

    ``breaker`` guards the coordinator connection: repeated *transport*
    failures (unreachable, reset) open it, and an open breaker replaces
    claim attempts with a quiet cooldown sleep.  Protocol-level refusals
    (:class:`FabricError` — the coordinator answered, just not yes) never
    trip it.
    """

    def __init__(
        self,
        target,
        *,
        worker_id: str | None = None,
        cache_dir: str | os.PathLike | None = None,
        poll_seconds: float = 0.2,
        max_items: int = 1,
        chaos: Chaos | None = None,
        stop: threading.Event | None = None,
        breaker: resilience.CircuitBreaker | None = None,
        log=None,
    ) -> None:
        if isinstance(target, WorkQueue):
            self.client = DirectClient(target)
        elif isinstance(target, str):
            self.client = HttpClient(target)
        else:
            self.client = target
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}-{id(self) & 0xFFFF:04x}"
        )
        if cache_dir is None and not knobs.get("REPRO_CACHE"):
            self.cache_dir = None
        else:
            self.cache_dir = (
                os.fspath(cache_dir) if cache_dir is not None else str(default_cache_dir())
            )
        self.poll_seconds = poll_seconds
        self.max_items = max_items
        self.chaos = chaos
        self.stop = stop if stop is not None else threading.Event()
        self.breaker = breaker if breaker is not None else resilience.CircuitBreaker.from_env()
        #: Backoff for failed claims, seeded at the poll interval so test
        #: fleets with millisecond polls stay fast; resets on success.
        self.claim_backoff = resilience.Backoff.from_env(initial=poll_seconds)
        #: Separate ladder for rejected uploads — a corrupting worker must
        #: not speed its claim cadence back up between rejections.
        self.upload_backoff = resilience.Backoff.from_env(initial=poll_seconds)
        self.log = log
        self.report = WorkerReport()

    # ------------------------------------------------------------------
    def run(self) -> WorkerReport:
        """Poll until stopped (or chaos kills the worker); returns the
        report of what happened."""
        while not self.stop.is_set():
            if not self.breaker.allow():
                # Coordinator is presumed dead: sleep out the cooldown
                # instead of burning connections against it.
                resilience.pause(
                    min(self.poll_seconds, self.breaker.cooldown()) or self.poll_seconds,
                    self.stop,
                )
                continue
            try:
                items = self.client.claim(self.worker_id, self.max_items)
            except FabricError as error:
                # The coordinator answered; this is policy, not an outage.
                self.report.claim_failures += 1
                self._log(f"claim rejected: {error}")
                resilience.pause(self.claim_backoff.next_delay(), self.stop)
                continue
            except (urllib.error.URLError, OSError) as error:
                # Coordinator not up (yet) or network blip: back off, and
                # let the breaker decide when polling becomes pointless.
                self.report.claim_failures += 1
                if self.breaker.record_failure():
                    self.report.breaker_opens += 1
                    self._log(
                        f"coordinator unreachable {self.breaker.threshold} times; "
                        f"breaker open for {self.breaker.reset_seconds:g}s"
                    )
                self._log(f"claim failed: {error}")
                resilience.pause(self.claim_backoff.next_delay(), self.stop)
                continue
            self.breaker.record_success()
            self.claim_backoff.reset()
            if not items:
                resilience.pause(
                    resilience.jittered(self.poll_seconds), self.stop
                )
                continue
            for item in items:
                self.report.claimed += 1
                if not self._process(item):
                    return self.report
        return self.report

    # ------------------------------------------------------------------
    def _process(self, item: dict) -> bool:
        """Execute one claimed item; ``False`` ends the run loop (death)."""
        chaos = self.chaos
        if chaos is not None and chaos.mode == "die_after":
            if self.report.completed >= chaos.value:
                # Crash simulation: vanish while holding the lease.  No
                # completion, no heartbeat — the lease must expire.
                self.report.died = True
                self._log(f"chaos: dying while holding {item['item_id']}")
                return False
        if chaos is not None and chaos.mode == "stall":
            # Hang without heartbeating until externally stopped; the
            # coordinator must requeue the item elsewhere.
            self.report.stalled = True
            self._log(f"chaos: stalling on {item['item_id']}")
            self.stop.wait()
            return False

        try:
            jobs = wire.decode_jobs(item["jobs"])
        except wire.IntegrityError as error:
            # A mangled claim payload: drop the lease (it will expire).
            self.report.errors += 1
            self._log(f"claim payload corrupt: {error}")
            return True

        heartbeat_stop = threading.Event()
        interval = max(0.02, float(item.get("lease_seconds", 30.0)) / 3.0)

        def beat() -> None:
            while not heartbeat_stop.wait(interval):
                try:
                    status = self.client.heartbeat(self.worker_id, [item["item_id"]])
                except (FabricError, urllib.error.URLError, OSError):
                    return  # coordinator gone; the run loop will notice
                if item["item_id"] in status.get("lost", ()):
                    # The lease expired and was reassigned: stop renewing a
                    # lease this worker no longer holds — beating on would
                    # fight the new holder for it.
                    self.report.leases_lost += 1
                    self._log(f"lease lost on {item['item_id']}; heartbeat stopped")
                    return

        beater = threading.Thread(
            target=beat, name=f"repro-heartbeat-{item['item_id']}", daemon=True
        )
        beater.start()
        try:
            recording = (
                RecordingCache(self.cache_dir) if self.cache_dir is not None else None
            )
            outcomes, error = execute_chunk(jobs, trial_cache=recording)
        finally:
            heartbeat_stop.set()
            beater.join(timeout=5)

        record: dict = {
            "item_id": item["item_id"],
            "worker": self.worker_id,
            "error": None if error is None else f"{type(error).__name__}: {error}",
            "outcomes": [
                wire.encode_blob(
                    pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
                )
                for outcome in outcomes
            ],
            "extras": [
                {"key": key, **wire.encode_blob(blob)}
                for key, blob in sorted(recording.recorded.items())
            ]
            if recording is not None
            else [],
        }
        if chaos is not None and chaos.mode == "corrupt":
            _corrupt_record(record)
        try:
            self.client.complete(self.worker_id, record)
            self.report.completed += 1
            self.upload_backoff.reset()
            self._log(
                f"completed {item['item_id']} ({len(outcomes)} results)"
            )
        except FabricError as error:
            self.report.rejected += 1
            self.report.rejected_messages.append(str(error))
            self._log(f"upload rejected ({error.status}): {error}")
            # Back off before claiming again, and escalate on repetition:
            # whatever corrupted this upload (bad serialisation, flaky disk,
            # chaos) will likely corrupt the next one too, and the rejected
            # item was just requeued at the front — a tight retry loop would
            # race healthier workers for it and burn through its lease budget.
            resilience.pause(self.upload_backoff.next_delay(), self.stop)
        except (urllib.error.URLError, OSError) as error:
            self.report.errors += 1
            self._log(f"upload failed: {error}")
            resilience.pause(self.upload_backoff.next_delay(), self.stop)
        return True

    def _log(self, message: str) -> None:
        if self.log is not None:
            self.log(f"[{self.worker_id}] {message}")


def _corrupt_record(record: dict) -> None:
    """Chaos ``corrupt``: flip a payload byte *after* digests were declared,
    so the upload's content no longer matches its sha256."""
    import base64

    blobs = record["outcomes"] or record["extras"]
    if not blobs:
        record["outcomes"] = [{"data": "", "sha256": "0" * 64}]
        return
    target = blobs[0]
    raw = bytearray(base64.b64decode(target["data"]))
    if raw:
        raw[len(raw) // 2] ^= 0xFF
    else:
        raw = bytearray(b"\x00")
    target["data"] = base64.b64encode(bytes(raw)).decode("ascii")


def run_worker(
    url: str,
    *,
    worker_id: str | None = None,
    cache_dir: str | None = None,
    poll_seconds: float = 0.2,
    max_items: int = 1,
    chaos_text: str | None = None,
) -> int:
    """Blocking entry point behind ``python -m repro worker``."""
    chaos = parse_chaos(
        chaos_text if chaos_text is not None else knobs.get("REPRO_CHAOS")
    )
    worker = Worker(
        url,
        worker_id=worker_id,
        cache_dir=cache_dir,
        poll_seconds=poll_seconds,
        max_items=max_items,
        chaos=chaos,
        log=lambda message: print(
            f"[repro.worker] {message}", file=sys.stderr, flush=True
        ),
    )
    cache_note = worker.cache_dir if worker.cache_dir is not None else "disabled"
    print(
        f"[repro.worker] {worker.worker_id} polling {url} (cache: {cache_note})",
        file=sys.stderr,
        flush=True,
    )
    started = time.monotonic()
    try:
        report = worker.run()
    except KeyboardInterrupt:
        report = worker.report
    print(
        f"[repro.worker] {worker.worker_id} exiting after "
        f"{time.monotonic() - started:.1f}s: claimed={report.claimed} "
        f"completed={report.completed} rejected={report.rejected} "
        f"errors={report.errors}",
        file=sys.stderr,
        flush=True,
    )
    return 0
