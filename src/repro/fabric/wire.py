"""Wire helpers of the distributed fabric: integrity-checked blob records.

Everything crossing the coordinator/worker boundary that is not plain JSON
— pickled :class:`~repro.runtime.jobs.SimJob` chunks going out, pickled
result records coming back — travels as a *blob record*: base64 data plus
the SHA-256 of the raw bytes.  The receiving side re-derives the digest
before trusting the payload, so a corrupted or tampered upload is rejected
at the door instead of poisoning the content-addressed cache (whose whole
correctness story is that a key's bytes are what the key says they are).
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import pickle

from repro.fabric.unpickle import UnpickleError, restricted_loads
from repro.runtime.jobs import SimJob

#: Hex alphabet of cache keys / digests — also the path-safety gate for the
#: ``/v1/cache/entry/<key>`` route (a key is used as a file name).
_HEX = set("0123456789abcdef")


class IntegrityError(ValueError):
    """A blob whose content does not match its declared digest (or cannot
    be decoded at all).  The coordinator reports it as a ``400`` and
    requeues the work item — the corrupt payload never lands anywhere."""


def digest(blob: bytes) -> str:
    """SHA-256 hex digest of raw bytes (the fabric's integrity primitive)."""
    return hashlib.sha256(blob).hexdigest()


def is_content_key(text: str) -> bool:
    """Whether ``text`` looks like a cache key (64 lowercase hex chars)."""
    return len(text) == 64 and set(text) <= _HEX


def encode_blob(blob: bytes) -> dict:
    """Blob record of raw bytes: base64 data + content digest."""
    return {
        "data": base64.b64encode(blob).decode("ascii"),
        "sha256": digest(blob),
    }


def decode_blob(record: dict) -> bytes:
    """Raw bytes of one blob record, digest-verified.

    Raises :class:`IntegrityError` when the record is malformed or the
    content hash does not match the declared one.
    """
    if not isinstance(record, dict) or "data" not in record:
        raise IntegrityError("blob record must be an object with a data field")
    try:
        blob = base64.b64decode(record["data"], validate=True)
    except (binascii.Error, TypeError, ValueError) as error:
        raise IntegrityError(f"malformed base64 payload: {error}") from None
    declared = record.get("sha256")
    if not isinstance(declared, str) or digest(blob) != declared:
        raise IntegrityError("payload content does not match its declared sha256")
    return blob


def encode_jobs(jobs: list[SimJob]) -> dict:
    """One claimable chunk's jobs as a single pickled blob record."""
    return encode_blob(pickle.dumps(list(jobs), protocol=pickle.HIGHEST_PROTOCOL))


def decode_jobs(record: dict) -> list[SimJob]:
    """The jobs of a claimed chunk, digest-verified and unpickled.

    Unpickling goes through the restricted fabric unpickler — a claim
    response comes off the network, so it gets data-not-code treatment just
    like an upload (a hostile coordinator must not own its workers).
    """
    blob = decode_blob(record)
    try:
        jobs = restricted_loads(blob)
    except UnpickleError as error:
        raise IntegrityError(f"job payload does not unpickle: {error}") from None
    if not isinstance(jobs, list) or not all(isinstance(j, SimJob) for j in jobs):
        raise IntegrityError("job payload is not a list of SimJobs")
    return jobs


def parse_json_body(body: bytes) -> dict:
    """A request body as a JSON object; :class:`ValueError` otherwise."""
    try:
        record = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"malformed JSON body: {error}") from None
    if not isinstance(record, dict):
        raise ValueError("body must be a JSON object")
    return record
