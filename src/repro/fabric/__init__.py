"""Distributed execution fabric: pull workers behind the batch runner.

``REPRO_POOL=remote`` swaps the runner's local process pool for a
coordinator-side work queue: dispatch chunks become lease-claimable items,
external ``python -m repro worker <url>`` processes pull, execute and
upload them, and every completed result lands in the coordinator's
content-addressed cache exactly as a local run would have written it —
same cache keys, same figure bytes.  See the README's "Distributed
sweeps" section for the operational story and
:mod:`repro.fabric.queue` for the lease/verification protocol.
"""

from repro.fabric.wire import IntegrityError
from repro.fabric.queue import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    FabricError,
    RemoteWorkerError,
    WorkItem,
    WorkQueue,
    lease_seconds_from_env,
    max_attempts_from_env,
)
from repro.fabric.executor import RemoteExecutor
from repro.fabric.worker import (
    Chaos,
    RecordingCache,
    Worker,
    WorkerReport,
    parse_chaos,
    run_worker,
)
from repro.fabric.sync import PullReport, pull_cache, pull_loop
from repro.fabric.coordinator import (
    Coordinator,
    reset_shared_fabric,
    runtime_executor,
    set_shared_coordinator,
    shared_coordinator,
    shared_queue,
)

__all__ = [
    "Chaos",
    "Coordinator",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "FabricError",
    "IntegrityError",
    "PullReport",
    "RecordingCache",
    "RemoteExecutor",
    "RemoteWorkerError",
    "Worker",
    "WorkerReport",
    "WorkItem",
    "WorkQueue",
    "lease_seconds_from_env",
    "max_attempts_from_env",
    "parse_chaos",
    "pull_cache",
    "pull_loop",
    "reset_shared_fabric",
    "run_worker",
    "runtime_executor",
    "set_shared_coordinator",
    "shared_coordinator",
    "shared_queue",
]
