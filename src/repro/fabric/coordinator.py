"""The coordinator: process-wide queue, executor and (optional) listener.

A process becomes a coordinator the moment a runner in ``REPRO_POOL=remote``
mode dispatches its first batch: :func:`runtime_executor` materialises the
shared :class:`Coordinator` — one :class:`~repro.fabric.queue.WorkQueue`
plus its :class:`~repro.fabric.executor.RemoteExecutor` — and, unless the
environment says otherwise, starts the standalone HTTP listener so workers
can reach the queue.  The serving front-end (``python -m repro serve``)
suppresses the extra listener and mounts the same routes on its own port
instead; either way there is exactly one queue per process, so every
surface hands out the same work.

Environment knobs:

* ``REPRO_FABRIC_LISTEN=0`` — never auto-start the standalone listener
  (the serve front-end sets this; tests driving in-process workers too).
* ``REPRO_FABRIC_HOST`` / ``REPRO_FABRIC_PORT`` — bind address of the
  standalone listener (default ``127.0.0.1:8735``; port ``0`` picks free).
"""

from __future__ import annotations

import asyncio
import sys
import threading

from repro import knobs
from repro.fabric.executor import RemoteExecutor
from repro.fabric.queue import WorkQueue
from repro.runtime.cache import ResultCache
from repro.serve.http import (
    HttpError,
    body_bound_for_path,
    encode_response,
    read_request,
)

DEFAULT_FABRIC_PORT = 8735


def _env_cache() -> ResultCache | None:
    """The coordinator-process cache the listener's ``/v1/cache`` routes
    serve (mirrors the runner's own env-default cache selection)."""
    if not knobs.get("REPRO_CACHE"):
        return None
    return ResultCache()


class Coordinator:
    """Owns one work queue, its executor face, and at most one listener."""

    def __init__(
        self,
        queue: WorkQueue | None = None,
        cache: ResultCache | None = None,
    ) -> None:
        self.queue = queue if queue is not None else WorkQueue()
        self.executor = RemoteExecutor(self.queue)
        self.cache = cache if cache is not None else _env_cache()
        self._listener: _FabricListener | None = None  # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def url(self) -> str | None:
        """The standalone listener's URL, if one is running."""
        # Lock-free read: a listener is installed at most once and never
        # replaced, so the worst case is reporting None during startup.
        listener = self._listener  # repro: allow[lock-discipline]
        return listener.url if listener is not None else None

    def ensure_listener(
        self, host: str | None = None, port: int | None = None
    ) -> str:
        """Start (or return) the standalone work listener; returns its URL.

        Refuses (``ValueError``) to bind a non-loopback address unless
        ``REPRO_FABRIC_TOKEN`` is set — the work routes deserialize pickled
        uploads, so an open listener would be remote code execution.
        """
        from repro.fabric.api import require_loopback_or_token

        bind_host = host or knobs.get("REPRO_FABRIC_HOST")
        require_loopback_or_token(bind_host, surface="the fabric listener")
        with self._lock:
            if self._listener is None:
                listener = _FabricListener(
                    self,
                    host=bind_host,
                    port=(
                        port
                        if port is not None
                        else knobs.get("REPRO_FABRIC_PORT")
                    ),
                )
                listener.start()
                self._listener = listener
                print(
                    f"[repro.fabric] coordinator listening on {listener.url} "
                    f"(workers: python -m repro worker {listener.url})",
                    file=sys.stderr,
                    flush=True,
                )
            return self._listener.url

    def close(self) -> None:
        """Stop the listener (the queue itself has nothing to tear down)."""
        with self._lock:
            listener, self._listener = self._listener, None
        if listener is not None:
            listener.stop()


class _FabricListener:
    """A minimal asyncio HTTP server on its own thread, serving only the
    fabric routes.  Deliberately smaller than the serve front-end: no ETags,
    no background jobs — just the work-queue and cache-replication protocol
    over the same request/response plumbing."""

    def __init__(self, coordinator: Coordinator, host: str, port: int) -> None:
        self.coordinator = coordinator
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-fabric", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Late imports: api pulls in serve.wire, which the fabric package
        # must not import at module load (serve.app imports repro.fabric).
        from repro.fabric import api
        from repro.serve.http import Response
        from repro.serve.wire import dump_body, error_record, health_record

        try:
            while True:
                keep_alive = False
                try:
                    # Per-route bound: only /v1/work/complete admits large
                    # uploads; the other fabric routes parse tiny records.
                    request = await read_request(
                        reader, max_body=body_bound_for_path
                    )
                    if request is None:
                        break
                    keep_alive = not request.wants_close()
                    path = request.path.rstrip("/") or "/"
                    if path == "/healthz":
                        response = Response(
                            status=200, body=dump_body(health_record())
                        )
                    elif api.is_fabric_path(path):
                        response = await asyncio.to_thread(
                            api.dispatch_route,
                            path,
                            request,
                            self.coordinator.queue,
                            self.coordinator.cache,
                        )
                    else:
                        response = Response(
                            status=404,
                            body=dump_body(
                                error_record(404, f"no route for {request.path}")
                            ),
                        )
                except HttpError as error:
                    response = Response(
                        status=error.status,
                        body=dump_body(error_record(error.status, error.message)),
                    )
                writer.write(encode_response(response, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port)
            )
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            # Cancel parked keep-alive handlers before wait_closed() — the
            # same shutdown ordering BackgroundServer needs (wait_closed()
            # blocks on open connections from Python 3.12.1 on).
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            loop.run_until_complete(server.wait_closed())
            loop.close()

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)


# ----------------------------------------------------------------------
# The process-wide coordinator singleton
# ----------------------------------------------------------------------
_shared: Coordinator | None = None
_shared_lock = threading.Lock()


def shared_coordinator() -> Coordinator:
    """The process-wide coordinator, created on first use."""
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = Coordinator()
        return _shared


def set_shared_coordinator(coordinator: Coordinator) -> None:
    """Install a pre-configured coordinator (tests and benches use this to
    pin lease lengths or a specific listener port)."""
    global _shared
    with _shared_lock:
        previous, _shared = _shared, coordinator
    if previous is not None and previous is not coordinator:
        previous.close()


def shared_queue() -> WorkQueue:
    """The shared coordinator's queue (never starts a listener)."""
    return shared_coordinator().queue


def reset_shared_fabric() -> None:
    """Stop and forget the shared coordinator (tests use this between
    scenarios; outstanding futures of the dropped queue never resolve)."""
    global _shared
    with _shared_lock:
        previous, _shared = _shared, None
    if previous is not None:
        previous.close()


def runtime_executor() -> RemoteExecutor:
    """What ``acquire_executor("remote", ...)`` hands the batch runner.

    Auto-starts the standalone listener unless ``REPRO_FABRIC_LISTEN=0``
    (the serve front-end and the in-process test harness both set it — they
    already expose the queue another way, or do not need HTTP at all).
    """
    coordinator = shared_coordinator()
    if knobs.get("REPRO_FABRIC_LISTEN"):
        coordinator.ensure_listener()
    return coordinator.executor
