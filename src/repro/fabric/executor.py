"""The ``Executor`` face of the fabric queue.

:class:`RemoteExecutor` is what ``REPRO_POOL=remote`` hands the batch
runner in place of a process pool.  It implements exactly the slice of the
:class:`concurrent.futures.Executor` contract the runner uses — ``submit``
returning a future, ``shutdown`` — so the runner's cost-grouped LPT
scheduling, sliding dispatch window, streaming caching and ``on_result``
progress all work unchanged; only *where* a chunk executes differs.

The runner's dispatch call is
``executor.submit(execute_chunk, jobs, trial_cache=<cache dir or None>)``;
the submission becomes a keyed work item on the
:class:`~repro.fabric.queue.WorkQueue` (the keys are computed here, on the
coordinator, so uploads can be verified against them) and the returned
future resolves to the same ``(outcomes, error)`` pair a local pool worker
would have produced.

There is deliberately no retry or timeout logic here: give-up behaviour
belongs to the queue's :class:`~repro.resilience.LeasePolicy` (an item
that burns its lease budget resolves its future with the give-up error),
and the runner blocks on futures exactly as it does on a local pool.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, Future

from repro.fabric.queue import WorkQueue
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import SimJob, execute_chunk


class RemoteExecutor(Executor):
    """Dispatches the runner's chunks to the fabric's pull queue."""

    def __init__(self, queue: WorkQueue) -> None:
        self.queue = queue

    def submit(self, fn, /, *args, **kwargs) -> Future:
        if fn is not execute_chunk:
            raise TypeError(
                "RemoteExecutor only dispatches execute_chunk batches, "
                f"got {fn!r}"
            )
        if len(args) != 1:
            raise TypeError("execute_chunk takes exactly one positional argument")
        jobs: list[SimJob] = args[0]
        trial_cache = kwargs.pop("trial_cache", None)
        if kwargs:
            raise TypeError(f"unexpected keyword arguments {sorted(kwargs)}")
        # The runner ships its cache as a directory across the pool boundary
        # (see BatchRunner._execute_stream); a live ResultCache would only
        # appear via direct embedding — reduce it to its directory too.
        if isinstance(trial_cache, ResultCache):
            extras_dir: str | None = str(trial_cache.directory)
        elif trial_cache is not None:
            extras_dir = os.fspath(trial_cache)
        else:
            extras_dir = None
        chunk = [(job.key(), job) for job in jobs]
        return self.queue.submit_chunk(chunk, extras_dir=extras_dir)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """No-op: the queue (and any attached workers) outlive one batch."""
