"""HTTP routes of the fabric, shared by every coordinator surface.

Two listeners expose the work queue: the serving front-end
(:mod:`repro.serve.app` mounts these routes next to its figure/sweep
endpoints, so one port serves queries *and* feeds workers) and the
standalone fabric listener a ``REPRO_POOL=remote`` CLI run starts on its
own (:mod:`repro.fabric.coordinator`).  Both call :func:`dispatch_route`
with their queue and cache, so the protocol cannot drift between surfaces.

Routes::

    POST /v1/work/claim          {"worker": id, "max_items": n}
    POST /v1/work/heartbeat      {"worker": id, "items": [item ids]}
    POST /v1/work/complete       a completion record (see fabric.queue)
    GET  /v1/work/stats          queue telemetry snapshot
    GET  /v1/cache/keys          the coordinator cache's key inventory
    GET  /v1/cache/entry/<key>   one raw entry (octet-stream + digest header)

``/v1/cache/*`` is what makes peer caches mergeable: ``python -m repro
cache pull <url>`` diffs the inventory against its local cache and fetches
only the missing entries, digest-verified (see :mod:`repro.fabric.sync`).
"""

from __future__ import annotations

from repro.fabric import wire as fabric_wire
from repro.fabric.queue import FabricError, WorkQueue
from repro.metrics.results import RESULT_SCHEMA_VERSION
from repro.runtime.cache import ResultCache
from repro.serve.http import Request, Response
from repro.serve.wire import CONTENT_DIGEST_HEADER, dump_body, error_record

def is_fabric_path(path: str) -> bool:
    """Whether ``path`` belongs to the fabric's route family (the serve
    router's delegation test)."""
    return (
        path.startswith("/v1/work/")
        or path == "/v1/cache/keys"
        or path.startswith("/v1/cache/entry/")
    )


def dispatch_route(
    path: str, request: Request, queue: WorkQueue, cache: ResultCache | None
) -> Response:
    """Answer one fabric-route request (the caller already matched the
    prefix with :func:`is_fabric_path`).  Runs synchronously — the async
    listeners call it via ``asyncio.to_thread`` since completions write to
    disk and uploads are CPU-bound to verify."""
    try:
        if path == "/v1/work/stats":
            if request.method != "GET":
                return _error(405, "work stats is GET")
            return _json(200, _stats_record(queue))
        if path.startswith("/v1/work/"):
            if request.method != "POST":
                return _error(405, "work endpoints are POST")
            try:
                record = fabric_wire.parse_json_body(request.body)
            except ValueError as error:
                return _error(400, str(error))
            if path == "/v1/work/claim":
                return _claim(queue, record)
            if path == "/v1/work/heartbeat":
                return _heartbeat(queue, record)
            if path == "/v1/work/complete":
                return _complete(queue, record)
            return _error(404, f"no work route {path!r}")
        if path == "/v1/cache/keys":
            if request.method != "GET":
                return _error(405, "cache keys is GET")
            return _json(200, _keys_record(cache))
        if path.startswith("/v1/cache/entry/"):
            if request.method != "GET":
                return _error(405, "cache entries are GET")
            return _entry(cache, path.removeprefix("/v1/cache/entry/"))
        return _error(404, f"no fabric route {path!r}")
    except FabricError as error:
        return _error(error.status, error.message)


# ----------------------------------------------------------------------
# Work queue
# ----------------------------------------------------------------------
def _claim(queue: WorkQueue, record: dict) -> Response:
    worker = str(record.get("worker") or "anonymous")
    try:
        max_items = max(1, min(64, int(record.get("max_items", 1))))
    except (TypeError, ValueError):
        return _error(400, "max_items must be an integer")
    items, outstanding = queue.claim(worker, max_items)
    return _json(
        200,
        {
            "kind": "work_claim",
            "schema": RESULT_SCHEMA_VERSION,
            "worker": worker,
            "items": items,
            "outstanding": outstanding,
        },
    )


def _heartbeat(queue: WorkQueue, record: dict) -> Response:
    worker = str(record.get("worker") or "anonymous")
    item_ids = record.get("items")
    if not isinstance(item_ids, list) or not all(
        isinstance(item_id, str) for item_id in item_ids
    ):
        return _error(400, "items must be a list of item ids")
    outcome = queue.heartbeat(worker, item_ids)
    return _json(
        200,
        {"kind": "work_heartbeat", "schema": RESULT_SCHEMA_VERSION, **outcome},
    )


def _complete(queue: WorkQueue, record: dict) -> Response:
    worker = str(record.get("worker") or "anonymous")
    outcome = queue.complete(worker, record)
    return _json(
        200,
        {"kind": "work_complete", "schema": RESULT_SCHEMA_VERSION, **outcome},
    )


def _stats_record(queue: WorkQueue) -> dict:
    return {
        "kind": "work_stats",
        "schema": RESULT_SCHEMA_VERSION,
        **queue.snapshot(),
    }


# ----------------------------------------------------------------------
# Cache replication
# ----------------------------------------------------------------------
def _keys_record(cache: ResultCache | None) -> dict:
    keys = cache.keys() if cache is not None else []
    return {
        "kind": "cache_keys",
        "schema": RESULT_SCHEMA_VERSION,
        "entries": len(keys),
        "keys": keys,
    }


def _entry(cache: ResultCache | None, key: str) -> Response:
    # Keys double as file names; only the content-hash alphabet may pass.
    if not fabric_wire.is_content_key(key):
        return _error(404, f"not a cache key: {key!r}")
    blob = cache.get_blob(key) if cache is not None else None
    if blob is None:
        return _error(404, f"no cache entry {key}")
    return Response(
        status=200,
        body=blob,
        content_type="application/octet-stream",
        headers={CONTENT_DIGEST_HEADER: fabric_wire.digest(blob)},
    )


def _json(status: int, record: dict) -> Response:
    return Response(status=status, body=dump_body(record))


def _error(status: int, message: str) -> Response:
    return _json(status, error_record(status, message))
