"""HTTP routes of the fabric, shared by every coordinator surface.

Two listeners expose the work queue: the serving front-end
(:mod:`repro.serve.app` mounts these routes next to its figure/sweep
endpoints, so one port serves queries *and* feeds workers) and the
standalone fabric listener a ``REPRO_POOL=remote`` CLI run starts on its
own (:mod:`repro.fabric.coordinator`).  Both call :func:`dispatch_route`
with their queue and cache, so the protocol cannot drift between surfaces.

Routes::

    POST /v1/work/claim          {"worker": id, "max_items": n}
    POST /v1/work/heartbeat      {"worker": id, "items": [item ids]}
    POST /v1/work/complete       a completion record (see fabric.queue)
    GET  /v1/work/stats          queue telemetry snapshot
    GET  /v1/cache/keys          the coordinator cache's key inventory
    GET  /v1/cache/entry/<key>   one raw entry (octet-stream + digest header)

``/v1/cache/*`` is what makes peer caches mergeable: ``python -m repro
cache pull <url>`` diffs the inventory against its local cache and fetches
only the missing entries, digest-verified (see :mod:`repro.fabric.sync`).

Security model: work uploads are *pickled* payloads, so anyone who can
POST to these routes can execute code in the coordinator process.  Two
gates keep that surface closed by default:

* the serve front-end only mounts fabric routes when its session actually
  runs in remote pool mode (``REPRO_POOL=remote``) — a plain query server
  never carries them;
* when ``REPRO_FABRIC_TOKEN`` is set, every fabric request must present it
  in the ``X-Repro-Fabric-Token`` header (compared constant-time), and
  :func:`require_loopback_or_token` refuses to *bind* a fabric surface to
  a non-loopback address without one.  Workers and ``cache pull`` read the
  same variable and attach the header automatically.
"""

from __future__ import annotations

import hmac

from repro import knobs
from repro.fabric import wire as fabric_wire
from repro.fabric.queue import FabricError, WorkQueue
from repro.metrics.results import RESULT_SCHEMA_VERSION
from repro.runtime.cache import ResultCache
from repro.serve.http import Request, Response
from repro.serve.wire import CONTENT_DIGEST_HEADER, dump_body, error_record

#: Header carrying the shared fabric secret (lowercased form is what the
#: parsed :class:`~repro.serve.http.Request` stores).
TOKEN_HEADER = "X-Repro-Fabric-Token"

#: Bind addresses that are reachable from the local host only.
LOOPBACK_HOSTS = frozenset({"127.0.0.1", "localhost", "::1"})


def fabric_token() -> str | None:
    """The shared secret from ``REPRO_FABRIC_TOKEN`` (``None`` when unset)."""
    return knobs.get("REPRO_FABRIC_TOKEN")


def check_token(request: Request) -> None:
    """Enforce the shared secret on one fabric request.

    A no-op while no token is configured; with one set, a request whose
    ``X-Repro-Fabric-Token`` header does not match (constant-time compare)
    is refused with a ``403`` before any route logic runs.
    """
    token = fabric_token()
    if token is None:
        return
    presented = request.headers.get(TOKEN_HEADER.lower(), "")
    if not hmac.compare_digest(presented.encode(), token.encode()):
        raise FabricError(
            403, f"fabric routes require a valid {TOKEN_HEADER} header"
        )


def require_loopback_or_token(host: str, *, surface: str) -> None:
    """Refuse to expose fabric routes beyond loopback without a token.

    Work uploads deserialize pickled payloads, so an unauthenticated
    non-loopback fabric listener is remote code execution for anyone who
    can reach the port.  Called before binding; raises :class:`ValueError`
    with the remediation (set ``REPRO_FABRIC_TOKEN`` on the coordinator
    and every worker/peer).
    """
    if host in LOOPBACK_HOSTS or fabric_token() is not None:
        return
    raise ValueError(
        f"refusing to bind {surface} on {host!r}: fabric work uploads are "
        "pickled payloads, so a non-loopback listener without auth lets "
        "anyone on the network run code in this process. Set "
        "REPRO_FABRIC_TOKEN (the same value on the coordinator and every "
        "worker/peer) or bind to 127.0.0.1."
    )


def is_fabric_path(path: str) -> bool:
    """Whether ``path`` belongs to the fabric's route family (the serve
    router's delegation test)."""
    return (
        path.startswith("/v1/work/")
        or path == "/v1/cache/keys"
        or path.startswith("/v1/cache/entry/")
    )


def dispatch_route(
    path: str, request: Request, queue: WorkQueue, cache: ResultCache | None
) -> Response:
    """Answer one fabric-route request (the caller already matched the
    prefix with :func:`is_fabric_path`).  Runs synchronously — the async
    listeners call it via ``asyncio.to_thread`` since completions write to
    disk and uploads are CPU-bound to verify."""
    try:
        check_token(request)
        if path == "/v1/work/stats":
            if request.method != "GET":
                return _error(405, "work stats is GET")
            return _json(200, _stats_record(queue))
        if path.startswith("/v1/work/"):
            if request.method != "POST":
                return _error(405, "work endpoints are POST")
            try:
                record = fabric_wire.parse_json_body(request.body)
            except ValueError as error:
                return _error(400, str(error))
            if path == "/v1/work/claim":
                return _claim(queue, record)
            if path == "/v1/work/heartbeat":
                return _heartbeat(queue, record)
            if path == "/v1/work/complete":
                return _complete(queue, record)
            return _error(404, f"no work route {path!r}")
        if path == "/v1/cache/keys":
            if request.method != "GET":
                return _error(405, "cache keys is GET")
            return _json(200, _keys_record(cache))
        if path.startswith("/v1/cache/entry/"):
            if request.method != "GET":
                return _error(405, "cache entries are GET")
            return _entry(cache, path.removeprefix("/v1/cache/entry/"))
        return _error(404, f"no fabric route {path!r}")
    except FabricError as error:
        return _error(error.status, error.message)


# ----------------------------------------------------------------------
# Work queue
# ----------------------------------------------------------------------
def _claim(queue: WorkQueue, record: dict) -> Response:
    worker = str(record.get("worker") or "anonymous")
    try:
        max_items = max(1, min(64, int(record.get("max_items", 1))))
    except (TypeError, ValueError):
        return _error(400, "max_items must be an integer")
    items, outstanding = queue.claim(worker, max_items)
    return _json(
        200,
        {
            "kind": "work_claim",
            "schema": RESULT_SCHEMA_VERSION,
            "worker": worker,
            "items": items,
            "outstanding": outstanding,
        },
    )


def _heartbeat(queue: WorkQueue, record: dict) -> Response:
    worker = str(record.get("worker") or "anonymous")
    item_ids = record.get("items")
    if not isinstance(item_ids, list) or not all(
        isinstance(item_id, str) for item_id in item_ids
    ):
        return _error(400, "items must be a list of item ids")
    outcome = queue.heartbeat(worker, item_ids)
    return _json(
        200,
        {"kind": "work_heartbeat", "schema": RESULT_SCHEMA_VERSION, **outcome},
    )


def _complete(queue: WorkQueue, record: dict) -> Response:
    worker = str(record.get("worker") or "anonymous")
    outcome = queue.complete(worker, record)
    return _json(
        200,
        {"kind": "work_complete", "schema": RESULT_SCHEMA_VERSION, **outcome},
    )


def _stats_record(queue: WorkQueue) -> dict:
    return {
        "kind": "work_stats",
        "schema": RESULT_SCHEMA_VERSION,
        **queue.snapshot(),
    }


# ----------------------------------------------------------------------
# Cache replication
# ----------------------------------------------------------------------
def _keys_record(cache: ResultCache | None) -> dict:
    keys = cache.keys() if cache is not None else []
    return {
        "kind": "cache_keys",
        "schema": RESULT_SCHEMA_VERSION,
        "entries": len(keys),
        "keys": keys,
    }


def _entry(cache: ResultCache | None, key: str) -> Response:
    # Keys double as file names; only the content-hash alphabet may pass.
    if not fabric_wire.is_content_key(key):
        return _error(404, f"not a cache key: {key!r}")
    blob = cache.get_blob(key) if cache is not None else None
    if blob is None:
        return _error(404, f"no cache entry {key}")
    return Response(
        status=200,
        body=blob,
        content_type="application/octet-stream",
        headers={CONTENT_DIGEST_HEADER: fabric_wire.digest(blob)},
    )


def _json(status: int, record: dict) -> Response:
    return Response(status=status, body=dump_body(record))


def _error(status: int, message: str) -> Response:
    return _json(status, error_record(status, message))
