"""Anti-entropy cache replication: ``python -m repro cache pull <url>``.

The result cache is content-addressed by everything a simulation depends
on, so two peers' caches can never disagree about a key — an entry is
either absent or byte-identical.  Merging is therefore pure anti-entropy:
diff the peer's key inventory (``GET /v1/cache/keys``) against the local
:meth:`~repro.runtime.cache.ResultCache.missing` probe, fetch only the
absent entries (``GET /v1/cache/entry/<key>``), verify each blob against
the digest header and a trial unpickle, and store the raw bytes.  A
corrupt or vanished entry — or one whose response carries *no* digest
header at all (a proxy or foreign peer that stripped it) — is skipped,
never stored: the local cache can only gain verified entries.

Transient transport failures (peer restarting, network blip) are retried
under the shared resilience policy (``REPRO_RETRY_ATTEMPTS`` attempts,
``REPRO_BACKOFF_*`` pacing); HTTP-level answers are not — a ``404`` means
the entry was pruned between inventory and fetch, and retrying would not
bring it back.  :func:`pull_loop` runs pulls continuously with a jittered
interval, the follower mode behind ``cache pull --interval``.

When the peer requires the shared fabric secret (``REPRO_FABRIC_TOKEN``),
the same environment variable makes every request carry it.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro import resilience
from repro.fabric import wire
from repro.fabric.unpickle import UnpickleError, restricted_loads
from repro.runtime.cache import ResultCache
from repro.serve.wire import CONTENT_DIGEST_HEADER

#: Transport-level failures worth retrying.  ``HTTPError`` is an
#: ``OSError`` subclass but represents a *delivered* answer, so retry
#: loops veto it via ``giveup`` rather than by exception type.
TRANSIENT_ERRORS = (urllib.error.URLError, OSError)


def _is_http_answer(error: BaseException) -> bool:
    return isinstance(error, urllib.error.HTTPError)


@dataclass(frozen=True)
class PullReport:
    """Outcome of one :func:`pull_cache` run."""

    remote_entries: int
    already_present: int
    fetched: int
    skipped: int


def _open(url: str, timeout: float):
    """``urlopen`` with the shared fabric secret attached when configured."""
    from repro.fabric.api import TOKEN_HEADER, fabric_token

    headers = {}
    token = fabric_token()
    if token is not None:
        headers[TOKEN_HEADER] = token
    return urllib.request.urlopen(
        urllib.request.Request(url, headers=headers), timeout=timeout
    )


def pull_cache(
    cache: ResultCache,
    base_url: str,
    timeout: float | None = None,
    *,
    stop: threading.Event | None = None,
    log=None,
) -> PullReport:
    """Merge every entry the peer at ``base_url`` has and we do not."""
    base = base_url.rstrip("/")
    wait = timeout if timeout is not None else resilience.http_timeout()

    def fetch_inventory():
        with _open(base + "/v1/cache/keys", wait) as response:
            return json.loads(response.read().decode("utf-8"))

    record = resilience.retry_call(
        fetch_inventory,
        retryable=TRANSIENT_ERRORS,
        giveup=_is_http_answer,
        stop=stop,
        log=log,
        describe="cache inventory fetch",
    )
    keys = record.get("keys", [])
    if not isinstance(keys, list):
        raise ValueError("peer's cache inventory is malformed")
    keys = [key for key in keys if isinstance(key, str) and wire.is_content_key(key)]
    absent = cache.missing(keys)
    fetched = 0
    skipped = 0
    for key in absent:
        def fetch_entry(key=key):
            with _open(base + "/v1/cache/entry/" + key, wait) as response:
                return response.read(), response.headers.get(CONTENT_DIGEST_HEADER)

        try:
            blob, declared = resilience.retry_call(
                fetch_entry,
                retryable=TRANSIENT_ERRORS,
                giveup=_is_http_answer,
                stop=stop,
                log=log,
                describe=f"cache entry fetch ({key[:16]}…)",
            )
        except urllib.error.HTTPError:
            skipped += 1  # pruned (or never served) between inventory and fetch
            continue
        except TRANSIENT_ERRORS:
            skipped += 1  # peer unreachable past the retry budget
            continue
        if declared is None or wire.digest(blob) != declared:
            # No digest header means no provenance (a proxy stripped it, or
            # the peer is not a repro coordinator) — as unacceptable as a
            # mismatch.  Skipping keeps "digest-verified before storing"
            # strict instead of best-effort.
            skipped += 1
            continue
        try:
            restricted_loads(blob)
        except UnpickleError:
            skipped += 1  # does not decode; a stored copy could never hit
            continue
        cache.put_blob(key, blob)
        fetched += 1
    return PullReport(
        remote_entries=len(keys),
        already_present=len(keys) - len(absent),
        fetched=fetched,
        skipped=skipped,
    )


def pull_loop(
    cache: ResultCache,
    base_url: str,
    interval: float,
    *,
    rounds: int | None = None,
    stop: threading.Event | None = None,
    timeout: float | None = None,
    log=None,
) -> int:
    """Run :func:`pull_cache` continuously, ``interval`` seconds apart.

    The follower mode behind ``cache pull --interval``: each round merges
    whatever the peer gained since the last one, then sleeps a *jittered*
    interval so a fleet of followers spreads its polls instead of hitting
    the coordinator in phase.  A round that fails outright (peer down past
    the retry budget) is logged and the loop carries on — a follower's job
    is to still be there when the peer comes back.  Runs forever unless
    ``rounds`` bounds it or ``stop`` is set; returns the rounds completed.
    """
    done = 0
    while rounds is None or done < rounds:
        if stop is not None and stop.is_set():
            break
        try:
            report = pull_cache(cache, base_url, timeout, stop=stop, log=log)
        except (ValueError, *TRANSIENT_ERRORS) as error:
            if log is not None:
                log(f"pull round failed: {error}")
        else:
            if log is not None:
                log(
                    f"pull round {done + 1}: fetched={report.fetched} "
                    f"present={report.already_present} skipped={report.skipped}"
                )
        done += 1
        if rounds is not None and done >= rounds:
            break
        if resilience.pause(resilience.jittered(interval), stop):
            break
    return done
