"""Anti-entropy cache replication: ``python -m repro cache pull <url>``.

The result cache is content-addressed by everything a simulation depends
on, so two peers' caches can never disagree about a key — an entry is
either absent or byte-identical.  Merging is therefore pure anti-entropy:
diff the peer's key inventory (``GET /v1/cache/keys``) against the local
:meth:`~repro.runtime.cache.ResultCache.missing` probe, fetch only the
absent entries (``GET /v1/cache/entry/<key>``), verify each blob against
the digest header and a trial unpickle, and store the raw bytes.  A
corrupt or vanished entry — or one whose response carries *no* digest
header at all (a proxy or foreign peer that stripped it) — is skipped,
never stored: the local cache can only gain verified entries.

When the peer requires the shared fabric secret (``REPRO_FABRIC_TOKEN``),
the same environment variable makes every request carry it.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro.fabric import wire
from repro.fabric.unpickle import UnpickleError, restricted_loads
from repro.runtime.cache import ResultCache
from repro.serve.wire import CONTENT_DIGEST_HEADER


@dataclass(frozen=True)
class PullReport:
    """Outcome of one :func:`pull_cache` run."""

    remote_entries: int
    already_present: int
    fetched: int
    skipped: int


def _open(url: str, timeout: float):
    """``urlopen`` with the shared fabric secret attached when configured."""
    from repro.fabric.api import TOKEN_HEADER, fabric_token

    headers = {}
    token = fabric_token()
    if token is not None:
        headers[TOKEN_HEADER] = token
    return urllib.request.urlopen(
        urllib.request.Request(url, headers=headers), timeout=timeout
    )


def pull_cache(
    cache: ResultCache, base_url: str, timeout: float = 60.0
) -> PullReport:
    """Merge every entry the peer at ``base_url`` has and we do not."""
    base = base_url.rstrip("/")
    with _open(base + "/v1/cache/keys", timeout) as response:
        record = json.loads(response.read().decode("utf-8"))
    keys = record.get("keys", [])
    if not isinstance(keys, list):
        raise ValueError("peer's cache inventory is malformed")
    keys = [key for key in keys if isinstance(key, str) and wire.is_content_key(key)]
    absent = cache.missing(keys)
    fetched = 0
    skipped = 0
    for key in absent:
        try:
            with _open(base + "/v1/cache/entry/" + key, timeout) as response:
                blob = response.read()
                declared = response.headers.get(CONTENT_DIGEST_HEADER)
        except urllib.error.HTTPError:
            skipped += 1  # pruned (or never served) between inventory and fetch
            continue
        if declared is None or wire.digest(blob) != declared:
            # No digest header means no provenance (a proxy stripped it, or
            # the peer is not a repro coordinator) — as unacceptable as a
            # mismatch.  Skipping keeps "digest-verified before storing"
            # strict instead of best-effort.
            skipped += 1
            continue
        try:
            restricted_loads(blob)
        except UnpickleError:
            skipped += 1  # does not decode; a stored copy could never hit
            continue
        cache.put_blob(key, blob)
        fetched += 1
    return PullReport(
        remote_entries=len(keys),
        already_present=len(keys) - len(absent),
        fetched=fetched,
        skipped=skipped,
    )
