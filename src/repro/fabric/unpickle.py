"""The fabric's restricted unpickler: deserialize data, never code.

Digest verification (:mod:`repro.fabric.wire`) proves a payload arrived
intact; it says nothing about what the payload *does* when unpickled.  A
raw ``pickle.loads`` resolves arbitrary globals, so anyone holding a valid
``REPRO_FABRIC_TOKEN`` — or sitting on the loopback — could upload a blob
whose reduce hook runs ``os.system``.  Every unpickle of
network-originated bytes therefore goes through :func:`restricted_loads`,
whose ``find_class`` resolves only:

* classes defined in this package (``repro.*`` — job descriptions, result
  records, sparse formats, layer specs, ...),
* the numpy array-reconstruction machinery (result records carry arrays),
* a small set of harmless builtin container types.

Anything else — ``os.system``, ``builtins.eval``, ``subprocess.*`` — fails
with :class:`UnpickleError` before any of its code can run.  The
``pickle-boundary`` rule of ``python -m repro.analyze`` pins this module
(plus the purely process-local :mod:`repro.runtime.cache`) as the only
place ``pickle.loads`` may appear.
"""

from __future__ import annotations

import io
import pickle

#: Builtins a result payload may legitimately reference.  Note: no
#: functions, no ``getattr``/``eval``/``exec`` — types only.
_SAFE_BUILTINS = frozenset(
    {"set", "frozenset", "complex", "bytearray", "range", "slice"}
)

#: Numpy globals the array pickle protocol resolves.  Array payloads reduce
#: to ``_reconstruct``/``ndarray``/``dtype`` (+ ``scalar`` for 0-d values);
#: the multiarray module moved between numpy 1.x and 2.x, so both homes are
#: listed.
_SAFE_NUMPY = {
    "numpy": frozenset({"ndarray", "dtype", "int64", "float64", "bool_"}),
    "numpy.core.multiarray": frozenset({"_reconstruct", "scalar"}),
    "numpy._core.multiarray": frozenset({"_reconstruct", "scalar"}),
}


class UnpickleError(ValueError):
    """A payload that does not unpickle under the fabric allowlist —
    malformed bytes, or a reference to a global the boundary refuses to
    resolve.  Callers treat it exactly like a failed digest check."""


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        if name in _SAFE_NUMPY.get(module, ()):
            return super().find_class(module, name)
        if module == "builtins" and name in _SAFE_BUILTINS:
            return super().find_class(module, name)
        raise UnpickleError(
            f"fabric payload references disallowed global {module}.{name}"
        )


def restricted_loads(blob: bytes) -> object:
    """Unpickle network-originated bytes under the fabric allowlist.

    Raises :class:`UnpickleError` for anything that is not a well-formed
    pickle of allowlisted types — including truncated data and protocol
    errors, so callers need exactly one except clause at the boundary.
    """
    try:
        return _RestrictedUnpickler(io.BytesIO(blob)).load()
    except UnpickleError:
        raise
    except Exception as error:
        raise UnpickleError(f"payload does not unpickle: {error}") from None
