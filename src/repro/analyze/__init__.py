"""``repro.analyze`` — the repo-invariant static-analysis pass.

``python -m repro.analyze --check`` parses every module under
``src/repro`` (stdlib ``ast``; the analyzed code is never imported) and
enforces the invariants the test suite can only sample:

=================  ====================================================
rule               invariant
=================  ====================================================
``determinism``    cache-key/wire paths call no clocks, randomness or
                   per-process identity; no numpy global-RNG use anywhere
``lock-discipline``  ``# guarded-by: <lock>``-annotated attributes are
                   only touched under ``with self.<lock>:``
``pickle-boundary``  ``pickle.loads`` only in the restricted unpickler
                   and the local result cache
``env-knob``       ``REPRO_*`` env reads go through :mod:`repro.knobs`
``wire-hygiene``   mounted routes match the documented route tables;
                   knobs are documented in README; wire dataclass edits
                   bump their schema version (schema lock)
``bare-except``    broad handlers re-raise, bind-and-report, or carry an
                   explicit allow comment
=================  ====================================================

Suppress a single site with a ``# repro: allow[rule]`` comment; pre-
existing findings are grandfathered in ``analyze_baseline.txt`` (which
may only shrink).  See the README's "Static analysis" section.
"""

from __future__ import annotations

from repro.analyze import (
    bare_except,
    determinism,
    env_knobs,
    locks,
    pickle_boundary,
    wire_hygiene,
)
from repro.analyze.core import Finding, Module, Project, load_project

#: Every checker, in report order.
CHECKERS = (
    determinism,
    locks,
    pickle_boundary,
    env_knobs,
    wire_hygiene,
    bare_except,
)

#: Every rule name a suppression comment may reference.
RULES = tuple(checker.RULE for checker in CHECKERS)


def run_checkers(project: Project) -> list[Finding]:
    """All findings over one project, sorted for stable output."""
    findings: list[Finding] = []
    for checker in CHECKERS:
        findings.extend(checker.check(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.context))
    return findings


__all__ = [
    "CHECKERS",
    "RULES",
    "Finding",
    "Module",
    "Project",
    "load_project",
    "run_checkers",
]
