"""CLI of the static analyzer: ``python -m repro.analyze [options]``.

Modes (see the README's "Static analysis" section for the workflow):

* default            — report non-baselined findings, always exit 0.
* ``--check``        — exit 1 on any non-baselined finding *or* any stale
                       baseline entry (the baseline may only shrink).
* ``--baseline``     — rewrite ``analyze_baseline.txt`` from the current
                       findings.
* ``--refresh-schema-lock`` — re-record the wire schema fingerprints
                       after a deliberate version bump.
* ``--knobs-table``  — print the README knobs table generated from
                       :mod:`repro.knobs`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analyze import run_checkers
from repro.analyze.core import load_project, read_baseline, write_baseline
from repro.analyze.wire_hygiene import compute_schema_lock


def default_paths():
    """(scan root, readme, baseline, schema lock) for the installed tree."""
    package_dir = Path(__file__).resolve().parent.parent  # src/repro
    repo_root = package_dir.parent.parent
    return (
        package_dir,
        repo_root / "README.md",
        repo_root / "analyze_baseline.txt",
        package_dir / "analyze" / "schema_lock.json",
    )


def _print_knobs_table() -> None:
    from repro import knobs

    print("| Variable | Meaning |")
    print("| --- | --- |")
    for name, doc in knobs.table_rows():
        print(f"| `{name}` | {doc} |")


def main(argv: list[str] | None = None) -> int:
    scan_root, readme, baseline_path, lock_path = default_paths()
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Repo-invariant static analysis over src/repro.",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on new findings or stale baseline entries",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="rewrite the baseline file from the current findings",
    )
    parser.add_argument(
        "--refresh-schema-lock", action="store_true",
        help="re-record the wire schema fingerprints",
    )
    parser.add_argument(
        "--knobs-table", action="store_true",
        help="print the README knobs table from repro.knobs",
    )
    parser.add_argument(
        "--root", type=Path, default=scan_root,
        help="directory to scan (default: the installed repro package)",
    )
    args = parser.parse_args(argv)

    if args.knobs_table:
        _print_knobs_table()
        return 0

    project = load_project(
        args.root, readme=readme, schema_lock=lock_path
    )

    if args.refresh_schema_lock:
        record = compute_schema_lock(project)
        lock_path.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"schema lock refreshed: {lock_path}")
        return 0

    findings = run_checkers(project)

    if args.baseline:
        write_baseline(baseline_path, {f.identity() for f in findings})
        print(f"baseline written: {baseline_path} ({len(findings)} findings)")
        return 0

    baseline = read_baseline(baseline_path)
    current = {f.identity() for f in findings}
    fresh = [f for f in findings if f.identity() not in baseline]
    stale = sorted(baseline - current)

    for finding in fresh:
        print(finding.render())
    for entry in stale:
        print(f"stale baseline entry (fix is in — prune it): {entry}")

    grandfathered = len(findings) - len(fresh)
    summary = (
        f"{len(fresh)} new finding(s), {grandfathered} baselined, "
        f"{len(stale)} stale baseline entr(y/ies) "
        f"over {len(project.modules)} modules"
    )
    print(summary)

    if args.check and (fresh or stale):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
