"""Rule ``lock-discipline`` — annotated attributes stay under their lock.

The runner, cache, fabric queue, serve executor and API session all share
mutable state across threads and protect it with per-instance locks.  The
convention is declared in the code itself: the ``__init__`` assignment of
a guarded attribute carries a ``# guarded-by: _lock`` comment naming the
lock attribute.  This checker reads those annotations and then verifies
that **every other** ``self.<attr>`` access in the class sits lexically
inside a matching ``with self.<lock>:`` block.

Escapes, in keeping with the repo's conventions:

* ``__init__`` itself (no concurrent access before construction returns),
* methods whose name ends in ``_locked`` (documented must-hold-lock
  helpers — their *callers* are checked instead),
* sites with an explicit ``# repro: allow[lock-discipline]`` comment,
  which is how deliberate lock-free fast paths (double-checked reads)
  stay visible and auditable.
"""

from __future__ import annotations

import ast
import re

from repro.analyze.core import Finding, Module, Project, emit

RULE = "lock-discipline"

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_SELF_ATTR_RE = re.compile(r"self\.([A-Za-z_]\w*)\s*(?::[^=]+)?[+\-|&^]?=[^=]")


def _class_registry(module: Module) -> dict[str, dict[str, str]]:
    """class name -> {attr: lock attr} from ``guarded-by`` annotations."""
    annotated: dict[int, str] = {}
    for number, text in enumerate(module.lines, start=1):
        match = _GUARDED_RE.search(text)
        if match:
            annotated[number] = match.group(1)
    if not annotated:
        return {}
    registry: dict[str, dict[str, str]] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for line, lock in annotated.items():
            if not (node.lineno <= line <= getattr(node, "end_lineno", node.lineno)):
                continue
            attr_match = _SELF_ATTR_RE.search(module.lines[line - 1])
            if attr_match:
                registry.setdefault(node.name, {})[attr_match.group(1)] = lock
    return registry


def _with_locks(node: ast.AST) -> set[str]:
    """Lock attribute names a ``with`` statement acquires (``self.X`` items)."""
    locks: set[str] = set()
    if isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                locks.add(expr.attr)
    return locks


def _check_method(
    module: Module,
    class_name: str,
    method: ast.FunctionDef,
    guarded: dict[str, str],
    findings: list[Finding],
) -> None:
    def visit(node: ast.AST, held: frozenset) -> None:
        now_held = held | _with_locks(node)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guarded
            and guarded[node.attr] not in held
        ):
            lock = guarded[node.attr]
            emit(
                findings, module, RULE, node.lineno,
                f"{class_name}.{method.name} touches self.{node.attr} "
                f"(guarded by {lock}) outside `with self.{lock}:`",
                f"{class_name}.{method.name}->{node.attr}",
            )
        for child in ast.iter_child_nodes(node):
            visit(child, now_held)

    for statement in method.body:
        visit(statement, frozenset())


def check_module(module: Module, findings: list[Finding]) -> None:
    registry = _class_registry(module)
    if not registry:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in registry:
            continue
        guarded = registry[node.name]
        for child in node.body:
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if child.name == "__init__" or child.name.endswith("_locked"):
                continue
            _check_method(module, node.name, child, guarded, findings)


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        check_module(module, findings)
    return findings
