"""Core of the ``repro.analyze`` static-analysis framework.

The analyzer parses every module under a scan root with the stdlib ``ast``
module — no third-party dependency, no import of the analyzed code — and
runs a fixed set of repo-specific checkers over the parsed project
(:mod:`determinism <repro.analyze.determinism>`, :mod:`lock discipline
<repro.analyze.locks>`, :mod:`pickle boundary
<repro.analyze.pickle_boundary>`, :mod:`env knobs
<repro.analyze.env_knobs>`, :mod:`wire hygiene
<repro.analyze.wire_hygiene>`, :mod:`bare except
<repro.analyze.bare_except>`).

Three framework-level mechanisms live here:

* **Findings** — a finding's :meth:`Finding.identity` deliberately excludes
  the line number, so unrelated edits above a grandfathered finding do not
  churn the baseline file.
* **Suppressions** — a ``# repro: allow[rule]`` comment on the offending
  line (or on a comment-only line directly above it) silences one or more
  named rules at that site; the comment itself documents why.
* **Baseline** — ``analyze_baseline.txt`` at the repo root grandfathers
  pre-existing findings.  ``--check`` fails on any finding not in the
  baseline *and* on any baseline entry that no longer fires (the file may
  only shrink; prune fixed entries with ``--baseline``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: ``# repro: allow[rule-a,rule-b]`` — the one suppression syntax.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([a-z\-,\s]+)\]")

#: A line carrying nothing but a comment (suppressions may sit one above).
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str
    path: str
    line: int
    message: str
    #: Stable site label (function/route/attribute, not a line number) —
    #: the baseline matches on this, so findings survive unrelated edits.
    context: str

    def identity(self) -> str:
        return f"{self.path}::{self.rule}::{self.context}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Module:
    """One parsed source file."""

    #: Posix path relative to the scan root's parent (``repro/...``).
    rel: str
    source: str
    lines: list[str]
    tree: ast.Module
    #: line number -> set of rule names allowed on that line.
    allow: dict[int, set[str]] = field(default_factory=dict)

    def is_allowed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is suppressed at ``line``.

        True when the line itself carries the allow comment, or the line
        directly above is a comment-only line carrying it.
        """
        if rule in self.allow.get(line, ()):
            return True
        above = line - 1
        if rule in self.allow.get(above, ()) and above >= 1:
            return bool(_COMMENT_ONLY_RE.match(self.lines[above - 1]))
        return False

    def docstring(self) -> str:
        return ast.get_docstring(self.tree) or ""


@dataclass
class Project:
    """Everything one analysis run looks at."""

    #: Directory the module ``rel`` paths are relative to.
    root: Path
    modules: list[Module]
    #: README text for doc-sync checks (empty when the tree has none).
    readme: str = ""
    #: Where the wire-hygiene checker reads/writes its schema lock.
    schema_lock_path: Path | None = None

    def module(self, rel_suffix: str) -> Module | None:
        """The unique module whose ``rel`` ends with ``rel_suffix``."""
        hits = [m for m in self.modules if m.rel.endswith(rel_suffix)]
        return hits[0] if len(hits) == 1 else None


def _parse_allows(lines: list[str]) -> dict[int, set[str]]:
    allow: dict[int, set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _ALLOW_RE.search(text)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            allow[number] = {rule for rule in rules if rule}
    return allow


def load_module(path: Path, rel: str) -> Module:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    return Module(rel=rel, source=source, lines=lines, tree=tree,
                  allow=_parse_allows(lines))


def load_project(
    scan_root: Path,
    *,
    rel_base: Path | None = None,
    readme: Path | None = None,
    schema_lock: Path | None = None,
) -> Project:
    """Parse every ``*.py`` under ``scan_root`` into a :class:`Project`.

    ``rel_base`` (default: the scan root's parent) anchors the stored
    relative paths, so scanning ``src/repro`` yields ``repro/...`` names.
    """
    base = rel_base if rel_base is not None else scan_root.parent
    modules = [
        load_module(path, path.relative_to(base).as_posix())
        for path in sorted(scan_root.rglob("*.py"))
    ]
    readme_text = ""
    if readme is not None and readme.is_file():
        readme_text = readme.read_text(encoding="utf-8")
    return Project(
        root=base,
        modules=modules,
        readme=readme_text,
        schema_lock_path=schema_lock,
    )


# ----------------------------------------------------------------------
# Shared AST helpers (used by several checkers)
# ----------------------------------------------------------------------
def import_map(tree: ast.Module) -> dict[str, tuple[str, str | None]]:
    """Alias -> imported thing, for every top-of-module-visible import.

    ``import time``            -> ``{"time": ("time", None)}``
    ``import numpy as np``     -> ``{"np": ("numpy", None)}``
    ``from time import time``  -> ``{"time": ("time", "time")}``
    ``from os import urandom as u`` -> ``{"u": ("os", "urandom")}``

    The second element is ``None`` for a module import and the original
    member name for a from-import.
    """
    aliases: dict[str, tuple[str, str | None]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name, None
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name != "*":
                    aliases[item.asname or item.name] = (node.module, item.name)
    return aliases


def functions_with_context(tree: ast.Module):
    """Yield ``(qualname, class_name_or_None, funcdef)`` for every function.

    ``qualname`` is ``Class.method`` for methods, the bare name otherwise;
    nested functions get their own entry (qualified by the enclosing
    function), so reachability walks see their bodies too.
    """

    def visit(node, prefix: str, cls: str | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, cls, child
                yield from visit(child, f"{qual}.", cls)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.", child.name)
            else:
                yield from visit(child, prefix, cls)

    yield from visit(tree, "", None)


def enclosing_function_name(module: Module, line: int) -> str:
    """Qualname of the innermost function containing ``line`` (for finding
    contexts); ``"<module>"`` at module level."""
    best: tuple[int, str] | None = None
    for qual, _cls, funcdef in functions_with_context(module.tree):
        end = getattr(funcdef, "end_lineno", funcdef.lineno)
        if funcdef.lineno <= line <= end:
            if best is None or funcdef.lineno > best[0]:
                best = (funcdef.lineno, qual)
    return best[1] if best is not None else "<module>"


def emit(
    findings: list[Finding],
    module: Module,
    rule: str,
    line: int,
    message: str,
    context: str,
) -> None:
    """Append one finding unless an allow comment suppresses it."""
    if not module.is_allowed(line, rule):
        findings.append(
            Finding(rule=rule, path=module.rel, line=line,
                    message=message, context=context)
        )


# ----------------------------------------------------------------------
# Baseline file
# ----------------------------------------------------------------------
def read_baseline(path: Path) -> set[str]:
    if not path.is_file():
        return set()
    entries = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def write_baseline(path: Path, identities: set[str]) -> None:
    header = (
        "# Grandfathered repro.analyze findings — this file may only shrink.\n"
        "# Regenerate with: python -m repro.analyze --baseline\n"
    )
    body = "".join(f"{entry}\n" for entry in sorted(identities))
    path.write_text(header + body, encoding="utf-8")
