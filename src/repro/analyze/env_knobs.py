"""Rule ``env-knob`` — ``REPRO_*`` environment reads go through the registry.

:mod:`repro.knobs` declares every knob exactly once (name, default,
parser, doc line); this rule keeps it that way by flagging any direct
``os.environ.get("REPRO_…")`` / ``os.environ["REPRO_…"]`` /
``os.getenv("REPRO_…")`` read outside the registry module itself.

Only *reads* are flagged: ``os.environ.setdefault`` / subscript
assignment (the CLI and test bootstrap configuring child behaviour)
remain direct — the registry centralises where values are interpreted,
not where they are produced.
"""

from __future__ import annotations

import ast

from repro.analyze.core import (
    Finding,
    Module,
    Project,
    emit,
    enclosing_function_name,
)

RULE = "env-knob"

#: The one module allowed to read ``REPRO_*`` from the environment.
REGISTRY_MODULE = "repro/knobs.py"


def _repro_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value.startswith("REPRO_"):
            return node.value
    return None


def _is_os_environ(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


def check_module(module: Module, findings: list[Finding]) -> None:
    if module.rel.endswith(REGISTRY_MODULE):
        return

    def flag(node: ast.AST, name: str, how: str) -> None:
        emit(
            findings, module, RULE, node.lineno,
            f"direct {how} read of {name}; use repro.knobs.get({name!r})",
            f"{enclosing_function_name(module, node.lineno)}->{name}",
        )

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            if (
                func.attr == "get"
                and _is_os_environ(func.value)
                and node.args
            ):
                name = _repro_name(node.args[0])
                if name:
                    flag(node, name, "os.environ.get")
            elif (
                func.attr == "getenv"
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
                and node.args
            ):
                name = _repro_name(node.args[0])
                if name:
                    flag(node, name, "os.getenv")
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and _is_os_environ(node.value)
        ):
            name = _repro_name(node.slice)
            if name:
                flag(node, name, "os.environ[]")


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        check_module(module, findings)
    return findings
