"""Rule ``pickle-boundary`` — ``pickle.loads`` only where it is defensible.

Unpickling runs code, so where it may appear is a security decision, not a
style one.  Exactly two modules are allowed to deserialize pickles:

* ``repro/fabric/unpickle.py`` — the restricted unpickler itself, which is
  *how* network-originated bytes are deserialized (``find_class``
  allowlist), and
* ``repro/runtime/cache.py`` — the local result cache, which only ever
  reads bytes this same user wrote to their own cache directory.

Everything else (queue uploads, claim payloads, replication pulls) must go
through :func:`repro.fabric.unpickle.restricted_loads`.  ``pickle.dumps``
is unrestricted — producing a pickle is harmless.
"""

from __future__ import annotations

import ast

from repro.analyze.core import (
    Finding,
    Module,
    Project,
    emit,
    enclosing_function_name,
    import_map,
)

RULE = "pickle-boundary"

#: Modules allowed to unpickle (matched on the tail of the relative path).
ALLOWED_MODULES = ("repro/fabric/unpickle.py", "repro/runtime/cache.py")

#: ``pickle`` members that deserialize.
LOADING_MEMBERS = frozenset({"loads", "load", "Unpickler"})


def _module_allowed(module: Module) -> bool:
    return any(module.rel.endswith(suffix) for suffix in ALLOWED_MODULES)


def check_module(module: Module, findings: list[Finding]) -> None:
    if _module_allowed(module):
        return
    aliases = import_map(module.tree)
    pickle_aliases = {
        alias for alias, (home, member) in aliases.items()
        if home in ("pickle", "cPickle") and member is None
    }
    loader_aliases = {
        alias for alias, (home, member) in aliases.items()
        if home in ("pickle", "cPickle") and member in LOADING_MEMBERS
    }

    def flag(node: ast.AST, label: str) -> None:
        emit(
            findings, module, RULE, node.lineno,
            f"{label} outside the unpickling allowlist "
            "(use repro.fabric.unpickle.restricted_loads)",
            f"{enclosing_function_name(module, node.lineno)}->{label}",
        )

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in pickle_aliases and node.attr in LOADING_MEMBERS:
                flag(node, f"pickle.{node.attr}")
        elif isinstance(node, ast.Name) and node.id in loader_aliases:
            home, member = aliases[node.id]
            flag(node, f"pickle.{member}")


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        check_module(module, findings)
    return findings
