"""Rule ``wire-hygiene`` — the HTTP surface matches what is documented.

Three drift modes between the wire protocol and its documentation are
checked:

1. **Route table.**  Every route literal mounted in ``serve/app.py`` or
   ``fabric/api.py`` (strings starting ``/v1/`` plus ``/healthz``) must
   appear in that module's docstring — the docstring *is* the documented
   route table, so an undocumented route cannot be mounted silently.
2. **Knob docs.**  Every ``REPRO_*`` name declared in ``repro/knobs.py``
   must appear in the README — the knobs table is generated from the
   registry (``python -m repro.analyze --knobs-table``), and this closes
   the loop.
3. **Schema lock.**  ``schema_lock.json`` records each wire schema's
   version constant and a digest of the dataclass field lists behind it
   (``RESULT_SCHEMA_VERSION`` over ``metrics/results.py``,
   ``CACHE_SCHEMA_VERSION`` over ``SimJob``).  Changing the fields without
   bumping the version is flagged (stale cache entries would alias the new
   layout); bumping the version flags once until the lock is refreshed
   (``--refresh-schema-lock``), which makes schema changes deliberate and
   reviewable.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re

from repro.analyze.core import Finding, Module, Project, emit

RULE = "wire-hygiene"

#: Modules whose docstring doubles as the documented route table.
ROUTE_MODULES = ("serve/app.py", "fabric/api.py")

#: (label, module suffix, version constant, class filter or None=every class)
SCHEMA_SOURCES = (
    ("result", "repro/metrics/results.py", "RESULT_SCHEMA_VERSION", None),
    ("cache", "repro/runtime/jobs.py", "CACHE_SCHEMA_VERSION", ("SimJob",)),
)

_KNOB_NAME_RE = re.compile(r'"(REPRO_[A-Z_]+)"')


# ----------------------------------------------------------------------
# 1. Route table
# ----------------------------------------------------------------------
def _route_literals(module: Module):
    """(line, literal) for every mounted-route string constant."""
    doc_node = None
    body = module.tree.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        doc_node = body[0].value
    for node in ast.walk(module.tree):
        if node is doc_node or not isinstance(node, ast.Constant):
            continue
        value = node.value
        if not isinstance(value, str) or any(c.isspace() for c in value):
            continue
        if value == "/healthz" or value.startswith("/v1/"):
            yield node.lineno, value


def _check_routes(module: Module, findings: list[Finding]) -> None:
    doc = module.docstring()
    for line, literal in _route_literals(module):
        if literal not in doc:
            emit(
                findings, module, RULE, line,
                f"route {literal!r} is mounted but absent from the module "
                "docstring's route table",
                f"route:{literal}",
            )


# ----------------------------------------------------------------------
# 2. Knob docs
# ----------------------------------------------------------------------
def _check_knob_docs(project: Project, findings: list[Finding]) -> None:
    registry = project.module("repro/knobs.py")
    if registry is None or not project.readme:
        return
    for match in _KNOB_NAME_RE.finditer(registry.source):
        name = match.group(1)
        if name not in project.readme:
            line = registry.source.count("\n", 0, match.start()) + 1
            emit(
                findings, registry, RULE, line,
                f"knob {name} is registered but undocumented in README.md "
                "(regenerate the table: python -m repro.analyze --knobs-table)",
                f"knob-doc:{name}",
            )


# ----------------------------------------------------------------------
# 3. Schema lock
# ----------------------------------------------------------------------
def _schema_fingerprint(module: Module, version_name: str, class_filter):
    """(version, fields digest, version line) of one schema source."""
    version = None
    version_line = 1
    fields: dict[str, list[str]] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == version_name:
                    if isinstance(node.value, ast.Constant):
                        version = node.value.value
                        version_line = node.lineno
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if class_filter is not None and node.name not in class_filter:
            continue
        names = [
            child.target.id
            for child in node.body
            if isinstance(child, ast.AnnAssign)
            and isinstance(child.target, ast.Name)
        ]
        if names:
            fields[node.name] = names
    blob = json.dumps(fields, sort_keys=True).encode("utf-8")
    return version, hashlib.sha256(blob).hexdigest(), version_line


def compute_schema_lock(project: Project) -> dict:
    """The lock record the current tree implies (``--refresh-schema-lock``)."""
    record: dict = {}
    for label, suffix, version_name, class_filter in SCHEMA_SOURCES:
        module = project.module(suffix)
        if module is None:
            continue
        version, digest, _line = _schema_fingerprint(
            module, version_name, class_filter
        )
        record[label] = {"version": version, "fields_digest": digest}
    return record


def _check_schema_lock(project: Project, findings: list[Finding]) -> None:
    lock_path = project.schema_lock_path
    if lock_path is None:
        return
    locked: dict = {}
    if lock_path.is_file():
        locked = json.loads(lock_path.read_text(encoding="utf-8"))
    for label, suffix, version_name, class_filter in SCHEMA_SOURCES:
        module = project.module(suffix)
        if module is None:
            continue
        version, digest, line = _schema_fingerprint(
            module, version_name, class_filter
        )
        entry = locked.get(label)
        if entry is None:
            emit(
                findings, module, RULE, line,
                f"no schema lock entry for {label!r}; run "
                "python -m repro.analyze --refresh-schema-lock",
                f"schema:{label}:unlocked",
            )
        elif entry.get("version") != version:
            emit(
                findings, module, RULE, line,
                f"{version_name} changed ({entry.get('version')} -> "
                f"{version}); refresh the schema lock "
                "(python -m repro.analyze --refresh-schema-lock)",
                f"schema:{label}:version",
            )
        elif entry.get("fields_digest") != digest:
            emit(
                findings, module, RULE, line,
                f"wire dataclass fields changed without a {version_name} "
                "bump — stale cache entries would alias the new layout",
                f"schema:{label}:fields",
            )


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        if any(module.rel.endswith(suffix) for suffix in ROUTE_MODULES):
            _check_routes(module, findings)
    _check_knob_docs(project, findings)
    _check_schema_lock(project, findings)
    return findings
