"""Rule ``determinism`` — cache-key paths must be pure functions of input.

The whole caching/replication story rests on cache keys and wire records
being bit-stable across processes, machines and Python versions.  Two
sub-rules enforce that statically:

1. **Reachability ban.**  Starting from every function named ``key`` (the
   request/job content keys) and every function in a ``wire.py`` module
   (the serializers ETags and blob records flow through), the checker
   walks the call graph — simple-name resolution, same module first, then
   a cross-module fallback only when at most :data:`MAX_CROSS_CANDIDATES`
   functions project-wide share the name — and flags calls to wall clocks
   (``time.time`` & friends), process-local identity (``id()``,
   ``os.getpid``), randomness (``random.*``, ``os.urandom``, ``uuid4``)
   and iteration over unordered ``set`` expressions.
2. **Global-RNG ban (repo-wide, no reachability needed).**  ``np.random.*``
   stateful calls and zero-argument ``default_rng()`` are flagged
   anywhere: all numpy randomness must flow from an explicit seed
   (``sparse/generate.py`` is the reason this repo reproduces at all).
"""

from __future__ import annotations

import ast

from repro.analyze.core import (
    Finding,
    Module,
    Project,
    emit,
    functions_with_context,
    import_map,
)

RULE = "determinism"

#: Functions whose results differ between runs, by home module.
BANNED_MODULE_MEMBERS: dict[str, frozenset] = {
    "time": frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
         "perf_counter_ns", "process_time", "process_time_ns"}
    ),
    "os": frozenset({"urandom", "getrandom", "getpid"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
}

#: Modules banned wholesale on key paths.
BANNED_MODULES = frozenset({"random", "secrets"})

#: Builtins banned on key paths (``id`` is per-process; ``hash`` of str or
#: bytes changes with the interpreter's hash randomization).
BANNED_BUILTINS = frozenset({"id", "hash"})

#: ``np.random`` attributes that touch numpy's hidden global RNG state.
BANNED_NP_RANDOM = frozenset(
    {"random", "rand", "randn", "randint", "random_sample", "seed",
     "shuffle", "permutation", "choice", "normal", "uniform", "pareto"}
)

#: Cross-module call-resolution cap: a simple name shared by more functions
#: than this (e.g. ``get``, ``run``) is too ambiguous to follow.
MAX_CROSS_CANDIDATES = 3


def _function_index(project: Project):
    """name -> [(module, qualname, funcdef)] over the whole project, plus a
    per-module ``(module, name)`` variant for same-module-first resolution."""
    by_name: dict[str, list] = {}
    by_module_name: dict[tuple[str, str], list] = {}
    class_inits: dict[str, list] = {}
    for module in project.modules:
        for qual, _cls, funcdef in functions_with_context(module.tree):
            entry = (module, qual, funcdef)
            by_name.setdefault(funcdef.name, []).append(entry)
            by_module_name.setdefault((module.rel, funcdef.name), []).append(entry)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, ast.FunctionDef) and child.name in (
                        "__init__", "__post_init__"
                    ):
                        class_inits.setdefault(node.name, []).append(
                            (module, f"{node.name}.{child.name}", child)
                        )
    return by_name, by_module_name, class_inits


def _called_names(funcdef) -> set[str]:
    """Simple names this function's calls resolve through."""
    names: set[str] = set()
    for node in ast.walk(funcdef):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                names.add(node.func.id)
            elif isinstance(node.func, ast.Attribute):
                names.add(node.func.attr)
    return names


def _roots(project: Project):
    """(module, qualname, funcdef) of every reachability root."""
    for module in project.modules:
        wire_module = module.rel.endswith("wire.py")
        for qual, _cls, funcdef in functions_with_context(module.tree):
            if wire_module or funcdef.name == "key":
                yield module, qual, funcdef


def _reachable(project: Project):
    """Every ``(module, qualname, funcdef)`` reachable from the roots."""
    by_name, by_module_name, class_inits = _function_index(project)
    seen: set[int] = set()
    reached: list = []
    frontier = list(_roots(project))
    while frontier:
        module, qual, funcdef = frontier.pop()
        if id(funcdef) in seen:
            continue
        seen.add(id(funcdef))
        reached.append((module, qual, funcdef))
        for name in _called_names(funcdef):
            targets = by_module_name.get((module.rel, name))
            if not targets:
                targets = class_inits.get(name)
            if not targets:
                candidates = by_name.get(name, [])
                targets = (
                    candidates if len(candidates) <= MAX_CROSS_CANDIDATES else []
                )
            frontier.extend(targets)
    return reached


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "set"
    )


def _check_function(
    module: Module, qual: str, funcdef, findings: list[Finding]
) -> None:
    aliases = import_map(module.tree)
    for node in ast.walk(funcdef):
        if isinstance(node, ast.Call):
            label = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
                if name in BANNED_BUILTINS:
                    label = f"{name}()"
                elif name in aliases:
                    home, member = aliases[name]
                    if member is not None and (
                        home in BANNED_MODULES
                        or member in BANNED_MODULE_MEMBERS.get(home, ())
                    ):
                        label = f"{home}.{member}"
            elif isinstance(node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Name
            ):
                base = node.func.value.id
                if base in aliases and aliases[base][1] is None:
                    home = aliases[base][0]
                    if home in BANNED_MODULES or node.func.attr in (
                        BANNED_MODULE_MEMBERS.get(home, ())
                    ):
                        label = f"{home}.{node.func.attr}"
            if label is not None:
                emit(
                    findings, module, RULE, node.lineno,
                    f"{qual} is on a cache-key path but calls "
                    f"nondeterministic {label}",
                    f"{qual}->{label}",
                )
        iterables = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            if _is_set_expression(iterable):
                emit(
                    findings, module, RULE, iterable.lineno,
                    f"{qual} is on a cache-key path but iterates an "
                    "unordered set expression into ordered output",
                    f"{qual}->set-iteration",
                )


def _check_global_rng(module: Module, findings: list[Finding]) -> None:
    aliases = import_map(module.tree)
    numpy_aliases = {
        alias for alias, (home, member) in aliases.items()
        if home == "numpy" and member is None
    }
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        func = node.func
        base = func.value
        if not (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in numpy_aliases
        ):
            continue
        if func.attr in BANNED_NP_RANDOM:
            emit(
                findings, module, RULE, node.lineno,
                f"np.random.{func.attr} uses numpy's hidden global RNG; "
                "thread a seeded Generator instead",
                f"np.random.{func.attr}",
            )
        elif func.attr == "default_rng" and not node.args and not node.keywords:
            emit(
                findings, module, RULE, node.lineno,
                "default_rng() without a seed is entropy-seeded; pass the "
                "explicit seed parameter through",
                "np.random.default_rng()",
            )


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module, qual, funcdef in _reachable(project):
        _check_function(module, qual, funcdef, findings)
    for module in project.modules:
        _check_global_rng(module, findings)
    return findings
