"""Rule ``bare-except`` — no handler swallows errors without accounting.

A broad exception handler is legitimate in exactly three shapes, all of
which keep the error observable:

* it **re-raises** (cleanup wrappers: ``except BaseException: ...; raise``),
* it **binds and uses** the exception (``except Exception as error:`` where
  ``error`` is logged, stored or wrapped), or
* it carries an explicit ``# repro: allow[bare-except]`` comment whose
  neighbouring prose says why discarding the error is the right call.

Everything else — a literal bare ``except:``, or a silent
``except Exception: pass`` — is flagged.  Narrow handlers
(``except OSError:`` etc.) are never the business of this rule.
"""

from __future__ import annotations

import ast

from repro.analyze.core import (
    Finding,
    Module,
    Project,
    emit,
    enclosing_function_name,
)

RULE = "bare-except"

_BROAD = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Name) and node.id in _BROAD:
        return True
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(item, ast.Name) and item.id in _BROAD
            for item in node.elts
        )
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _binds_and_uses(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    for statement in handler.body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Name) and node.id == handler.name:
                return True
    return False


def check_module(module: Module, findings: list[Finding]) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler) or not _is_broad(node):
            continue
        if _reraises(node) or _binds_and_uses(node):
            continue
        caught = "bare except:" if node.type is None else "except Exception"
        emit(
            findings, module, RULE, node.lineno,
            f"{caught} silently discards the error; narrow it, re-raise, "
            "or bind and report the exception",
            f"{enclosing_function_name(module, node.lineno)}->except",
        )


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        check_module(module, findings)
    return findings
