"""Experiment harness: the code paths behind every table and figure.

The benchmark scripts under ``benchmarks/`` are thin wrappers around this
package.  Each experiment function returns plain row dictionaries (ready for
:func:`repro.metrics.format_table`) so the same code also powers the examples
and can be reused programmatically.
"""

from repro.experiments.settings import ExperimentSettings, default_settings
from repro.experiments.layerwise import (
    LayerwiseResults,
    collate_layerwise,
    layerwise_jobs,
    run_layerwise_comparison,
    layerwise_speedup_rows,
    onchip_traffic_rows,
    miss_rate_rows,
    offchip_traffic_rows,
)
from repro.experiments.end_to_end import (
    EndToEndResults,
    collate_end_to_end,
    end_to_end_jobs,
    run_end_to_end,
    end_to_end_speedup_rows,
    performance_per_area_rows,
    best_dataflow_per_layer_rows,
    model_statistics_rows,
)
from repro.experiments.area import area_power_rows, naive_comparison_rows

__all__ = [
    "ExperimentSettings",
    "default_settings",
    "LayerwiseResults",
    "collate_layerwise",
    "layerwise_jobs",
    "run_layerwise_comparison",
    "layerwise_speedup_rows",
    "onchip_traffic_rows",
    "miss_rate_rows",
    "offchip_traffic_rows",
    "EndToEndResults",
    "collate_end_to_end",
    "end_to_end_jobs",
    "run_end_to_end",
    "end_to_end_speedup_rows",
    "performance_per_area_rows",
    "best_dataflow_per_layer_rows",
    "model_statistics_rows",
    "area_power_rows",
    "naive_comparison_rows",
]
