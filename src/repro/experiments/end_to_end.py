"""End-to-end experiments over the eight DNN models (Figs. 1, 12, 18 and Table 2).

One call to :func:`run_end_to_end` executes (a sampled, scaled version of)
every model on the CPU baseline and the four accelerator designs; the
per-figure ``*_rows`` helpers then turn the shared results into the rows each
figure or table reports.  Results are cached per settings object.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.accelerators import (
    CpuMklLikeBaseline,
    FlexagonAccelerator,
    GammaLikeAccelerator,
    SigmaLikeAccelerator,
    SparchLikeAccelerator,
    accelerator_area_power,
)
from repro.core.scheduler import DnnScheduler, LayerExecution
from repro.core.mapper import OracleMapper
from repro.experiments.settings import ExperimentSettings, default_settings
from repro.metrics.results import ModelSimResult, geometric_mean
from repro.workloads.layers import LayerSpec, materialize_layer
from repro.workloads.models import MODEL_REGISTRY, ModelSpec

DESIGN_ORDER = ("SIGMA-like", "SpArch-like", "GAMMA-like", "Flexagon")

_DESIGN_CLASSES = {
    "SIGMA-like": SigmaLikeAccelerator,
    "SpArch-like": SparchLikeAccelerator,
    "GAMMA-like": GammaLikeAccelerator,
    "Flexagon": FlexagonAccelerator,
}


def _build_design(design: str, config):
    """Instantiate one design; Flexagon gets the oracle mapper.

    The paper configures Flexagon with the most suitable dataflow per layer
    (the offline mapper/compiler of Fig. 3b); the oracle mapper reproduces
    that by simulating the candidate dataflows and picking the fastest.
    """
    if design == "Flexagon":
        return FlexagonAccelerator(config, mapper=OracleMapper(config))
    return _DESIGN_CLASSES[design](config)


@dataclass
class EndToEndResults:
    """End-to-end results for every model and design (plus the CPU baseline)."""

    settings: ExperimentSettings
    #: ``accelerator_results[model_short_name][design]`` -> :class:`ModelSimResult`.
    accelerator_results: dict[str, dict[str, ModelSimResult]]
    #: CPU cycles per model (model short name -> cycles of the sampled chain).
    cpu_cycles: dict[str, float]
    #: CPU seconds per model.
    cpu_seconds: dict[str, float]
    #: Number of layers actually simulated per model (after sampling).
    sampled_layers: dict[str, int]
    #: Extrapolation factor (total layers / sampled layers) per model.
    extrapolation: dict[str, float]
    #: The (scaled) accelerator configuration used for each model.
    configs: dict[str, "object"] = None

    def model_names(self) -> list[str]:
        """Model short names in Table 2 order."""
        return list(self.accelerator_results)

    def accelerator_seconds(self, model: str, design: str) -> float:
        """Wall-clock seconds of one design on one model (sampled chain)."""
        cycles = self.accelerator_results[model][design].total_cycles
        return self.settings.config.cycles_to_seconds(cycles)

    def accelerator_seconds_full_size(self, model: str, design: str) -> float:
        """Estimated seconds of the *full-size* (Table 5) datapath on the same work.

        Scaled runs use a datapath shrunk by ``scaled_multipliers / 64``; the
        accelerator's cycle count is throughput-bound, so the full-size design
        would finish the same (scaled) workload roughly that factor faster.
        The CPU baseline is never scaled, so Fig. 12's CPU-relative speed-ups
        use this estimate.
        """
        seconds = self.accelerator_seconds(model, design)
        config = (self.configs or {}).get(model, self.settings.config)
        datapath_fraction = config.num_multipliers / self.settings.config.num_multipliers
        return seconds * datapath_fraction


def _sample_layers(model: ModelSpec, max_layers: int) -> list[LayerSpec]:
    """Evenly sample up to ``max_layers`` layers of a model, keeping order."""
    layers = list(model.layers)
    if len(layers) <= max_layers:
        return layers
    step = len(layers) / max_layers
    return [layers[int(i * step)] for i in range(max_layers)]


@functools.lru_cache(maxsize=4)
def _cached_run(settings: ExperimentSettings) -> EndToEndResults:
    accelerator_results: dict[str, dict[str, ModelSimResult]] = {}
    cpu_cycles: dict[str, float] = {}
    cpu_seconds: dict[str, float] = {}
    sampled_counts: dict[str, int] = {}
    extrapolation: dict[str, float] = {}
    configs: dict[str, object] = {}
    cpu = CpuMklLikeBaseline()

    for short_name, model in MODEL_REGISTRY.items():
        sampled = _sample_layers(model, settings.max_layers_per_model)
        sampled_counts[short_name] = len(sampled)
        extrapolation[short_name] = model.num_layers / len(sampled)

        # One common scale per model keeps successive layers chainable.
        scale = min(settings.layer_scale(spec) for spec in sampled)
        config = settings.scaled_config(scale)
        configs[short_name] = config

        executions = []
        operands = []
        for spec in sampled:
            a, b = materialize_layer(
                spec, scale=scale, seed=spec.deterministic_seed(settings.seed_salt)
            )
            executions.append(LayerExecution(a=a, b=b, name=spec.name))
            operands.append((a, b))

        per_design: dict[str, ModelSimResult] = {}
        for design in DESIGN_ORDER:
            accelerator = _build_design(design, config)
            # Weights are stored offline in both formats and the mapper plans
            # the M/N variants globally, so chains never need conversions
            # (Section 3.3); selection is therefore unconstrained here.
            scheduler = DnnScheduler(accelerator, track_activation_layout=False)
            per_design[design] = scheduler.run_model(executions, model_name=model.name)
        accelerator_results[short_name] = per_design

        cpu_total = cpu.run_model(operands)
        cpu_cycles[short_name] = cpu_total.cycles
        cpu_seconds[short_name] = cpu_total.seconds

    return EndToEndResults(
        settings=settings,
        accelerator_results=accelerator_results,
        cpu_cycles=cpu_cycles,
        cpu_seconds=cpu_seconds,
        sampled_layers=sampled_counts,
        extrapolation=extrapolation,
        configs=configs,
    )


def run_end_to_end(settings: ExperimentSettings | None = None) -> EndToEndResults:
    """Execute the eight models on the CPU and the four designs (cached)."""
    return _cached_run(settings or default_settings())


# ----------------------------------------------------------------------
# Figure 12: end-to-end speed-up over the CPU baseline
# ----------------------------------------------------------------------
def end_to_end_speedup_rows(results: EndToEndResults) -> list[dict[str, object]]:
    """Rows of Fig. 12: per model, each design's speed-up over CPU MKL (in time)."""
    rows = []
    for model in results.model_names():
        cpu_time = results.cpu_seconds[model]
        row: dict[str, object] = {"model": model, "CPU-MKL": 1.0}
        for design in DESIGN_ORDER:
            accel_time = results.accelerator_seconds_full_size(model, design)
            row[design] = cpu_time / accel_time if accel_time else float("inf")
        rows.append(row)
    geo: dict[str, object] = {"model": "GEOMEAN", "CPU-MKL": 1.0}
    for design in DESIGN_ORDER:
        geo[design] = geometric_mean([float(row[design]) for row in rows])
    rows.append(geo)
    return rows


# ----------------------------------------------------------------------
# Figure 18: performance / area
# ----------------------------------------------------------------------
def performance_per_area_rows(results: EndToEndResults) -> list[dict[str, object]]:
    """Rows of Fig. 18: speed-up over SIGMA-like divided by normalised area."""
    areas = {design: accelerator_area_power(design, results.settings.config).total_area
             for design in DESIGN_ORDER}
    sigma_area = areas["SIGMA-like"]
    rows = []
    for model in results.model_names():
        sigma_cycles = results.accelerator_results[model]["SIGMA-like"].total_cycles
        row: dict[str, object] = {"model": model}
        for design in DESIGN_ORDER:
            cycles = results.accelerator_results[model][design].total_cycles
            speedup = sigma_cycles / cycles if cycles else float("inf")
            normalised_area = areas[design] / sigma_area
            row[design] = speedup / normalised_area
        rows.append(row)
    geo: dict[str, object] = {"model": "GEOMEAN"}
    for design in DESIGN_ORDER:
        geo[design] = geometric_mean([float(row[design]) for row in rows])
    rows.append(geo)
    return rows


# ----------------------------------------------------------------------
# Figure 1: best dataflow per layer
# ----------------------------------------------------------------------
def best_dataflow_per_layer_rows(results: EndToEndResults) -> list[dict[str, object]]:
    """Rows of Fig. 1: for every simulated layer, which dataflow family wins.

    The winner is determined exactly as in the paper: by comparing the cycles
    of the three fixed-dataflow designs on that layer.
    """
    rows = []
    for model in results.model_names():
        per_design = results.accelerator_results[model]
        num_layers = len(per_design["SIGMA-like"].layer_results)
        for index in range(num_layers):
            cycles = {
                "IP": per_design["SIGMA-like"].layer_results[index].total_cycles,
                "OP": per_design["SpArch-like"].layer_results[index].total_cycles,
                "Gust": per_design["GAMMA-like"].layer_results[index].total_cycles,
            }
            winner = min(cycles, key=cycles.get)
            rows.append(
                {
                    "model": model,
                    "layer": per_design["SIGMA-like"].layer_results[index].layer_name,
                    "best": winner,
                    "ip_cycles": cycles["IP"],
                    "op_cycles": cycles["OP"],
                    "gust_cycles": cycles["Gust"],
                    "flexagon_choice": per_design["Flexagon"]
                    .layer_results[index]
                    .dataflow.dataflow_class.value,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table 2: model statistics
# ----------------------------------------------------------------------
def model_statistics_rows(results: EndToEndResults) -> list[dict[str, object]]:
    """Rows of Table 2: per model, layer counts, sparsities, sizes and CPU cycles."""
    rows = []
    for short_name, model in MODEL_REGISTRY.items():
        cs_a = [spec.expected_compressed_bytes_a() / 2**20 for spec in model.layers]
        cs_b = [spec.expected_compressed_bytes_b() / 2**20 for spec in model.layers]
        rows.append(
            {
                "model": f"{model.name} ({short_name})",
                "domain": model.domain,
                "layers": model.num_layers,
                "AvSpA(%)": round(100 * model.table2_activation_sparsity, 2),
                "AvSpB(%)": round(100 * model.table2_weight_sparsity, 2),
                "AvCsA(MiB)": sum(cs_a) / len(cs_a),
                "AvCsB(MiB)": sum(cs_b) / len(cs_b),
                "MaxCsA(MiB)": max(cs_a),
                "MaxCsB(MiB)": max(cs_b),
                "paper CPU cycles (1e6)": model.table2_cpu_megacycles,
                "model CPU cycles (1e6, sampled+scaled)": results.cpu_cycles[short_name] / 1e6,
            }
        )
    return rows
