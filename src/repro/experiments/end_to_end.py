"""End-to-end experiments over the eight DNN models (Figs. 1, 12, 18 and Table 2).

One call to :func:`run_end_to_end` executes (a sampled, scaled version of)
every model on the CPU baseline and the four accelerator designs; the
per-figure ``*_rows`` helpers then turn the shared results into the rows each
figure or table reports.

The sweep is expressed as a flat (model, design, layer) job grid submitted
through :class:`repro.runtime.BatchRunner`: layers of a chain are independent
here (the mapper plans format variants globally, Section 3.3, so no
conversion state flows between layers), which makes the grid embarrassingly
parallel and lets the runtime answer repeat runs from its persistent cache.

This module owns the *sweep definition* (:func:`end_to_end_jobs`), the
*collation* of grid results into :class:`EndToEndResults`
(:func:`collate_end_to_end`) and the per-figure row makers.  Execution goes
through the :class:`repro.api.Session` facade; :func:`run_end_to_end` remains
as a deprecated shim over it.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field

from repro.accelerators import accelerator_area_power
from repro.arch.config import AcceleratorConfig
from repro.experiments.settings import ExperimentSettings, default_settings
from repro.metrics.results import (
    RESULT_SCHEMA_VERSION,
    ModelSimResult,
    Row,
    canonical_order,
    check_record_schema,
    geometric_mean,
)
from repro.runtime import CPU_DESIGN, DESIGN_ORDER, BatchRunner, SimJob
from repro.workloads.layers import LayerSpec
from repro.workloads.models import MODEL_REGISTRY, ModelSpec


@dataclass
class EndToEndResults:
    """End-to-end results for every model and design (plus the CPU baseline)."""

    settings: ExperimentSettings
    #: ``accelerator_results[model_short_name][design]`` -> :class:`ModelSimResult`.
    accelerator_results: dict[str, dict[str, ModelSimResult]]
    #: CPU cycles per model (model short name -> cycles of the sampled chain).
    cpu_cycles: dict[str, float]
    #: CPU seconds per model.
    cpu_seconds: dict[str, float]
    #: Number of layers actually simulated per model (after sampling).
    sampled_layers: dict[str, int]
    #: Extrapolation factor (total layers / sampled layers) per model.
    extrapolation: dict[str, float]
    #: The (scaled) accelerator configuration used for each model.
    configs: dict[str, AcceleratorConfig] = field(default_factory=dict)

    def model_names(self) -> list[str]:
        """Model short names in Table 2 order."""
        return list(self.accelerator_results)

    # ------------------------------------------------------------------
    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form (versioned; see :mod:`repro.metrics.results`)."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "end_to_end",
            "settings": self.settings.to_record(),
            "accelerator_results": {
                model: {
                    design: record.to_record() for design, record in per_design.items()
                }
                for model, per_design in self.accelerator_results.items()
            },
            "cpu_cycles": {k: float(v) for k, v in self.cpu_cycles.items()},
            "cpu_seconds": {k: float(v) for k, v in self.cpu_seconds.items()},
            "sampled_layers": {k: int(v) for k, v in self.sampled_layers.items()},
            "extrapolation": {k: float(v) for k, v in self.extrapolation.items()},
            "configs": {k: config.to_record() for k, config in self.configs.items()},
        }

    @classmethod
    def from_record(cls, record: dict) -> "EndToEndResults":
        """Inverse of :meth:`to_record`.

        JSON serialisation sorts mapping keys, so the canonical orderings
        the figures rely on (models in Table 2 order, designs in plot order)
        are restored here rather than trusted from the payload.
        """
        check_record_schema(record, "end_to_end")
        models = canonical_order(record["accelerator_results"], MODEL_REGISTRY)
        return cls(
            settings=ExperimentSettings.from_record(record["settings"]),
            accelerator_results={
                model: {
                    design: ModelSimResult.from_record(
                        record["accelerator_results"][model][design]
                    )
                    for design in canonical_order(
                        record["accelerator_results"][model], DESIGN_ORDER
                    )
                }
                for model in models
            },
            cpu_cycles={m: record["cpu_cycles"][m] for m in models},
            cpu_seconds={m: record["cpu_seconds"][m] for m in models},
            sampled_layers={m: record["sampled_layers"][m] for m in models},
            extrapolation={m: record["extrapolation"][m] for m in models},
            configs={
                m: AcceleratorConfig.from_record(record["configs"][m])
                for m in canonical_order(record["configs"], MODEL_REGISTRY)
            },
        )

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize to a JSON string that :meth:`from_json` reverses."""
        return json.dumps(self.to_record(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "EndToEndResults":
        """Inverse of :meth:`to_json`."""
        return cls.from_record(json.loads(payload))

    def accelerator_seconds(self, model: str, design: str) -> float:
        """Wall-clock seconds of one design on one model (sampled chain)."""
        cycles = self.accelerator_results[model][design].total_cycles
        return self.settings.config.cycles_to_seconds(cycles)

    def accelerator_seconds_full_size(self, model: str, design: str) -> float:
        """Estimated seconds of the *full-size* (Table 5) datapath on the same work.

        Scaled runs use a datapath shrunk by ``scaled_multipliers / 64``; the
        accelerator's cycle count is throughput-bound, so the full-size design
        would finish the same (scaled) workload roughly that factor faster.
        The CPU baseline is never scaled, so Fig. 12's CPU-relative speed-ups
        use this estimate.
        """
        seconds = self.accelerator_seconds(model, design)
        config = self.configs.get(model, self.settings.config)
        datapath_fraction = config.num_multipliers / self.settings.config.num_multipliers
        return seconds * datapath_fraction


def _sample_layers(model: ModelSpec, max_layers: int) -> list[LayerSpec]:
    """Evenly sample up to ``max_layers`` layers of a model, keeping order."""
    layers = list(model.layers)
    if len(layers) <= max_layers:
        return layers
    step = len(layers) / max_layers
    return [layers[int(i * step)] for i in range(max_layers)]


def sample_model_chain(
    model: ModelSpec,
    settings: ExperimentSettings,
    max_layers: int | None = None,
) -> tuple[list[LayerSpec], float, AcceleratorConfig]:
    """The sampled layer chain of one model plus its common scale and config.

    This is the per-model policy both the end-to-end grid and
    :meth:`repro.api.SweepSpec.compile` share — one common scale per model
    (the tightest layer budget) keeps successive layers chainable, and the
    configuration is scaled to match.  Keeping a single implementation is
    what guarantees a model sweep builds byte-identical
    :class:`~repro.runtime.SimJob` keys to the figure grids, so the two
    reuse each other's cache entries.
    """
    cap = max_layers if max_layers is not None else settings.max_layers_per_model
    sampled = _sample_layers(model, cap)
    scale = min(settings.layer_scale(spec) for spec in sampled)
    return sampled, scale, settings.scaled_config(scale)


def end_to_end_jobs(
    settings: ExperimentSettings,
) -> tuple[list[SimJob], dict[str, AcceleratorConfig], dict[str, list[LayerSpec]]]:
    """The flat (model, design, layer) job grid of the end-to-end sweep.

    Returns the jobs plus the per-model scaled configuration and sampled
    layer specs that :func:`collate_end_to_end` needs to assemble the grid's
    results.
    """
    jobs: list[SimJob] = []
    configs: dict[str, AcceleratorConfig] = {}
    sampled_specs: dict[str, list[LayerSpec]] = {}
    for short_name, model in MODEL_REGISTRY.items():
        sampled, scale, config = sample_model_chain(model, settings)
        sampled_specs[short_name] = sampled
        configs[short_name] = config
        for spec in sampled:
            seed = spec.deterministic_seed(settings.seed_salt)
            # Weights are stored offline in both formats and the mapper plans
            # the M/N variants globally, so chains never need conversions
            # (Section 3.3); each layer is therefore an independent job.
            for design in DESIGN_ORDER + (CPU_DESIGN,):
                jobs.append(
                    SimJob(
                        design=design,
                        config=config,
                        spec=spec,
                        scale=scale,
                        seed=seed,
                        layer_name=spec.name,
                        engine=settings.engine,
                    )
                )
    return jobs, configs, sampled_specs


def collate_end_to_end(
    settings: ExperimentSettings,
    configs: dict[str, AcceleratorConfig],
    sampled_specs: dict[str, list[LayerSpec]],
    results: list,
) -> EndToEndResults:
    """Assemble the grid results of :func:`end_to_end_jobs` (same order)."""
    grid_results = iter(results)

    accelerator_results: dict[str, dict[str, ModelSimResult]] = {}
    cpu_cycles: dict[str, float] = {}
    cpu_seconds: dict[str, float] = {}
    sampled_counts: dict[str, int] = {}
    extrapolation: dict[str, float] = {}
    for short_name, model in MODEL_REGISTRY.items():
        sampled = sampled_specs[short_name]
        sampled_counts[short_name] = len(sampled)
        extrapolation[short_name] = model.num_layers / len(sampled)
        per_design = {
            design: ModelSimResult(accelerator=design, model_name=model.name)
            for design in DESIGN_ORDER
        }
        model_cpu_cycles = 0.0
        model_cpu_seconds = 0.0
        for _spec in sampled:
            for design in DESIGN_ORDER:
                per_design[design].layer_results.append(next(grid_results))
            cpu_layer = next(grid_results)
            model_cpu_cycles += cpu_layer.cycles
            model_cpu_seconds += cpu_layer.seconds
        accelerator_results[short_name] = per_design
        cpu_cycles[short_name] = model_cpu_cycles
        cpu_seconds[short_name] = model_cpu_seconds

    return EndToEndResults(
        settings=settings,
        accelerator_results=accelerator_results,
        cpu_cycles=cpu_cycles,
        cpu_seconds=cpu_seconds,
        sampled_layers=sampled_counts,
        extrapolation=extrapolation,
        configs=configs,
    )


def run_end_to_end(
    settings: ExperimentSettings | None = None,
    runner: BatchRunner | None = None,
) -> EndToEndResults:
    """Execute the eight models on the CPU and the four designs.

    .. deprecated::
        Construct a :class:`repro.api.Session` and call
        :meth:`~repro.api.Session.end_to_end` instead.  This shim keeps the
        pre-facade call sites working: with the default ``runner`` it
        delegates to the shared per-settings session (memoized in-process and
        across processes by the runtime's on-disk cache); an explicit
        :class:`~repro.runtime.BatchRunner` gets a private session, which is
        the hook the runtime tests use to observe cache and executor
        behaviour directly.
    """
    warnings.warn(
        "run_end_to_end() is deprecated; use repro.api.Session().end_to_end()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.session import Session, shared_session

    settings = settings or default_settings()
    if runner is None:
        return shared_session(settings).end_to_end()
    return Session(settings, runner=runner).end_to_end()


# ----------------------------------------------------------------------
# Figure 12: end-to-end speed-up over the CPU baseline
# ----------------------------------------------------------------------
def end_to_end_speedup_rows(results: EndToEndResults) -> list[Row]:
    """Rows of Fig. 12: per model, each design's speed-up over CPU MKL (in time)."""
    rows = []
    for model in results.model_names():
        cpu_time = results.cpu_seconds[model]
        row: Row = {"model": model, "CPU-MKL": 1.0}
        for design in DESIGN_ORDER:
            accel_time = results.accelerator_seconds_full_size(model, design)
            row[design] = cpu_time / accel_time if accel_time else float("inf")
        rows.append(row)
    geo: Row = {"model": "GEOMEAN", "CPU-MKL": 1.0}
    for design in DESIGN_ORDER:
        geo[design] = geometric_mean([float(row[design]) for row in rows])
    rows.append(geo)
    return rows


# ----------------------------------------------------------------------
# Figure 18: performance / area
# ----------------------------------------------------------------------
def performance_per_area_rows(results: EndToEndResults) -> list[Row]:
    """Rows of Fig. 18: speed-up over SIGMA-like divided by normalised area."""
    areas = {design: accelerator_area_power(design, results.settings.config).total_area
             for design in DESIGN_ORDER}
    sigma_area = areas["SIGMA-like"]
    rows = []
    for model in results.model_names():
        sigma_cycles = results.accelerator_results[model]["SIGMA-like"].total_cycles
        row: Row = {"model": model}
        for design in DESIGN_ORDER:
            cycles = results.accelerator_results[model][design].total_cycles
            speedup = sigma_cycles / cycles if cycles else float("inf")
            normalised_area = areas[design] / sigma_area
            row[design] = speedup / normalised_area
        rows.append(row)
    geo: Row = {"model": "GEOMEAN"}
    for design in DESIGN_ORDER:
        geo[design] = geometric_mean([float(row[design]) for row in rows])
    rows.append(geo)
    return rows


# ----------------------------------------------------------------------
# Figure 1: best dataflow per layer
# ----------------------------------------------------------------------
def best_dataflow_per_layer_rows(results: EndToEndResults) -> list[Row]:
    """Rows of Fig. 1: for every simulated layer, which dataflow family wins.

    The winner is determined exactly as in the paper: by comparing the cycles
    of the three fixed-dataflow designs on that layer.
    """
    rows = []
    for model in results.model_names():
        per_design = results.accelerator_results[model]
        num_layers = len(per_design["SIGMA-like"].layer_results)
        for index in range(num_layers):
            cycles = {
                "IP": per_design["SIGMA-like"].layer_results[index].total_cycles,
                "OP": per_design["SpArch-like"].layer_results[index].total_cycles,
                "Gust": per_design["GAMMA-like"].layer_results[index].total_cycles,
            }
            winner = min(cycles, key=cycles.get)
            rows.append(
                {
                    "model": model,
                    "layer": per_design["SIGMA-like"].layer_results[index].layer_name,
                    "best": winner,
                    "ip_cycles": cycles["IP"],
                    "op_cycles": cycles["OP"],
                    "gust_cycles": cycles["Gust"],
                    "flexagon_choice": per_design["Flexagon"]
                    .layer_results[index]
                    .dataflow.dataflow_class.value,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table 2: model statistics
# ----------------------------------------------------------------------
def model_statistics_rows(results: EndToEndResults) -> list[Row]:
    """Rows of Table 2: per model, layer counts, sparsities, sizes and CPU cycles."""
    rows = []
    for short_name, model in MODEL_REGISTRY.items():
        cs_a = [spec.expected_compressed_bytes_a() / 2**20 for spec in model.layers]
        cs_b = [spec.expected_compressed_bytes_b() / 2**20 for spec in model.layers]
        rows.append(
            {
                "model": f"{model.name} ({short_name})",
                "domain": model.domain,
                "layers": model.num_layers,
                "AvSpA(%)": round(100 * model.table2_activation_sparsity, 2),
                "AvSpB(%)": round(100 * model.table2_weight_sparsity, 2),
                "AvCsA(MiB)": sum(cs_a) / len(cs_a),
                "AvCsB(MiB)": sum(cs_b) / len(cs_b),
                "MaxCsA(MiB)": max(cs_a),
                "MaxCsB(MiB)": max(cs_b),
                "paper CPU cycles (1e6)": model.table2_cpu_megacycles,
                "model CPU cycles (1e6, sampled+scaled)": results.cpu_cycles[short_name] / 1e6,
            }
        )
    return rows
