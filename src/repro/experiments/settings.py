"""Shared experiment settings: scaling policy and accelerator configuration.

A pure-Python cycle-accounting simulation cannot traverse the paper's
full-size layers (hundreds of millions of effectual multiplications) within
a benchmark run, so the harness *scales* layers down: every dimension is
multiplied by a per-layer factor chosen so the dense MAC count stays under a
budget, and the on-chip SRAM capacities are scaled by the square of that
factor so the working-set-to-capacity ratios — which drive the paper's
cache-miss and traffic trends — are preserved.  Setting
``REPRO_FULL_SCALE=1`` in the environment (or ``max_dense_macs=None``)
disables scaling entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import knobs
from repro.arch.config import AcceleratorConfig, default_config
from repro.engine_vec import DEFAULT_ENGINE_BACKEND, validate_engine_backend
from repro.workloads.layers import LayerSpec, round_up_pow2, scale_for_budget


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment in the harness."""

    #: Reference accelerator configuration (Table 5).
    config: AcceleratorConfig = field(default_factory=default_config)
    #: Dense-MAC budget per layer used to pick the scale factor
    #: (``None`` disables scaling and runs the full-size layers).
    max_dense_macs: float | None = 4.0e6
    #: Cap on the number of layers simulated per model in the end-to-end
    #: experiments; layers are sampled evenly and the totals extrapolated.
    max_layers_per_model: int = 10
    #: Random-seed salt for synthetic matrix generation.
    seed_salt: int = 0
    #: SpMSpM engine backend every simulation job runs with
    #: (``"vectorized"`` or ``"reference"``).  The two are bit-equivalent;
    #: the reference backend is kept for auditing the vectorized kernels.
    engine: str = DEFAULT_ENGINE_BACKEND

    def __post_init__(self) -> None:
        validate_engine_backend(self.engine)

    # ------------------------------------------------------------------
    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form (used by the :mod:`repro.api` response records)."""
        return {
            "config": self.config.to_record(),
            "max_dense_macs": self.max_dense_macs,
            "max_layers_per_model": self.max_layers_per_model,
            "seed_salt": self.seed_salt,
            "engine": self.engine,
        }

    @classmethod
    def from_record(cls, record: dict) -> "ExperimentSettings":
        """Inverse of :meth:`to_record`."""
        fields = dict(record)
        config = AcceleratorConfig.from_record(fields.pop("config"))
        return cls(config=config, **fields)

    # ------------------------------------------------------------------
    def layer_scale(self, spec: LayerSpec) -> float:
        """The dimension scale factor used for ``spec``."""
        if self.max_dense_macs is None:
            return 1.0
        return scale_for_budget(spec, self.max_dense_macs)

    def scaled_config(self, scale: float) -> AcceleratorConfig:
        """Accelerator configuration matched to a layer scale factor.

        Compressed operand sizes shrink with the square of the linear scale,
        so the SRAM capacities are scaled by ``scale**2``; the datapath
        (multipliers and network bandwidths) is scaled by ``scale`` so that
        quantities such as "stationary iterations per layer" — the ratio of
        operand nnz to multiplier count that drives Inner Product's
        re-streaming cost — stay representative of the full-size runs.
        """
        if scale >= 1.0:
            return self.config
        base = self.config.scaled(scale * scale)
        multipliers = max(8, round_up_pow2(int(self.config.num_multipliers * scale)))
        bandwidth_scale = multipliers / self.config.num_multipliers
        dist_bw = max(2, int(round(self.config.distribution_bandwidth * bandwidth_scale)))
        red_bw = max(2, int(round(self.config.reduction_bandwidth * bandwidth_scale)))
        # DRAM bandwidth shrinks with the datapath so the compute-to-memory
        # balance of the full-size design is preserved, and the access time
        # grows by the same factor so the stall a cache miss exposes keeps the
        # same ratio to the (slower) per-element compute time.  Everything is
        # therefore expressed relative to the scaled datapath; absolute cycle
        # counts are not comparable across scales, ratios are.
        dram = replace(
            self.config.dram,
            bandwidth_bytes_per_s=self.config.dram.bandwidth_bytes_per_s * bandwidth_scale,
            access_time_ns=self.config.dram.access_time_ns / bandwidth_scale,
        )
        return default_config(
            num_multipliers=multipliers,
            distribution_bandwidth=dist_bw,
            reduction_bandwidth=red_bw,
            str_cache_bytes=base.str_cache_bytes,
            psram_bytes=base.psram_bytes,
            sta_fifo_bytes=self.config.sta_fifo_bytes,
            str_cache_line_bytes=self.config.str_cache_line_bytes,
            str_cache_associativity=self.config.str_cache_associativity,
            str_cache_banks=self.config.str_cache_banks,
            psram_block_bytes=self.config.psram_block_bytes,
            psram_banks=self.config.psram_banks,
            dram=dram,
            frequency_hz=self.config.frequency_hz,
            dram_outstanding_misses=self.config.dram_outstanding_misses,
        )


def default_settings(**overrides) -> ExperimentSettings:
    """Settings used by the benchmark harness.

    ``REPRO_FULL_SCALE=1`` switches to unscaled, full-size layers;
    ``REPRO_MAX_DENSE_MACS`` overrides the per-layer MAC budget;
    ``REPRO_ENGINE`` selects the engine backend
    (``vectorized`` — the default — or ``reference``).
    """
    kwargs: dict = {}
    if knobs.get("REPRO_FULL_SCALE"):
        kwargs["max_dense_macs"] = None
    env_budget = knobs.get("REPRO_MAX_DENSE_MACS")
    if env_budget is not None:
        kwargs["max_dense_macs"] = env_budget
    env_layers = knobs.get("REPRO_MAX_LAYERS")
    if env_layers is not None:
        kwargs["max_layers_per_model"] = env_layers
    env_engine = knobs.get("REPRO_ENGINE")
    if env_engine:
        kwargs["engine"] = env_engine
    kwargs.update(overrides)
    return ExperimentSettings(**kwargs)
