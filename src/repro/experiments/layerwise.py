"""Layer-wise experiments over the nine Table 6 layers (Figs. 13, 14, 15, 16).

One call to :func:`run_layerwise_comparison` simulates every representative
layer on the four accelerator designs; the per-figure ``*_rows`` helpers then
slice the same results into the rows each figure plots.  The (layer, design)
grid is submitted through :class:`repro.runtime.BatchRunner`, so the sweep
runs in parallel and repeat runs are answered from the runtime's persistent
cache; results are additionally memoized in-process per settings object so
the four benchmark files do not redo even the cache lookups.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.experiments.settings import ExperimentSettings, default_settings
from repro.metrics.results import LayerSimResult
from repro.runtime import DESIGN_ORDER, BatchRunner, SimJob, default_runner
from repro.workloads.representative import REPRESENTATIVE_LAYERS, representative_layer_names


@dataclass
class LayerwiseResults:
    """Simulation results for every (layer, design) pair."""

    settings: ExperimentSettings
    #: ``results[layer_name][design_name]`` -> :class:`LayerSimResult`.
    results: dict[str, dict[str, LayerSimResult]]
    #: Scale factor applied to each layer.
    scales: dict[str, float]

    def layer_names(self) -> list[str]:
        """Layers in Table 6 order."""
        return list(self.results)

    def result(self, layer: str, design: str) -> LayerSimResult:
        """The result record of one (layer, design) pair."""
        return self.results[layer][design]


def _run_with_runner(
    settings: ExperimentSettings, runner: BatchRunner
) -> LayerwiseResults:
    scales = {spec.name: settings.layer_scale(spec) for spec in REPRESENTATIVE_LAYERS}
    jobs = [
        SimJob(
            design=design,
            config=settings.scaled_config(scales[spec.name]),
            spec=spec,
            scale=scales[spec.name],
            seed=spec.deterministic_seed(settings.seed_salt),
            layer_name=spec.name,
        )
        for spec in REPRESENTATIVE_LAYERS
        for design in DESIGN_ORDER
    ]
    grid_results = iter(runner.run(jobs))
    results: dict[str, dict[str, LayerSimResult]] = {}
    for spec in REPRESENTATIVE_LAYERS:
        results[spec.name] = {design: next(grid_results) for design in DESIGN_ORDER}
    return LayerwiseResults(settings=settings, results=results, scales=scales)


@functools.lru_cache(maxsize=4)
def _cached_run(settings: ExperimentSettings) -> LayerwiseResults:
    return _run_with_runner(settings, default_runner())


def run_layerwise_comparison(
    settings: ExperimentSettings | None = None,
    runner: BatchRunner | None = None,
) -> LayerwiseResults:
    """Simulate the nine Table 6 layers on the four designs.

    Memoized in-process per settings object (and across processes by the
    runtime's on-disk cache); an explicit ``runner`` bypasses the in-process
    memo, exposing cache and executor behaviour to the runtime tests.
    """
    settings = settings or default_settings()
    if runner is None:
        return _cached_run(settings)
    return _run_with_runner(settings, runner)


# ----------------------------------------------------------------------
# Figure 13: layer-wise speed-up, split into multiplying and merging phases
# ----------------------------------------------------------------------
def layerwise_speedup_rows(results: LayerwiseResults) -> list[dict[str, object]]:
    """Rows of Fig. 13: per layer and design, speed-up vs the SIGMA-like design."""
    rows = []
    for layer in results.layer_names():
        baseline = results.result(layer, "SIGMA-like").total_cycles
        for design in DESIGN_ORDER:
            record = results.result(layer, design)
            total = record.total_cycles
            rows.append(
                {
                    "layer": layer,
                    "design": design,
                    "dataflow": record.dataflow.name,
                    "cycles": total,
                    "speedup_vs_sigma": baseline / total if total else 0.0,
                    "mult_fraction": (
                        (record.cycles.stationary + record.cycles.streaming) / total
                        if total
                        else 0.0
                    ),
                    "merge_fraction": record.cycles.merging / total if total else 0.0,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 14: on-chip memory traffic breakdown
# ----------------------------------------------------------------------
def onchip_traffic_rows(results: LayerwiseResults) -> list[dict[str, object]]:
    """Rows of Fig. 14: STA / STR / psum on-chip traffic per layer and design (MB)."""
    rows = []
    for layer in results.layer_names():
        for design in DESIGN_ORDER:
            record = results.result(layer, design)
            rows.append(
                {
                    "layer": layer,
                    "design": design,
                    "sta_mb": record.traffic.sta_bytes / 1e6,
                    "str_mb": record.traffic.str_bytes / 1e6,
                    "psum_mb": record.traffic.psum_bytes / 1e6,
                    "total_mb": record.traffic.onchip_bytes / 1e6,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 15: streaming-cache miss rate
# ----------------------------------------------------------------------
def miss_rate_rows(results: LayerwiseResults) -> list[dict[str, object]]:
    """Rows of Fig. 15: STR cache miss rate (%) per layer and design."""
    rows = []
    for layer in results.layer_names():
        for design in DESIGN_ORDER:
            record = results.result(layer, design)
            rows.append(
                {
                    "layer": layer,
                    "design": design,
                    "miss_rate_pct": 100.0 * record.str_cache_miss_rate,
                    "accesses": record.str_cache_accesses,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 16: off-chip traffic
# ----------------------------------------------------------------------
def offchip_traffic_rows(results: LayerwiseResults) -> list[dict[str, object]]:
    """Rows of Fig. 16: off-chip (STR cache <-> DRAM) traffic per layer and design (KB)."""
    rows = []
    for layer in results.layer_names():
        for design in DESIGN_ORDER:
            record = results.result(layer, design)
            dram = getattr(record, "dram", None)
            str_read = dram.str_read_bytes if dram else 0
            rows.append(
                {
                    "layer": layer,
                    "design": design,
                    "offchip_kb": str_read / 1e3,
                    "total_dram_kb": record.traffic.offchip_bytes / 1e3,
                }
            )
    return rows


def expected_layer_names() -> list[str]:
    """The Table 6 layer names (re-exported for the benchmark assertions)."""
    return representative_layer_names()
