"""Layer-wise experiments over the nine Table 6 layers (Figs. 13, 14, 15, 16).

One call to :func:`run_layerwise_comparison` simulates every representative
layer on the four accelerator designs; the per-figure ``*_rows`` helpers then
slice the same results into the rows each figure plots.  The (layer, design)
grid is submitted through :class:`repro.runtime.BatchRunner`, so the sweep
runs in parallel and repeat runs are answered from the runtime's persistent
cache.

This module owns the *sweep definition* (:func:`layerwise_jobs`), the
*collation* of grid results into :class:`LayerwiseResults`
(:func:`collate_layerwise`) and the per-figure row makers.  Execution goes
through the :class:`repro.api.Session` facade; :func:`run_layerwise_comparison`
remains as a deprecated shim over it.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass

from repro.experiments.settings import ExperimentSettings, default_settings
from repro.metrics.results import (
    RESULT_SCHEMA_VERSION,
    LayerSimResult,
    Row,
    canonical_order,
    check_record_schema,
)
from repro.runtime import DESIGN_ORDER, BatchRunner, SimJob
from repro.workloads.representative import REPRESENTATIVE_LAYERS, representative_layer_names


@dataclass
class LayerwiseResults:
    """Simulation results for every (layer, design) pair."""

    settings: ExperimentSettings
    #: ``results[layer_name][design_name]`` -> :class:`LayerSimResult`.
    results: dict[str, dict[str, LayerSimResult]]
    #: Scale factor applied to each layer.
    scales: dict[str, float]

    def layer_names(self) -> list[str]:
        """Layers in Table 6 order."""
        return list(self.results)

    def result(self, layer: str, design: str) -> LayerSimResult:
        """The result record of one (layer, design) pair."""
        return self.results[layer][design]

    # ------------------------------------------------------------------
    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form (versioned; see :mod:`repro.metrics.results`)."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "layerwise",
            "settings": self.settings.to_record(),
            "results": {
                layer: {
                    design: record.to_record() for design, record in per_design.items()
                }
                for layer, per_design in self.results.items()
            },
            "scales": {k: float(v) for k, v in self.scales.items()},
        }

    @classmethod
    def from_record(cls, record: dict) -> "LayerwiseResults":
        """Inverse of :meth:`to_record`.

        JSON serialisation sorts mapping keys, so the Table 6 layer order and
        the plot-order design columns are restored here rather than trusted
        from the payload.
        """
        check_record_schema(record, "layerwise")
        layer_order = canonical_order(record["results"], representative_layer_names())
        return cls(
            settings=ExperimentSettings.from_record(record["settings"]),
            results={
                layer: {
                    design: LayerSimResult.from_record(
                        record["results"][layer][design]
                    )
                    for design in canonical_order(
                        record["results"][layer], DESIGN_ORDER
                    )
                }
                for layer in layer_order
            },
            scales={name: record["scales"][name] for name in layer_order},
        )

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize to a JSON string that :meth:`from_json` reverses."""
        return json.dumps(self.to_record(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "LayerwiseResults":
        """Inverse of :meth:`to_json`."""
        return cls.from_record(json.loads(payload))


def layerwise_jobs(
    settings: ExperimentSettings,
) -> tuple[list[SimJob], dict[str, float]]:
    """The flat (layer, design) job grid of the layer-wise sweep.

    Returns the jobs plus the per-layer scale factors that
    :func:`collate_layerwise` needs to assemble the grid's results.
    """
    scales = {spec.name: settings.layer_scale(spec) for spec in REPRESENTATIVE_LAYERS}
    jobs = [
        SimJob(
            design=design,
            config=settings.scaled_config(scales[spec.name]),
            spec=spec,
            scale=scales[spec.name],
            seed=spec.deterministic_seed(settings.seed_salt),
            layer_name=spec.name,
            engine=settings.engine,
        )
        for spec in REPRESENTATIVE_LAYERS
        for design in DESIGN_ORDER
    ]
    return jobs, scales


def collate_layerwise(
    settings: ExperimentSettings,
    scales: dict[str, float],
    results: list,
) -> LayerwiseResults:
    """Assemble the grid results of :func:`layerwise_jobs` (same order)."""
    grid_results = iter(results)
    collated: dict[str, dict[str, LayerSimResult]] = {}
    for spec in REPRESENTATIVE_LAYERS:
        collated[spec.name] = {design: next(grid_results) for design in DESIGN_ORDER}
    return LayerwiseResults(settings=settings, results=collated, scales=scales)


def run_layerwise_comparison(
    settings: ExperimentSettings | None = None,
    runner: BatchRunner | None = None,
) -> LayerwiseResults:
    """Simulate the nine Table 6 layers on the four designs.

    .. deprecated::
        Construct a :class:`repro.api.Session` and call
        :meth:`~repro.api.Session.layerwise` instead.  This shim keeps the
        pre-facade call sites working: with the default ``runner`` it
        delegates to the shared per-settings session (memoized in-process and
        across processes by the runtime's on-disk cache); an explicit
        ``runner`` gets a private session, exposing cache and executor
        behaviour to the runtime tests.
    """
    warnings.warn(
        "run_layerwise_comparison() is deprecated; use repro.api.Session().layerwise()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.session import Session, shared_session

    settings = settings or default_settings()
    if runner is None:
        return shared_session(settings).layerwise()
    return Session(settings, runner=runner).layerwise()


# ----------------------------------------------------------------------
# Figure 13: layer-wise speed-up, split into multiplying and merging phases
# ----------------------------------------------------------------------
def layerwise_speedup_rows(results: LayerwiseResults) -> list[Row]:
    """Rows of Fig. 13: per layer and design, speed-up vs the SIGMA-like design."""
    rows = []
    for layer in results.layer_names():
        baseline = results.result(layer, "SIGMA-like").total_cycles
        for design in DESIGN_ORDER:
            record = results.result(layer, design)
            total = record.total_cycles
            rows.append(
                {
                    "layer": layer,
                    "design": design,
                    "dataflow": record.dataflow.name,
                    "cycles": total,
                    "speedup_vs_sigma": baseline / total if total else 0.0,
                    "mult_fraction": (
                        (record.cycles.stationary + record.cycles.streaming) / total
                        if total
                        else 0.0
                    ),
                    "merge_fraction": record.cycles.merging / total if total else 0.0,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 14: on-chip memory traffic breakdown
# ----------------------------------------------------------------------
def onchip_traffic_rows(results: LayerwiseResults) -> list[Row]:
    """Rows of Fig. 14: STA / STR / psum on-chip traffic per layer and design (MB)."""
    rows = []
    for layer in results.layer_names():
        for design in DESIGN_ORDER:
            record = results.result(layer, design)
            rows.append(
                {
                    "layer": layer,
                    "design": design,
                    "sta_mb": record.traffic.sta_bytes / 1e6,
                    "str_mb": record.traffic.str_bytes / 1e6,
                    "psum_mb": record.traffic.psum_bytes / 1e6,
                    "total_mb": record.traffic.onchip_bytes / 1e6,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 15: streaming-cache miss rate
# ----------------------------------------------------------------------
def miss_rate_rows(results: LayerwiseResults) -> list[Row]:
    """Rows of Fig. 15: STR cache miss rate (%) per layer and design."""
    rows = []
    for layer in results.layer_names():
        for design in DESIGN_ORDER:
            record = results.result(layer, design)
            rows.append(
                {
                    "layer": layer,
                    "design": design,
                    "miss_rate_pct": 100.0 * record.str_cache_miss_rate,
                    "accesses": record.str_cache_accesses,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 16: off-chip traffic
# ----------------------------------------------------------------------
def offchip_traffic_rows(results: LayerwiseResults) -> list[Row]:
    """Rows of Fig. 16: off-chip (STR cache <-> DRAM) traffic per layer and design (KB)."""
    rows = []
    for layer in results.layer_names():
        for design in DESIGN_ORDER:
            record = results.result(layer, design)
            str_read = record.dram.str_read_bytes if record.dram else 0
            rows.append(
                {
                    "layer": layer,
                    "design": design,
                    "offchip_kb": str_read / 1e3,
                    "total_dram_kb": record.traffic.offchip_bytes / 1e3,
                }
            )
    return rows


def expected_layer_names() -> list[str]:
    """The Table 6 layer names (re-exported for the benchmark assertions)."""
    return representative_layer_names()
