"""Area / power experiment helpers (Table 8 and Fig. 17)."""

from __future__ import annotations

from repro.accelerators.area_power import (
    accelerator_area_power,
    naive_triple_network_area,
)
from repro.arch.config import AcceleratorConfig
from repro.metrics.results import Row

_DESIGNS = ("SIGMA-like", "SpArch-like", "GAMMA-like", "Flexagon")


def area_power_rows(config: AcceleratorConfig | None = None) -> list[Row]:
    """Rows of Table 8: per-component area and power for the four designs."""
    return [accelerator_area_power(design, config).as_row() for design in _DESIGNS]


def naive_comparison_rows(config: AcceleratorConfig | None = None) -> list[Row]:
    """Rows of Fig. 17b: Flexagon vs the naive triple-network design."""
    comparison = naive_triple_network_area(config)
    rows = []
    for design, split in comparison.items():
        rows.append(
            {
                "design": design,
                "datapath_mm2": split["datapath"],
                "sram_mm2": split["sram"],
                "mux_demux_mm2": split["mux_demux"],
                "total_mm2": sum(split.values()),
            }
        )
    return rows
