"""Inner-Product (IP) dataflow: co-iteration over K at the innermost loop.

This is the dataflow of SIGMA-like accelerators (Table 1).  Rows of A are
held stationary in the multipliers (M-stationary variant), every column of B
is streamed past them, and a hardware intersection unit aligns the effectual
elements so the reduction tree can produce each output value as one *full*
sum — no partial sums, no merging phase.

The trade-off the paper highlights: the streaming matrix is re-streamed once
per stationary batch, so IP pays heavily when A does not fit in the array and
when the intersection is sparse (many streamed elements produce no work).
"""

from __future__ import annotations

from repro.dataflows.stats import DataflowResult, DataflowStats
from repro.sparse.formats import CompressedMatrix, Layout, matrix_from_coo


def run_inner_product(
    a: CompressedMatrix,
    b: CompressedMatrix,
    *,
    num_multipliers: int = 64,
    n_stationary: bool = False,
) -> DataflowResult:
    """Execute C = A x B with the Inner-Product dataflow.

    Parameters
    ----------
    a, b:
        Input matrices (any layout; they are viewed through the layouts Table 3
        requires: A as CSR fibers, B as CSC fibers for the M-stationary case).
    num_multipliers:
        Size of the multiplier array; determines how many stationary elements
        fit per iteration and therefore how many times B is re-streamed.
    n_stationary:
        Run the N-stationary variant (``IP(N)``), which holds columns of B
        stationary, streams rows of A, and emits C in CSC.
    """
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    if num_multipliers < 1:
        raise ValueError("num_multipliers must be positive")

    if n_stationary:
        mirrored = run_inner_product(
            b.transposed(), a.transposed(),
            num_multipliers=num_multipliers, n_stationary=False,
        )
        mirrored.output = mirrored.output.transposed()
        return mirrored

    a_rows = a if a.layout is Layout.CSR else a.with_layout(Layout.CSR)
    b_cols = b if b.layout is Layout.CSC else b.with_layout(Layout.CSC)

    stats = DataflowStats()
    triples: list[tuple[int, int, float]] = []

    b_nnz = b_cols.nnz
    stationary_batches = _pack_rows(a_rows, num_multipliers)
    partial_accumulator: dict[tuple[int, int], float] = {}

    for batch in stationary_batches:
        stats.stationary_iterations += 1
        batch_fibers = {m: (a_rows.fiber(m) if chunk is None else chunk)
                        for m, chunk in batch}
        stats.stationary_elements_read += sum(f.nnz for f in batch_fibers.values())
        # The whole streaming matrix passes by once per stationary batch.
        stats.streaming_elements_read += b_nnz
        for n in range(b_cols.major_dim):
            b_fiber = b_cols.fiber(n)
            if b_fiber.is_empty():
                continue
            for m, a_fiber in batch_fibers.items():
                if a_fiber.is_empty():
                    continue
                # The controller checks each streamed element against the
                # stationary fiber to find intersections.
                stats.intersection_probes += b_fiber.nnz
                value, matches = a_fiber.dot(b_fiber)
                stats.multiplications += matches
                if matches:
                    stats.additions += matches - 1
                    key = (m, n)
                    if key in partial_accumulator:
                        # Temporal accumulation across K-chunks of a split row.
                        partial_accumulator[key] += value
                        stats.additions += 1
                    else:
                        partial_accumulator[key] = value

    for (m, n), value in partial_accumulator.items():
        if value != 0.0:
            triples.append((m, n, value))

    output = matrix_from_coo(a.nrows, b.ncols, triples, layout=Layout.CSR)
    stats.output_elements = output.nnz
    return DataflowResult(output=output, stats=stats)


def _pack_rows(
    a_rows: CompressedMatrix, num_multipliers: int
) -> list[list[tuple[int, "object"]]]:
    """Greedily pack rows of A into multiplier-array-sized stationary batches.

    Each batch is a list of ``(row_index, fiber_chunk_or_None)`` pairs.  A
    ``None`` chunk means "the whole row"; rows longer than the array are split
    into chunks of at most ``num_multipliers`` elements that occupy an entire
    batch on their own (temporal K-tiling).
    """
    batches: list[list[tuple[int, object]]] = []
    current: list[tuple[int, object]] = []
    used = 0
    for m in range(a_rows.major_dim):
        nnz = a_rows.fiber_nnz(m)
        if nnz == 0:
            continue
        if nnz > num_multipliers:
            if current:
                batches.append(current)
                current, used = [], 0
            fiber = a_rows.fiber(m)
            elements = list(fiber)
            for start in range(0, len(elements), num_multipliers):
                chunk_fiber = type(fiber)(
                    (e.coord, e.value) for e in elements[start : start + num_multipliers]
                )
                batches.append([(m, chunk_fiber)])
            continue
        if used + nnz > num_multipliers and current:
            batches.append(current)
            current, used = [], 0
        current.append((m, None))
        used += nnz
    if current:
        batches.append(current)
    return batches
