"""Dispatch helper that runs any of the six dataflows by name."""

from __future__ import annotations

from repro.dataflows.base import Dataflow, DataflowClass
from repro.dataflows.gustavson import run_gustavson
from repro.dataflows.inner_product import run_inner_product
from repro.dataflows.outer_product import run_outer_product
from repro.dataflows.stats import DataflowResult
from repro.sparse.formats import CompressedMatrix


def run_dataflow(
    dataflow: Dataflow | str,
    a: CompressedMatrix,
    b: CompressedMatrix,
    *,
    num_multipliers: int = 64,
) -> DataflowResult:
    """Execute ``C = A x B`` using the requested dataflow variant.

    ``dataflow`` may be a :class:`Dataflow` member or any name accepted by
    :meth:`Dataflow.from_name` (e.g. ``"IP_M"``, ``"Gust(N)"``, ``"KMN"``).
    """
    if isinstance(dataflow, str):
        dataflow = Dataflow.from_name(dataflow)
    n_stationary = dataflow.is_n_stationary
    runners = {
        DataflowClass.INNER_PRODUCT: run_inner_product,
        DataflowClass.OUTER_PRODUCT: run_outer_product,
        DataflowClass.GUSTAVSON: run_gustavson,
    }
    runner = runners[dataflow.dataflow_class]
    return runner(a, b, num_multipliers=num_multipliers, n_stationary=n_stationary)
