"""Shared merge helpers that count the work a hardware merge tree performs.

Both the Outer-Product and Gustavson dataflows end with a phase that merges
several coordinate-sorted partial-sum fibers into one output fiber.  In
hardware this is done by the MRN configured as a comparator tree: every
output element costs one comparison at each tree level it traverses, and an
addition whenever two coordinates match.  The helpers here perform the merge
in software while counting comparisons and additions the same way, so the
functional dataflow statistics line up with what the cycle model charges.
"""

from __future__ import annotations

from repro.sparse.fiber import Element, Fiber


def merge_two_counted(a: Fiber, b: Fiber) -> tuple[Fiber, int, int]:
    """Merge two fibers, returning ``(merged, comparisons, additions)``.

    One comparison is charged for every step in which both inputs still have
    elements pending (the comparator must look at both heads); an addition is
    charged when the heads' coordinates match.
    """
    out: list[Element] = []
    comparisons = 0
    additions = 0
    i = j = 0
    ea = list(a)
    eb = list(b)
    while i < len(ea) and j < len(eb):
        comparisons += 1
        ca, cb = ea[i].coord, eb[j].coord
        if ca == cb:
            out.append(Element(ca, ea[i].value + eb[j].value))
            additions += 1
            i += 1
            j += 1
        elif ca < cb:
            out.append(ea[i])
            i += 1
        else:
            out.append(eb[j])
            j += 1
    out.extend(ea[i:])
    out.extend(eb[j:])
    merged = Fiber()
    merged._elements = out
    return merged, comparisons, additions


def merge_tree_counted(fibers: list[Fiber]) -> tuple[Fiber, int, int]:
    """Merge many fibers with a balanced binary tree, counting the work.

    The reduction shape mirrors the MRN: fibers are merged pairwise level by
    level, exactly as the comparator tree combines the streams arriving from
    its leaves.  Returns ``(merged, comparisons, additions)``.
    """
    live = [f for f in fibers if not f.is_empty()]
    if not live:
        return Fiber(), 0, 0
    comparisons = 0
    additions = 0
    while len(live) > 1:
        next_level: list[Fiber] = []
        for i in range(0, len(live) - 1, 2):
            merged, c, a = merge_two_counted(live[i], live[i + 1])
            comparisons += c
            additions += a
            next_level.append(merged)
        if len(live) % 2 == 1:
            next_level.append(live[-1])
        live = next_level
    return live[0], comparisons, additions
