"""Dataflow taxonomy: the six SpMSpM loop orders and their properties.

This module encodes Section 2.2 and Table 3 of the paper.  The SpMSpM
operation ``C[M,N] = A[M,K] x B[K,N]`` is a triple-nested loop over M, N and
the shared dimension K; placing the K co-iteration at the innermost, outermost
or middle level yields Inner Product (IP), Outer Product (OP) and Gustavson's
(Gust) respectively, and each has an M-stationary and an N-stationary variant
depending on which independent dimension sits at the outermost loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sparse.formats import Layout


class DataflowClass(enum.Enum):
    """The three SpMSpM dataflow families."""

    INNER_PRODUCT = "IP"
    OUTER_PRODUCT = "OP"
    GUSTAVSON = "Gust"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Dataflow(enum.Enum):
    """The six concrete dataflow variants supported by Flexagon.

    The enum value is the loop order from outermost to innermost, matching the
    first column of Table 3.
    """

    IP_M = "MNK"
    OP_M = "KMN"
    GUST_M = "MKN"
    IP_N = "NMK"
    OP_N = "KNM"
    GUST_N = "NKM"

    # ------------------------------------------------------------------
    @property
    def dataflow_class(self) -> DataflowClass:
        """The family (IP, OP or Gust) this variant belongs to."""
        return _CLASS_OF[self]

    @property
    def is_m_stationary(self) -> bool:
        """True for the M-stationary variants (which emit CSR outputs)."""
        return self in (Dataflow.IP_M, Dataflow.OP_M, Dataflow.GUST_M)

    @property
    def is_n_stationary(self) -> bool:
        """True for the N-stationary variants (which emit CSC outputs)."""
        return not self.is_m_stationary

    @property
    def loop_order(self) -> str:
        """The loop order from outermost to innermost (e.g. ``"MNK"``)."""
        return self.value

    @property
    def informal_name(self) -> str:
        """Human-readable name such as ``"Inner Product(M)"``."""
        suffix = "(M)" if self.is_m_stationary else "(N)"
        names = {
            DataflowClass.INNER_PRODUCT: "Inner Product",
            DataflowClass.OUTER_PRODUCT: "Outer Product",
            DataflowClass.GUSTAVSON: "Gustavson's",
        }
        return names[self.dataflow_class] + suffix

    @property
    def properties(self) -> "DataflowProperties":
        """The full Table 3 row for this dataflow."""
        return DATAFLOW_PROPERTIES[self]

    @property
    def needs_merging(self) -> bool:
        """OP and Gust produce partial sums that must be merged; IP does not."""
        return self.dataflow_class is not DataflowClass.INNER_PRODUCT

    @property
    def needs_intersection(self) -> bool:
        """IP and Gust intersect operands; OP multiplies every pair blindly."""
        return self.dataflow_class is not DataflowClass.OUTER_PRODUCT

    def mirrored(self) -> "Dataflow":
        """Return the same family with the opposite stationary dimension."""
        return _MIRROR[self]

    @classmethod
    def from_name(cls, name: str) -> "Dataflow":
        """Parse names such as ``"IP_M"``, ``"Gust(N)"`` or ``"MKN"``."""
        normalized = name.strip().upper().replace("(", "_").replace(")", "").replace("-", "_")
        aliases = {
            "IP_M": cls.IP_M,
            "IP_N": cls.IP_N,
            "OP_M": cls.OP_M,
            "OP_N": cls.OP_N,
            "GUST_M": cls.GUST_M,
            "GUST_N": cls.GUST_N,
            "GUSTAVSON_M": cls.GUST_M,
            "GUSTAVSON_N": cls.GUST_N,
            "MNK": cls.IP_M,
            "KMN": cls.OP_M,
            "MKN": cls.GUST_M,
            "NMK": cls.IP_N,
            "KNM": cls.OP_N,
            "NKM": cls.GUST_N,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown dataflow name: {name!r}")
        return aliases[normalized]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.informal_name


_CLASS_OF = {
    Dataflow.IP_M: DataflowClass.INNER_PRODUCT,
    Dataflow.IP_N: DataflowClass.INNER_PRODUCT,
    Dataflow.OP_M: DataflowClass.OUTER_PRODUCT,
    Dataflow.OP_N: DataflowClass.OUTER_PRODUCT,
    Dataflow.GUST_M: DataflowClass.GUSTAVSON,
    Dataflow.GUST_N: DataflowClass.GUSTAVSON,
}

_MIRROR = {
    Dataflow.IP_M: Dataflow.IP_N,
    Dataflow.IP_N: Dataflow.IP_M,
    Dataflow.OP_M: Dataflow.OP_N,
    Dataflow.OP_N: Dataflow.OP_M,
    Dataflow.GUST_M: Dataflow.GUST_N,
    Dataflow.GUST_N: Dataflow.GUST_M,
}


@dataclass(frozen=True)
class DataflowProperties:
    """One row of Table 3.

    Attributes
    ----------
    stationary_tensor:
        Which of A, B, C stays resident across the innermost loops.
    stationary_fiber_tensor:
        The tensor whose fibers are pinned in the multipliers ("Stationary
        Fiber" column).
    streaming_tensor:
        The tensor streamed from the L1 cache during the streaming phase.
    a_format, b_format, c_format:
        The compression layout each operand must use / the output is produced in.
    intersection:
        Textual description of the intersection style (``None`` when the
        dataflow never intersects).
    merging:
        Textual description of the merge granularity (``None`` for IP).
    """

    dataflow: Dataflow
    stationary_tensor: str
    stationary_fiber_tensor: str
    streaming_tensor: str
    a_format: Layout
    b_format: Layout
    c_format: Layout
    intersection: str | None
    merging: str | None

    @property
    def output_layout(self) -> Layout:
        """Layout in which the dataflow naturally produces matrix C."""
        return self.c_format


DATAFLOW_PROPERTIES: dict[Dataflow, DataflowProperties] = {
    Dataflow.IP_M: DataflowProperties(
        Dataflow.IP_M, "C", "A", "B",
        Layout.CSR, Layout.CSC, Layout.CSR,
        "Scalar A vs Scalar B", None,
    ),
    Dataflow.OP_M: DataflowProperties(
        Dataflow.OP_M, "A", "B", "C",
        Layout.CSC, Layout.CSR, Layout.CSR,
        None, "Scalar",
    ),
    Dataflow.GUST_M: DataflowProperties(
        Dataflow.GUST_M, "A", "C", "B",
        Layout.CSR, Layout.CSR, Layout.CSR,
        "Scalar A vs Fiber B", "Fiber(M)",
    ),
    Dataflow.IP_N: DataflowProperties(
        Dataflow.IP_N, "C", "B", "A",
        Layout.CSR, Layout.CSC, Layout.CSC,
        "Scalar B vs Scalar A", None,
    ),
    Dataflow.OP_N: DataflowProperties(
        Dataflow.OP_N, "B", "A", "C",
        Layout.CSC, Layout.CSR, Layout.CSC,
        None, "Scalar",
    ),
    Dataflow.GUST_N: DataflowProperties(
        Dataflow.GUST_N, "B", "C", "A",
        Layout.CSC, Layout.CSC, Layout.CSC,
        "Scalar B vs Fiber A", "Fiber(N)",
    ),
}


def taxonomy_table() -> list[dict[str, str]]:
    """Return Table 3 as a list of row dictionaries (used by the bench harness)."""
    rows = []
    for dataflow, props in DATAFLOW_PROPERTIES.items():
        rows.append(
            {
                "loop_order": dataflow.loop_order,
                "informal_name": dataflow.informal_name,
                "stationary_tensor": props.stationary_tensor,
                "stationary_fiber": props.stationary_fiber_tensor,
                "streaming_tensor": props.streaming_tensor,
                "a_format": str(props.a_format),
                "b_format": str(props.b_format),
                "c_format": str(props.c_format),
                "intersection": props.intersection or "N/A",
                "merging": props.merging or "N/A",
            }
        )
    return rows
