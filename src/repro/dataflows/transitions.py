"""Inter-layer dataflow transitions (Section 3.3, Table 4).

M-stationary dataflows emit matrix C in CSR; N-stationary dataflows emit CSC.
When the next layer's chosen dataflow can accept its activation operand in
the format the previous layer produced, no explicit format conversion is
needed; otherwise an Explicit Conversion (EC) would be required.  Flexagon's
mapper uses this table to chain per-layer dataflow choices without paying for
conversions, which is one of the paper's contributions.

In a layer chain ``C_layer_i`` becomes the *A operand* (the activations) of
layer ``i+1``; the weights of layer ``i+1`` are assumed to be stored offline
in both formats (as the paper states), so only the activation format
constrains the transition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflows.base import DATAFLOW_PROPERTIES, Dataflow
from repro.sparse.formats import Layout


def produced_layout(dataflow: Dataflow) -> Layout:
    """Layout in which ``dataflow`` emits its output matrix C."""
    return DATAFLOW_PROPERTIES[dataflow].c_format


def required_activation_layout(dataflow: Dataflow) -> Layout:
    """Layout in which ``dataflow`` needs its activation (A) operand.

    The activation tensor of a DNN layer is always the A operand of the
    SpMSpM (the weights are stored offline in both layouts, as the paper
    assumes), so the constraint on a transition is simply the *A format*
    column of Table 3 for the following layer's dataflow.
    """
    return DATAFLOW_PROPERTIES[dataflow].a_format


def requires_explicit_conversion(previous: Dataflow, following: Dataflow) -> bool:
    """True when chaining ``previous`` -> ``following`` needs an explicit conversion.

    This reproduces Table 4: a transition is free exactly when the layout the
    first layer produces matches the layout the second layer consumes its
    activations in.
    """
    return produced_layout(previous) is not required_activation_layout(following)


@dataclass(frozen=True)
class TransitionTable:
    """The full 6x6 transition legality matrix."""

    #: ``matrix[prev][next]`` is True when the transition needs an explicit conversion.
    needs_conversion: dict[Dataflow, dict[Dataflow, bool]]

    def allowed_without_conversion(self, previous: Dataflow) -> list[Dataflow]:
        """Dataflows the next layer may use for free after ``previous``."""
        return [
            nxt for nxt, needs in self.needs_conversion[previous].items() if not needs
        ]

    def as_rows(self) -> list[dict[str, str]]:
        """Render the table as printable rows (used by the bench harness)."""
        rows = []
        for prev in Dataflow:
            row = {"previous": prev.informal_name}
            for nxt in Dataflow:
                row[nxt.informal_name] = (
                    "EC" if self.needs_conversion[prev][nxt] else "ok"
                )
            rows.append(row)
        return rows


def transition_table() -> TransitionTable:
    """Build the Table 4 transition matrix from the dataflow properties."""
    matrix = {
        prev: {nxt: requires_explicit_conversion(prev, nxt) for nxt in Dataflow}
        for prev in Dataflow
    }
    return TransitionTable(needs_conversion=matrix)
