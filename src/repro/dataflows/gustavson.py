"""Gustavson's (row-wise product) dataflow: co-iteration over K at the middle loop.

This is the dataflow of GAMMA-like and MatRaptor-like accelerators.  Rows of
A are held stationary (one element per multiplier, grouped into per-row
clusters); each multiplier's effectual A coordinate fetches the *entire*
corresponding row fiber of B (leader-follower intersection) and scales it.
The scaled fibers of a cluster are merged immediately by the MRN into the
output fiber for that row, so — unlike OP — merging is restricted to the
current row and no partial sums touch memory unless the row does not fit in
one cluster pass.
"""

from __future__ import annotations

from repro.dataflows.merge_util import merge_tree_counted
from repro.dataflows.stats import DataflowResult, DataflowStats
from repro.sparse.fiber import Fiber
from repro.sparse.formats import CompressedMatrix, Layout, matrix_from_fibers


def run_gustavson(
    a: CompressedMatrix,
    b: CompressedMatrix,
    *,
    num_multipliers: int = 64,
    n_stationary: bool = False,
) -> DataflowResult:
    """Execute C = A x B with Gustavson's dataflow.

    Parameters
    ----------
    a, b:
        Input matrices.  The M-stationary variant views both A and B through
        CSR fibers (rows), per Table 3.
    num_multipliers:
        Multiplier array width; a row of A whose nnz exceeds it requires
        multiple passes and spills partial fibers to the PSRAM.
    n_stationary:
        Run the ``Gust(N)`` variant (columns of B stationary, emits CSC).
    """
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    if num_multipliers < 1:
        raise ValueError("num_multipliers must be positive")

    if n_stationary:
        mirrored = run_gustavson(
            b.transposed(), a.transposed(),
            num_multipliers=num_multipliers, n_stationary=False,
        )
        mirrored.output = mirrored.output.transposed()
        return mirrored

    a_rows = a if a.layout is Layout.CSR else a.with_layout(Layout.CSR)
    b_rows = b if b.layout is Layout.CSR else b.with_layout(Layout.CSR)

    stats = DataflowStats()
    output_fibers: dict[int, Fiber] = {}

    for m in range(a_rows.major_dim):
        a_fiber = a_rows.fiber(m)
        if a_fiber.is_empty():
            continue
        elements = list(a_fiber)
        row_needs_spill = len(elements) > num_multipliers
        row_partials: list[Fiber] = []

        for start in range(0, len(elements), num_multipliers):
            cluster = elements[start : start + num_multipliers]
            stats.stationary_iterations += 1
            stats.stationary_elements_read += len(cluster)
            scaled_fibers: list[Fiber] = []
            for k, a_value in cluster:
                # Leader-follower intersection: the stationary coordinate k
                # fetches the whole fiber B[k, :].
                stats.intersection_probes += 1
                b_fiber = b_rows.fiber(k)
                if b_fiber.is_empty():
                    continue
                stats.streaming_elements_read += b_fiber.nnz
                scaled = b_fiber.scaled(a_value)
                stats.multiplications += scaled.nnz
                scaled_fibers.append(scaled)
            if not scaled_fibers:
                continue
            merged, comparisons, additions = merge_tree_counted(scaled_fibers)
            stats.merge_comparisons += comparisons
            stats.additions += additions
            stats.merge_passes += 1
            if row_needs_spill:
                # Partial output fiber: must be buffered in the PSRAM until
                # the rest of the row's passes have been produced.
                stats.psum_writes += merged.nnz
            row_partials.append(merged)

        if not row_partials:
            continue
        if len(row_partials) == 1:
            final_fiber = row_partials[0]
        else:
            # Final merge of the per-pass partial fibers (read back from PSRAM).
            stats.psum_reads += sum(f.nnz for f in row_partials)
            final_fiber, comparisons, additions = merge_tree_counted(row_partials)
            stats.merge_comparisons += comparisons
            stats.additions += additions
            stats.merge_passes += 1
        pruned = final_fiber.pruned()
        if not pruned.is_empty():
            output_fibers[m] = pruned

    output = matrix_from_fibers(a.nrows, b.ncols, output_fibers, layout=Layout.CSR)
    stats.output_elements = output.nnz
    return DataflowResult(output=output, stats=stats)
