"""Outer-Product (OP) dataflow: co-iteration over K at the outermost loop.

This is the dataflow of SpArch-like and OuterSpace-like accelerators.  Each
multiplier holds a single scalar of the stationary matrix (a column element
of A in the M-stationary variant) and linearly combines an entire streamed
fiber of B with it, producing a partial-sum fiber per (row, k) pair.  Every
partial sum is written to the PSRAM and a separate merging phase combines,
row by row, all the k-iteration fibers into the final output fiber.

The trade-off: no intersection hardware is needed and inputs are read only
once, but the volume of partial sums (and hence PSRAM traffic and merge work)
can dwarf the final output size.
"""

from __future__ import annotations

from repro.dataflows.merge_util import merge_tree_counted
from repro.dataflows.stats import DataflowResult, DataflowStats
from repro.sparse.fiber import Fiber
from repro.sparse.formats import CompressedMatrix, Layout, matrix_from_fibers


def run_outer_product(
    a: CompressedMatrix,
    b: CompressedMatrix,
    *,
    num_multipliers: int = 64,
    n_stationary: bool = False,
) -> DataflowResult:
    """Execute C = A x B with the Outer-Product dataflow.

    Parameters
    ----------
    a, b:
        Input matrices.  The M-stationary variant views A through CSC fibers
        (columns) and B through CSR fibers (rows), per Table 3.
    num_multipliers:
        Multiplier array width: how many stationary scalars are resident at a
        time, which controls how many partial fibers coexist.
    n_stationary:
        Run the ``OP(N)`` variant (B stationary, emits CSC output).
    """
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    if num_multipliers < 1:
        raise ValueError("num_multipliers must be positive")

    if n_stationary:
        mirrored = run_outer_product(
            b.transposed(), a.transposed(),
            num_multipliers=num_multipliers, n_stationary=False,
        )
        mirrored.output = mirrored.output.transposed()
        return mirrored

    a_cols = a if a.layout is Layout.CSC else a.with_layout(Layout.CSC)
    b_rows = b if b.layout is Layout.CSR else b.with_layout(Layout.CSR)

    stats = DataflowStats()
    # Partial fibers per output row: row -> list of fibers (one per k chunk).
    partial_fibers: dict[int, list[Fiber]] = {}

    # ------------------------------------------------------------------
    # Stationary + streaming phases.
    # Stationary scalars (elements of A, walked column by column) are packed
    # into multiplier-array batches; each scalar consumes the B fiber for its
    # own k coordinate.
    # ------------------------------------------------------------------
    stationary_elements = [
        (int(row_coord), k, float(value))
        for k in range(a_cols.major_dim)
        for row_coord, value in a_cols.fiber(k)
    ]

    for start in range(0, len(stationary_elements), num_multipliers):
        batch = stationary_elements[start : start + num_multipliers]
        stats.stationary_iterations += 1
        stats.stationary_elements_read += len(batch)
        # Each distinct k in the batch streams its B fiber once (multicast to
        # every multiplier holding an element of that column).
        distinct_ks = {k for _, k, _ in batch}
        stats.streaming_elements_read += sum(b_rows.fiber_nnz(k) for k in distinct_ks)
        for m, k, a_value in batch:
            b_fiber = b_rows.fiber(k)
            if b_fiber.is_empty():
                continue
            psum_fiber = b_fiber.scaled(a_value)
            stats.multiplications += psum_fiber.nnz
            stats.psum_writes += psum_fiber.nnz
            partial_fibers.setdefault(m, []).append(psum_fiber)

    # ------------------------------------------------------------------
    # Merging phase: row by row, merge all the k-iteration fibers.
    # When a row has more partial fibers than tree leaves, multiple passes
    # are needed (the intermediate result respills to the PSRAM).
    # ------------------------------------------------------------------
    output_fibers: dict[int, Fiber] = {}
    for m, fibers in partial_fibers.items():
        merged, passes, pass_stats = _merge_row(fibers, num_multipliers)
        stats.psum_reads += pass_stats["psum_reads"]
        stats.psum_writes += pass_stats["respill_writes"]
        stats.merge_comparisons += pass_stats["comparisons"]
        stats.additions += pass_stats["additions"]
        stats.merge_passes += passes
        pruned = merged.pruned()
        if not pruned.is_empty():
            output_fibers[m] = pruned

    output = matrix_from_fibers(a.nrows, b.ncols, output_fibers, layout=Layout.CSR)
    stats.output_elements = output.nnz
    return DataflowResult(output=output, stats=stats)


def _merge_row(
    fibers: list[Fiber], tree_leaves: int
) -> tuple[Fiber, int, dict[str, int]]:
    """Merge one output row's partial fibers, modelling multi-pass spills.

    Returns ``(merged_fiber, passes, counters)`` where counters tracks the
    psum reads, respill writes, comparisons and additions performed.
    """
    counters = {"psum_reads": 0, "respill_writes": 0, "comparisons": 0, "additions": 0}
    pending = [f for f in fibers if not f.is_empty()]
    passes = 0
    if not pending:
        return Fiber(), 0, counters
    # A merge pass must combine at least two fibers to make progress; a
    # degenerate single-multiplier configuration still time-shares the one
    # comparator node over two input streams.
    fibers_per_pass = max(2, tree_leaves)
    while True:
        passes += 1
        take = pending[:fibers_per_pass]
        rest = pending[fibers_per_pass:]
        counters["psum_reads"] += sum(f.nnz for f in take)
        merged, comparisons, additions = merge_tree_counted(take)
        counters["comparisons"] += comparisons
        counters["additions"] += additions
        if not rest:
            return merged, passes, counters
        # The intermediate merged fiber must be written back to the PSRAM and
        # participate in the next pass.
        counters["respill_writes"] += merged.nnz
        pending = [merged] + rest
