"""Operation-count statistics gathered while executing a dataflow.

The functional dataflow implementations in this package record, element by
element, how much work each phase of the accelerator would have to perform.
The hardware models in :mod:`repro.accelerators` convert these counts (plus
cache and PSRAM behaviour) into cycles and traffic, so the fields below mirror
the quantities the paper's evaluation plots:

* effectual multiplications (the work the Multiplier Network performs),
* intersection probes (the work of aligning operands in IP / Gust),
* partial sums written to and read back from the PSRAM (OP / Gust only),
* merge comparisons performed by the MRN, and
* the number of elements read from each input operand.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DataflowStats:
    """Counters accumulated over one SpMSpM execution."""

    #: Effectual multiply operations issued to the multiplier network.
    multiplications: int = 0
    #: Coordinate comparisons performed to align operands (IP and Gust only).
    intersection_probes: int = 0
    #: Partial-sum elements written to the PSRAM (OP and Gust spill only).
    psum_writes: int = 0
    #: Partial-sum elements read back from the PSRAM during merging.
    psum_reads: int = 0
    #: Pairwise comparisons performed by the merge tree.
    merge_comparisons: int = 0
    #: Additions performed (both IP reductions and merge-time accumulations).
    additions: int = 0
    #: Elements of the stationary operand loaded into the multipliers.
    stationary_elements_read: int = 0
    #: Elements of the streaming operand delivered by the distribution network.
    streaming_elements_read: int = 0
    #: Final output elements produced (nnz of C).
    output_elements: int = 0
    #: Number of stationary-phase iterations (how many times the multiplier
    #: array was refilled).
    stationary_iterations: int = 0
    #: Number of merge passes that had to respill because a row had more
    #: partial fibers than tree leaves.
    merge_passes: int = 0

    def merged_with(self, other: "DataflowStats") -> "DataflowStats":
        """Return the element-wise sum of two stats records."""
        return DataflowStats(
            multiplications=self.multiplications + other.multiplications,
            intersection_probes=self.intersection_probes + other.intersection_probes,
            psum_writes=self.psum_writes + other.psum_writes,
            psum_reads=self.psum_reads + other.psum_reads,
            merge_comparisons=self.merge_comparisons + other.merge_comparisons,
            additions=self.additions + other.additions,
            stationary_elements_read=(
                self.stationary_elements_read + other.stationary_elements_read
            ),
            streaming_elements_read=(
                self.streaming_elements_read + other.streaming_elements_read
            ),
            output_elements=self.output_elements + other.output_elements,
            stationary_iterations=self.stationary_iterations + other.stationary_iterations,
            merge_passes=self.merge_passes + other.merge_passes,
        )

    @property
    def total_compute_ops(self) -> int:
        """Multiplications plus additions: the arithmetic the datapath executes."""
        return self.multiplications + self.additions

    @property
    def total_onchip_elements(self) -> int:
        """Elements that cross the on-chip networks (inputs, psums both ways)."""
        return (
            self.stationary_elements_read
            + self.streaming_elements_read
            + self.psum_writes
            + self.psum_reads
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "multiplications": self.multiplications,
            "intersection_probes": self.intersection_probes,
            "psum_writes": self.psum_writes,
            "psum_reads": self.psum_reads,
            "merge_comparisons": self.merge_comparisons,
            "additions": self.additions,
            "stationary_elements_read": self.stationary_elements_read,
            "streaming_elements_read": self.streaming_elements_read,
            "output_elements": self.output_elements,
            "stationary_iterations": self.stationary_iterations,
            "merge_passes": self.merge_passes,
        }


@dataclass
class DataflowResult:
    """The outcome of running one functional dataflow execution."""

    #: The product matrix, in the output layout Table 3 prescribes.
    output: "object"
    #: Operation counters accumulated during the run.
    stats: DataflowStats = field(default_factory=DataflowStats)
