"""Functional implementations of the six SpMSpM dataflows (Section 2.2).

Each dataflow module executes the SpMSpM computation exactly as the loop nest
of Fig. 2 prescribes, produces the output matrix in the format Table 3
specifies, and records the operation counts (multiplications, intersections,
partial-sum writes/reads, merge comparisons) that the accelerator models later
turn into cycles and traffic.

These implementations are the *algorithmic ground truth* for the hardware
models: the accelerators consume the same element streams, so any divergence
between the two layers is a bug.
"""

from repro.dataflows.base import (
    Dataflow,
    DataflowClass,
    DataflowProperties,
    DATAFLOW_PROPERTIES,
    taxonomy_table,
)
from repro.dataflows.stats import DataflowStats
from repro.dataflows.inner_product import run_inner_product
from repro.dataflows.outer_product import run_outer_product
from repro.dataflows.gustavson import run_gustavson
from repro.dataflows.runner import run_dataflow
from repro.dataflows.transitions import (
    TransitionTable,
    requires_explicit_conversion,
    transition_table,
)

__all__ = [
    "Dataflow",
    "DataflowClass",
    "DataflowProperties",
    "DATAFLOW_PROPERTIES",
    "taxonomy_table",
    "DataflowStats",
    "run_inner_product",
    "run_outer_product",
    "run_gustavson",
    "run_dataflow",
    "TransitionTable",
    "requires_explicit_conversion",
    "transition_table",
]
