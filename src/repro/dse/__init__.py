"""Design-space exploration: open workload and architecture axes.

Three parts (see the per-module docstrings):

* :mod:`repro.dse.workloads` — named workloads: a streamed
  MatrixMarket/SuiteSparse loader plus transformer-pruning and
  GNN-adjacency synthetic generators.
* :mod:`repro.dse.designs` — named design points: crossbar-width,
  memory-hierarchy and 3D-stacked ``AcceleratorConfig`` families.
* :mod:`repro.dse.explore` — :class:`DseSpec`, the (workload x design)
  grid request, and the deterministic Pareto report collation.

``explore`` is resolved lazily: it pulls in :mod:`repro.runtime`, which
the registries themselves do not need, and keeping the registries light
lets the CLI list workloads/designs without paying for the runtime import.
"""

from repro.dse.designs import (
    BUILTIN_DESIGN_POINTS,
    DesignPoint,
    default_design_points,
    design_point_names,
    enumerate_designs,
    get_design_point,
    has_design_point,
    register_design_point,
)
from repro.dse.workloads import (
    BUILTIN_WORKLOADS,
    MatrixMarketError,
    Workload,
    get_workload,
    gnn_adjacency,
    has_workload,
    load_matrix_market,
    matrix_workload,
    register_workload,
    transformer_pruning,
    workload_names,
)

__all__ = [
    "BUILTIN_DESIGN_POINTS",
    "BUILTIN_WORKLOADS",
    "DesignPoint",
    "DseSpec",
    "MatrixMarketError",
    "Workload",
    "collate_dse",
    "default_design_points",
    "design_point_names",
    "dse_report_key",
    "enumerate_designs",
    "get_design_point",
    "get_workload",
    "gnn_adjacency",
    "has_design_point",
    "has_workload",
    "load_matrix_market",
    "matrix_workload",
    "register_design_point",
    "register_workload",
    "transformer_pruning",
    "workload_names",
]

_LAZY_EXPLORE = ("DseSpec", "collate_dse", "dse_report_key")


def __getattr__(name: str):
    if name in _LAZY_EXPLORE:
        from repro.dse import explore

        return getattr(explore, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
