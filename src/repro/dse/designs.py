"""Design-point registry of the design-space-exploration subsystem.

The paper evaluates one fixed Table 5 configuration; this module opens the
architecture axis with parameterized :class:`~repro.arch.config.AcceleratorConfig`
families, following the precedent of the reconfigurable-substrate and
3D-stacked-memory papers in PAPERS.md:

* **Crossbar width** (``xbar*``) — Versa-style scaling of the multiplier
  network (and, proportionally, the distribution / reduction bandwidth).
* **Memory hierarchy** (``mem-*``) — streaming-cache x PSRAM capacity
  cross product, the on-chip SRAM trade-off.
* **3D-stacked latency** (``3d-*``) — RevaMp3D-style monolithic stacking:
  DRAM access latency divided and bandwidth multiplied by the stacking
  factor.

Each family is enumerated from declarative ranges; candidate configs that
violate :class:`AcceleratorConfig`'s validity constraints (line/associativity
divisibility, tree sizing) are skipped rather than raised, so widening a
range can never break enumeration.  Points register by name exactly like
workloads so ``DseSpec`` can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accelerators.area_power import AreaPowerBreakdown, accelerator_area_power
from repro.arch.config import AcceleratorConfig, DramConfig, default_config


@dataclass(frozen=True)
class DesignPoint:
    """One named hardware candidate: an accelerator plus its configuration."""

    name: str
    family: str
    config: AcceleratorConfig = field(default_factory=default_config)
    accelerator: str = "Flexagon"

    def area_power(self) -> AreaPowerBreakdown:
        """Analytical area/power breakdown at this configuration."""
        return accelerator_area_power(self.accelerator, self.config)

    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form (stable: feeds :meth:`DseSpec.key`)."""
        return {
            "name": self.name,
            "family": self.family,
            "accelerator": self.accelerator,
            "config": self.config.to_record(),
        }


# ----------------------------------------------------------------------
# Declarative family ranges
# ----------------------------------------------------------------------
#: Multiplier-network widths beyond the Table 5 value of 64.  Network
#: bandwidths scale proportionally (width / 4, floored at 2) so the
#: distribution network keeps feeding the wider array.
CROSSBAR_WIDTHS: tuple[int, ...] = (16, 32, 128)

#: Streaming-cache capacities (KiB) x PSRAM capacities (KiB).
CACHE_KIB: tuple[int, ...] = (256, 4096)
PSRAM_KIB: tuple[int, ...] = (128, 512)

#: 3D-stacking factors: latency / stacking, bandwidth x stacking.
STACKING_FACTORS: tuple[int, ...] = (2, 4, 8)

#: Table 5 DRAM latency/bandwidth the stacked variants scale from.
_BASE_DRAM_NS = 100.0
_BASE_DRAM_BW = 256e9


def _family_candidates() -> list[DesignPoint]:
    points = [DesignPoint(name="base", family="baseline")]
    for width in CROSSBAR_WIDTHS:
        bandwidth = max(2, width // 4)
        points.append(
            DesignPoint(
                name=f"xbar{width}",
                family="crossbar",
                config=default_config(
                    num_multipliers=width,
                    distribution_bandwidth=bandwidth,
                    reduction_bandwidth=bandwidth,
                ),
            )
        )
    for cache_kib in CACHE_KIB:
        for psram_kib in PSRAM_KIB:
            points.append(
                DesignPoint(
                    name=f"mem-c{cache_kib}k-p{psram_kib}k",
                    family="memory",
                    config=default_config(
                        str_cache_bytes=cache_kib * 1024,
                        psram_bytes=psram_kib * 1024,
                    ),
                )
            )
    for factor in STACKING_FACTORS:
        points.append(
            DesignPoint(
                name=f"3d-x{factor}",
                family="stacked",
                config=default_config(
                    dram=DramConfig(
                        access_time_ns=_BASE_DRAM_NS / factor,
                        bandwidth_bytes_per_s=_BASE_DRAM_BW * factor,
                    )
                ),
            )
        )
    return points


def enumerate_designs(family: str | None = None) -> tuple[DesignPoint, ...]:
    """All valid points of ``family`` (or of every family), in range order.

    A candidate whose configuration violates the ``AcceleratorConfig``
    constraints is silently dropped — the ranges above are declarative and
    individually checked, not guaranteed mutually consistent.
    """
    points = []
    for point in _family_candidates():
        if family is not None and point.family != family:
            continue
        try:
            point.area_power()
        except ValueError:
            continue
        points.append(point)
    return tuple(points)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, DesignPoint] = {}


def register_design_point(point: DesignPoint, *, replace: bool = False) -> DesignPoint:
    """Register one design point by name; re-registering an equal one is a no-op."""
    existing = _REGISTRY.get(point.name)
    if existing is not None and existing != point and not replace:
        raise ValueError(f"design point {point.name!r} is already registered")
    _REGISTRY[point.name] = point
    return point


def design_point_names() -> tuple[str, ...]:
    """Every registered design-point name, sorted."""
    return tuple(sorted(_REGISTRY))


def has_design_point(name: str) -> bool:
    """Whether ``name`` is a registered design point."""
    return name in _REGISTRY


def get_design_point(name: str) -> DesignPoint:
    """The registered point for ``name`` (``ValueError`` names the options)."""
    point = _REGISTRY.get(name)
    if point is None:
        raise ValueError(
            f"unknown design point {name!r}; expected one of {design_point_names()}"
        )
    return point


def default_design_points() -> tuple[str, ...]:
    """The names a ``DseSpec`` sweeps when none are requested: every family."""
    return tuple(point.name for point in BUILTIN_DESIGN_POINTS)


BUILTIN_DESIGN_POINTS: tuple[DesignPoint, ...] = enumerate_designs()

for _point in BUILTIN_DESIGN_POINTS:
    register_design_point(_point)
del _point
