"""Workload registry of the design-space-exploration subsystem.

The paper's evaluation is closed over a fixed model list; this module opens
the workload axis in two directions:

* **Real sparse matrices** — a streamed MatrixMarket parser
  (:func:`load_matrix_market`) covering the coordinate format with
  ``real`` / ``integer`` / ``pattern`` fields and ``general`` / ``symmetric``
  storage, exactly the subset the SuiteSparse collection distributes.
  Indices are 1-based per the format; symmetric files store only the lower
  triangle and are mirror-expanded on load.  Parsing is line-streamed and
  bounded by the ``REPRO_DSE_MAX_NNZ`` / ``REPRO_DSE_MAX_DIM`` knobs so an
  oversized download fails fast instead of exhausting memory.
* **Synthetic sparsity families** — :func:`transformer_pruning` and
  :func:`gnn_adjacency` build :class:`~repro.workloads.layers.LayerSpec`
  instances over the generators of :mod:`repro.sparse.generate` (row-skewed
  magnitude pruning, block-structured pruning, power-law adjacency).

Both kinds register by name (:func:`register_workload`) so a
:class:`~repro.dse.explore.DseSpec` — and the ``python -m repro dse`` CLI —
can sweep them like the paper's models.  Cache identity always derives from
*content*: a matrix workload is keyed by the SHA-256 of its loaded operand
arrays, a synthetic one by its generator parameters — never by a file path,
so two hosts loading the same matrix from different directories share cache
entries.

Setting ``REPRO_DSE_DIR`` to a directory of ``*.mtx`` files auto-registers
each file under its stem name.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro import knobs
from repro.runtime.jobs import _matrix_digest
from repro.sparse.formats import CompressedMatrix, Layout, matrix_from_arrays
from repro.sparse.generate import SparsityPattern
from repro.workloads.layers import LayerSpec


class MatrixMarketError(ValueError):
    """A MatrixMarket file failed to parse; the message names ``file:line``."""


#: Fields the coordinate parser accepts (``complex`` needs two value columns
#: and no simulation here consumes imaginary parts).
_MM_FIELDS = ("real", "integer", "pattern")

#: Symmetry modes the parser accepts (``skew-symmetric`` and ``hermitian``
#: do not occur in the SpGEMM corpora this subsystem targets).
_MM_SYMMETRIES = ("general", "symmetric")


def load_matrix_market(
    path: str | Path,
    *,
    layout: Layout = Layout.CSR,
    max_nnz: int | None = None,
    max_dim: int | None = None,
) -> CompressedMatrix:
    """Parse one MatrixMarket ``coordinate`` file into a compressed matrix.

    The parser streams line by line (never holding the text in memory),
    tolerates CRLF line endings and ``%`` comment lines, accumulates
    duplicate coordinates and drops explicit zeros — the semantics of
    :func:`~repro.sparse.formats.matrix_from_arrays`.  ``pattern`` files
    carry no values; every stored entry becomes ``1.0``.  ``symmetric``
    files are expanded by mirroring every off-diagonal entry.

    ``max_nnz`` / ``max_dim`` bound the declared size line (defaults:
    the ``REPRO_DSE_MAX_NNZ`` / ``REPRO_DSE_MAX_DIM`` knobs); a file past
    either bound raises :class:`MatrixMarketError` before any entry is read.
    """
    path = Path(path)
    if max_nnz is None:
        max_nnz = knobs.get("REPRO_DSE_MAX_NNZ")
    if max_dim is None:
        max_dim = knobs.get("REPRO_DSE_MAX_DIM")
    with path.open("r", encoding="utf-8", errors="replace") as handle:
        return _parse_matrix_market(handle, path.name, layout, max_nnz, max_dim)


def _parse_matrix_market(handle, label, layout, max_nnz, max_dim):
    def fail(lineno: int, message: str):
        raise MatrixMarketError(f"{label}:{lineno}: {message}")

    # -- header (line 1) ------------------------------------------------
    lineno = 1
    header = handle.readline().strip()
    tokens = header.split()
    if not tokens or not tokens[0].lower().startswith("%%matrixmarket"):
        fail(lineno, "missing '%%MatrixMarket' header")
    if len(tokens) != 5 or tokens[1].lower() != "matrix":
        fail(lineno, f"malformed header {header!r}")
    fmt, field_kind, symmetry = (token.lower() for token in tokens[2:5])
    if fmt != "coordinate":
        fail(lineno, f"only the coordinate format is supported, got {fmt!r}")
    if field_kind not in _MM_FIELDS:
        fail(lineno, f"unsupported field {field_kind!r}; expected one of {_MM_FIELDS}")
    if symmetry not in _MM_SYMMETRIES:
        fail(
            lineno,
            f"unsupported symmetry {symmetry!r}; expected one of {_MM_SYMMETRIES}",
        )

    # -- size line (first non-comment line) -----------------------------
    size = None
    for line in handle:
        lineno += 1
        text = line.strip()
        if not text or text.startswith("%"):
            continue
        parts = text.split()
        try:
            size = tuple(int(part) for part in parts)
        except ValueError:
            fail(lineno, f"malformed size line {text!r}")
        if len(size) != 3:
            fail(lineno, "size line must be 'rows cols nnz'")
        break
    if size is None:
        fail(lineno, "missing size line")
    nrows, ncols, declared_nnz = size
    if nrows < 1 or ncols < 1 or declared_nnz < 0:
        fail(lineno, f"invalid size {nrows} x {ncols} with {declared_nnz} entries")
    if max_dim is not None and max(nrows, ncols) > max_dim:
        fail(
            lineno,
            f"dimension {max(nrows, ncols)} exceeds the REPRO_DSE_MAX_DIM "
            f"bound of {max_dim}",
        )
    if max_nnz is not None and declared_nnz > max_nnz:
        fail(
            lineno,
            f"{declared_nnz} entries exceed the REPRO_DSE_MAX_NNZ bound "
            f"of {max_nnz}",
        )

    # -- entries ---------------------------------------------------------
    width = 2 if field_kind == "pattern" else 3
    rows = np.empty(declared_nnz, dtype=np.int64)
    cols = np.empty(declared_nnz, dtype=np.int64)
    values = np.empty(declared_nnz, dtype=np.float64)
    count = 0
    for line in handle:
        lineno += 1
        text = line.strip()
        if not text or text.startswith("%"):
            continue
        if count >= declared_nnz:
            fail(lineno, f"more entries than the declared {declared_nnz}")
        parts = text.split()
        if len(parts) != width:
            fail(lineno, f"expected {width} fields per entry, got {len(parts)}")
        try:
            r = int(parts[0])
            c = int(parts[1])
            value = float(parts[2]) if width == 3 else 1.0
        except ValueError:
            fail(lineno, f"malformed entry {text!r}")
        if not (1 <= r <= nrows and 1 <= c <= ncols):
            fail(
                lineno,
                f"coordinate ({r}, {c}) outside {nrows} x {ncols} "
                "(MatrixMarket indices are 1-based)",
            )
        rows[count] = r - 1
        cols[count] = c - 1
        values[count] = value
        count += 1
    if count != declared_nnz:
        fail(lineno, f"file declares {declared_nnz} entries but provides {count}")

    if symmetry == "symmetric":
        mirror = rows != cols
        rows, cols, values = (
            np.concatenate([rows, cols[mirror]]),
            np.concatenate([cols, rows[mirror]]),
            np.concatenate([values, values[mirror]]),
        )
    return matrix_from_arrays(nrows, ncols, rows, cols, values, layout=layout)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Workload:
    """One named DSE workload: a synthetic layer family or a real matrix.

    ``kind`` is ``"synthetic"`` (``spec`` holds the generator parameters;
    operands are materialised on the executing worker like any sweep job)
    or ``"matrix"`` (``source`` names an on-disk MatrixMarket file whose
    loaded contents become explicit job operands).  ``source`` never enters
    :meth:`digest` — identity is content, not location.
    """

    name: str
    kind: str
    spec: LayerSpec | None = None
    source: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("synthetic", "matrix"):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if (self.kind == "synthetic") != (self.spec is not None):
            raise ValueError("synthetic workloads carry a LayerSpec, matrix ones do not")
        if (self.kind == "matrix") != (self.source is not None):
            raise ValueError("matrix workloads name a source file, synthetic ones do not")

    # ------------------------------------------------------------------
    def operands(self) -> tuple[CompressedMatrix, CompressedMatrix]:
        """The explicit ``(A, B)`` pair of a matrix workload.

        A square matrix multiplies itself (``A @ A``, the canonical
        SuiteSparse SpGEMM benchmark); a rectangular ``m x k`` one
        multiplies its own transpose (``A @ A^T``).  Loads are memoized per
        source path, so the grid's many jobs share one parse.
        """
        if self.kind != "matrix":
            raise ValueError(f"workload {self.name!r} has no explicit operands")
        return _load_operands(self.source)

    def digest(self) -> str:
        """Content hash identifying this workload across processes.

        Matrix workloads hash the loaded operand arrays (shape, layout,
        stored values); synthetic ones hash their generator parameters.
        The digest is what :meth:`repro.dse.explore.DseSpec.key` folds in,
        keeping campaign keys path-independent.
        """
        if self.kind == "matrix":
            a, b = self.operands()
            text = f"matrix:{_matrix_digest(a)}:{_matrix_digest(b)}"
            return hashlib.sha256(text.encode()).hexdigest()
        payload = {"kind": "synthetic", "spec": asdict(self.spec)}
        encoded = json.dumps(payload, sort_keys=True, default=_enum_value)
        return hashlib.sha256(encoded.encode()).hexdigest()

    def to_record(self) -> dict[str, object]:
        """JSON-safe summary row (the catalog / ``--list-workloads`` form)."""
        record: dict[str, object] = {"name": self.name, "kind": self.kind}
        if self.spec is not None:
            record["m"], record["k"], record["n"] = self.spec.m, self.spec.k, self.spec.n
            record["sparsity_a"] = self.spec.sparsity_a
            record["sparsity_b"] = self.spec.sparsity_b
        if self.source is not None:
            record["source"] = self.source
        return record


def _enum_value(value: object) -> object:
    if isinstance(value, SparsityPattern):
        return value.value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for hashing")


@lru_cache(maxsize=8)
def _load_operands(source: str) -> tuple[CompressedMatrix, CompressedMatrix]:
    a = load_matrix_market(source)
    b = a if a.nrows == a.ncols else a.transposed()
    return a, b


# ----------------------------------------------------------------------
# Synthetic generators
# ----------------------------------------------------------------------
def transformer_pruning(
    name: str,
    *,
    d_model: int = 512,
    d_ff: int = 2048,
    seq_len: int = 256,
    weight_sparsity: float = 0.8,
    activation_sparsity: float = 0.6,
    structured: bool = False,
) -> Workload:
    """A pruned transformer FFN projection: ``W[d_ff, d_model] @ X[d_model, seq]``.

    Magnitude pruning keeps per-channel occupancy heavy-tailed
    (``ROW_SKEWED``); ``structured=True`` models block pruning instead
    (``BLOCK``).  Activations are uniformly sparse (ReLU-style).
    """
    spec = LayerSpec(
        name=name,
        m=d_ff,
        k=d_model,
        n=seq_len,
        sparsity_a=weight_sparsity,
        sparsity_b=activation_sparsity,
        pattern_a=SparsityPattern.BLOCK if structured else SparsityPattern.ROW_SKEWED,
        pattern_b=SparsityPattern.UNIFORM,
    )
    return Workload(name=name, kind="synthetic", spec=spec)


def gnn_adjacency(
    name: str,
    *,
    nodes: int = 2048,
    avg_degree: float = 8.0,
    features: int = 128,
    feature_density: float = 0.5,
) -> Workload:
    """A GNN aggregation step: ``Adj[nodes, nodes] @ H[nodes, features]``.

    The adjacency is row-skewed (power-law degree distribution, the shape
    of citation/social graphs); the feature matrix is uniformly sparse
    (bag-of-words or post-ReLU embeddings).
    """
    if not 0.0 < avg_degree <= nodes:
        raise ValueError(f"avg_degree must be in (0, nodes], got {avg_degree}")
    spec = LayerSpec(
        name=name,
        m=nodes,
        k=nodes,
        n=features,
        sparsity_a=1.0 - (avg_degree / nodes),
        sparsity_b=1.0 - feature_density,
        pattern_a=SparsityPattern.ROW_SKEWED,
        pattern_b=SparsityPattern.UNIFORM,
    )
    return Workload(name=name, kind="synthetic", spec=spec)


def matrix_workload(name: str, source: str | Path) -> Workload:
    """A workload over one on-disk MatrixMarket file."""
    return Workload(name=name, kind="matrix", source=str(source))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Workload] = {}


def register_workload(workload: Workload, *, replace: bool = False) -> Workload:
    """Register one workload by name; re-registering an equal one is a no-op."""
    existing = _REGISTRY.get(workload.name)
    if existing is not None and existing != workload and not replace:
        raise ValueError(f"workload {workload.name!r} is already registered")
    _REGISTRY[workload.name] = workload
    return workload


def _scan_workload_dir() -> None:
    """Auto-register ``*.mtx`` files under ``REPRO_DSE_DIR`` by stem name.

    Re-scanned on every registry read so a freshly dropped file is visible
    without restarting; explicit registrations always win over the scan.
    """
    root = knobs.get("REPRO_DSE_DIR")
    if not root:
        return
    directory = Path(root)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.mtx")):
        if path.stem not in _REGISTRY:
            _REGISTRY[path.stem] = matrix_workload(path.stem, path)


def workload_names() -> tuple[str, ...]:
    """Every registered workload name, sorted."""
    _scan_workload_dir()
    return tuple(sorted(_REGISTRY))


def has_workload(name: str) -> bool:
    """Whether ``name`` is a registered DSE workload."""
    _scan_workload_dir()
    return name in _REGISTRY


def get_workload(name: str) -> Workload:
    """The registered workload for ``name`` (``ValueError`` names the options)."""
    _scan_workload_dir()
    workload = _REGISTRY.get(name)
    if workload is None:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {workload_names()}"
        )
    return workload


#: Built-in synthetic presets: three transformer-pruning points spanning the
#: unstructured/structured and moderate/extreme sparsity corners, plus two
#: GNN aggregation shapes modelled on the standard citation benchmarks.
BUILTIN_WORKLOADS: tuple[Workload, ...] = (
    transformer_pruning("xf-prune-80", weight_sparsity=0.80),
    transformer_pruning("xf-prune-95", weight_sparsity=0.95, activation_sparsity=0.7),
    transformer_pruning("xf-block-75", weight_sparsity=0.75, structured=True),
    gnn_adjacency(
        "gnn-cora", nodes=2708, avg_degree=3.9, features=1433, feature_density=0.013
    ),
    gnn_adjacency(
        "gnn-citeseer", nodes=3327, avg_degree=2.7, features=3703, feature_density=0.0085
    ),
)

for _workload in BUILTIN_WORKLOADS:
    register_workload(_workload)
del _workload
