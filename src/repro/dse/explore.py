"""The design-space-exploration driver.

A :class:`DseSpec` is the third request kind of the API (next to
``SweepSpec`` and ``FigureQuery``): a declarative (workload x design-point)
grid over the registries of :mod:`repro.dse.workloads` and
:mod:`repro.dse.designs`.  It compiles down to the same flat
:class:`~repro.runtime.SimJob` plane every sweep uses, so LPT cost
scheduling, crash-resume, ``REPRO_POOL=remote`` fan-out and admission
control all apply to DSE campaigns unchanged.

:func:`collate_dse` folds the per-job results into the Pareto report: one
row per (workload, design point), one aggregate point per design point with
its analytical area/power (:mod:`repro.accelerators.area_power`), and the
Pareto frontiers of total cycles vs. area and vs. power.  Everything is
deterministic and JSON-canonical, so the same campaign always renders to
byte-identical report bodies — the property the warm ``GET /v1/dse/<key>``
route and the CI smoke job assert.

Campaign identity (:meth:`DseSpec.key`) folds in each workload's *content*
digest and each design point's full configuration record, never file paths,
so keys agree across hosts that store the same matrices in different
places.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable
from dataclasses import dataclass

from repro.accelerators.area_power import performance_per_area
from repro.dse.designs import default_design_points, design_point_names, get_design_point
from repro.dse.workloads import get_workload, workload_names
from repro.experiments.settings import ExperimentSettings
from repro.metrics.results import RESULT_SCHEMA_VERSION, Row
from repro.runtime import CACHE_SCHEMA_VERSION, SimJob


def _names_tuple(value: str | Iterable[str] | None) -> tuple[str, ...]:
    """Normalise a name list argument ("a,b", ["a", "b"], None) to a tuple."""
    if value is None:
        return ()
    if isinstance(value, str):
        return tuple(part.strip() for part in value.split(",") if part.strip())
    return tuple(value)


@dataclass(frozen=True)
class DseSpec:
    """A declarative (workloads x design points) exploration grid.

    ``workloads`` name entries of the DSE workload registry; ``designs``
    name design points (default: every built-in family).  Constructor
    arguments are normalised exactly like :class:`~repro.api.SweepSpec`'s,
    so CSV strings and lists both work and specs stay hashable.

    ``scale`` pins the operand scale of synthetic workloads; ``None``
    (default) applies the session settings' MAC-budget policy per workload.
    Unlike a sweep, the *configuration* is never scaled alongside — each
    design point's config IS the quantity under exploration, and scaling it
    would collapse distinct crossbar/memory variants into one another.
    Matrix workloads always run their real operands unscaled.
    """

    workloads: tuple[str, ...] = ()
    designs: tuple[str, ...] = ()
    scale: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", _names_tuple(self.workloads))
        designs = _names_tuple(self.designs)
        if not designs:
            designs = default_design_points()
        object.__setattr__(self, "designs", designs)
        if not self.workloads:
            raise ValueError(
                f"a DSE campaign needs at least one workload; "
                f"registered: {workload_names()}"
            )
        for name in self.workloads:
            get_workload(name)
        for name in self.designs:
            get_design_point(name)
        if self.scale is not None and self.scale <= 0:
            raise ValueError("scale must be positive")

    # ------------------------------------------------------------------
    def compile(
        self, settings: ExperimentSettings
    ) -> tuple[list[SimJob], list[dict[str, str]]]:
        """Lower the grid to flat jobs under ``settings``.

        Returns the jobs plus one metadata dict per job (``workload``,
        ``design_point``, ``family``, ``design``) used to label report rows.
        """
        jobs: list[SimJob] = []
        meta: list[dict[str, str]] = []
        for workload_name in self.workloads:
            workload = get_workload(workload_name)
            for point_name in self.designs:
                point = get_design_point(point_name)
                if workload.kind == "synthetic":
                    spec = workload.spec
                    scale = (
                        self.scale
                        if self.scale is not None
                        else settings.layer_scale(spec)
                    )
                    job = SimJob(
                        design=point.accelerator,
                        config=point.config,
                        spec=spec,
                        scale=scale,
                        seed=spec.deterministic_seed(settings.seed_salt),
                        layer_name=spec.name,
                        engine=settings.engine,
                    )
                else:
                    a, b = workload.operands()
                    job = SimJob(
                        design=point.accelerator,
                        config=point.config,
                        a=a,
                        b=b,
                        layer_name=workload.name,
                        engine=settings.engine,
                    )
                jobs.append(job)
                meta.append(
                    {
                        "workload": workload_name,
                        "design_point": point_name,
                        "family": point.family,
                        "design": point.accelerator,
                    }
                )
        return jobs, meta

    # ------------------------------------------------------------------
    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form (designs already resolved to explicit names)."""
        return {
            "workloads": list(self.workloads),
            "designs": list(self.designs),
            "scale": self.scale,
        }

    @classmethod
    def from_record(cls, record: dict) -> "DseSpec":
        """Inverse of :meth:`to_record`."""
        return cls(**record)

    def key(self) -> str:
        """Stable content hash identifying this campaign across processes.

        Workloads contribute their content digests (operand bytes for
        matrices, generator parameters for synthetic specs) and design
        points their full configuration records — never registry state or
        file paths, so the key survives re-registration order and host
        layout differences.  A ``"kind"`` discriminator keeps the key space
        disjoint from sweeps and figure queries.
        """
        payload = {
            "kind": "dse",
            "workloads": [
                {"name": name, "digest": get_workload(name).digest()}
                for name in self.workloads
            ],
            "designs": [get_design_point(name).to_record() for name in self.designs],
            "scale": self.scale,
        }
        encoded = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(encoded.encode()).hexdigest()


# ----------------------------------------------------------------------
# Report collation
# ----------------------------------------------------------------------
def collate_dse(spec: DseSpec, meta: list[dict[str, str]], results: list) -> dict:
    """Fold per-job results into the deterministic Pareto report.

    ``meta`` and ``results`` are parallel lists in :meth:`DseSpec.compile`
    order.  Returns ``{"rows", "points", "frontier"}``: per-(workload,
    design point) rows, per-design-point aggregates with analytical
    area/power, and the Pareto frontiers (design-point names, cheapest
    first) of total cycles vs. area and vs. power.
    """
    rows: list[Row] = []
    totals: dict[str, float] = {}
    for entry, result in zip(meta, results):
        point = get_design_point(entry["design_point"])
        cycles = float(result.total_cycles)
        rows.append(
            {
                "workload": entry["workload"],
                "design_point": entry["design_point"],
                "family": entry["family"],
                "design": entry["design"],
                "dataflow": result.dataflow.name,
                "cycles": cycles,
                "seconds": point.config.cycles_to_seconds(cycles),
            }
        )
        totals[entry["design_point"]] = totals.get(entry["design_point"], 0.0) + cycles

    points: list[Row] = []
    for name in spec.designs:
        point = get_design_point(name)
        breakdown = point.area_power()
        cycles = totals.get(name, 0.0)
        points.append(
            {
                "design_point": name,
                "family": point.family,
                "total_cycles": cycles,
                "area_mm2": breakdown.total_area,
                "power_mw": breakdown.total_power,
                "perf_per_area": (
                    performance_per_area(cycles, breakdown.total_area)
                    if cycles > 0
                    else None
                ),
            }
        )

    frontier = {
        "cycles_vs_area": _pareto_front(points, "area_mm2"),
        "cycles_vs_power": _pareto_front(points, "power_mw"),
    }
    return {"rows": rows, "points": points, "frontier": frontier}


def _pareto_front(points: list[Row], metric: str) -> list[str]:
    """Design-point names on the (total_cycles, ``metric``) Pareto frontier.

    A point is kept iff no other point is at least as good on both axes and
    strictly better on one.  The scan sorts by (cycles, metric, name) — the
    name tiebreak makes the frontier order deterministic under exact ties —
    and keeps every point that strictly improves the metric, which is the
    classic sorted-scan non-dominance test for two minimised axes.
    """
    ordered = sorted(
        points,
        key=lambda row: (row["total_cycles"], row[metric], row["design_point"]),
    )
    frontier: list[str] = []
    best = float("inf")
    for row in ordered:
        if row[metric] < best:
            frontier.append(str(row["design_point"]))
            best = row[metric]
    return frontier


def dse_report_key(spec: DseSpec, settings: ExperimentSettings) -> str:
    """Cache key of the rendered report body for (campaign, settings).

    Prefixed ``dse-`` so campaign reports live in their own evictable
    namespace (``python -m repro cache prune --prefix dse-``) and are
    excluded from fabric anti-entropy (they re-render warm from the synced
    per-job entries).  Both schema versions are folded in so a semantic
    change in either the simulator or the record layout retires stale
    bodies instead of serving them.
    """
    return report_key_for(spec.key(), settings)


def report_key_for(spec_key: str, settings: ExperimentSettings) -> str:
    """:func:`dse_report_key` from a raw campaign key (the serve GET route,
    which receives the key in the URL and never reconstructs the spec)."""
    payload = {
        "kind": "dse-report",
        "spec": spec_key,
        "settings": settings.to_record(),
        "result_schema": RESULT_SCHEMA_VERSION,
        "cache_schema": CACHE_SCHEMA_VERSION,
    }
    encoded = json.dumps(payload, sort_keys=True)
    return "dse-" + hashlib.sha256(encoded.encode()).hexdigest()
