"""Fleet-wide resilience policies: deadlines, backoff, budgets, breakers.

Every blocking sleep, retry loop, timeout and give-up threshold in the
serving front-end (:mod:`repro.serve`) and the execution fabric
(:mod:`repro.fabric`) is expressed through this module, so the whole
repository has exactly one place where "how long do we wait, how often do
we retry, when do we give up" is decided — and every limit is a registered
``REPRO_*`` knob (:mod:`repro.knobs`) instead of a constant buried in a
loop.  The pieces:

* :class:`Deadline` — a monotonic-clock budget (lease expiry, request
  deadlines, drain windows).
* :class:`Backoff` — capped exponential delay with jitter, reset on
  success (worker claim/upload retry pacing, peer-sync retries).
* :class:`RetryBudget` — a bounded number of attempts (fabric lease
  budgets, transient-error retries).
* :class:`CircuitBreaker` — failure-threshold breaker with a half-open
  probe, so a dead dependency produces quiet waiting instead of a hot
  error loop (the worker's coordinator client).
* :func:`pause` — the package's one blocking sleep, stop-event aware.
* :func:`retry_call` — the canonical retry loop composing all of the
  above.

Everything here is wall-clock plumbing and must never leak into result
bytes: nothing in this module may be called from a cache-key or
wire-serialization path.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro import knobs


class DeadlineExceeded(TimeoutError):
    """An operation ran past its :class:`Deadline`."""


class Deadline:
    """A point on the monotonic clock that work must finish by.

    ``now`` parameters exist for tests (inject a fake clock); production
    callers omit them and get ``time.monotonic()``.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float, *, now: float | None = None) -> "Deadline":
        base = time.monotonic() if now is None else now
        return cls(base + seconds)

    def remaining(self, *, now: float | None = None) -> float:
        base = time.monotonic() if now is None else now
        return self.expires_at - base

    def expired(self, *, now: float | None = None) -> bool:
        return self.remaining(now=now) <= 0

    def check(self, *, now: float | None = None) -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired(now=now):
            raise DeadlineExceeded("deadline exceeded")


class Backoff:
    """Capped exponential backoff with jitter.

    One instance paces one retry loop (not thread-safe by design): each
    :meth:`next_delay` grows the delay by ``multiplier`` up to ``cap``,
    with a ``jitter`` fraction of uniform noise so a fleet of workers
    hitting the same failure never thunders back in lockstep.
    :meth:`reset` (on success) snaps back to ``initial``.
    """

    def __init__(
        self,
        initial: float,
        cap: float,
        multiplier: float = 2.0,
        jitter: float = 0.1,
        rng: random.Random | None = None,
    ) -> None:
        self.initial = max(0.0, initial)
        self.cap = cap
        self.multiplier = multiplier
        self.jitter = jitter
        self.failures = 0
        self._rng = rng if rng is not None else random.Random()

    @classmethod
    def from_env(
        cls,
        initial: float | None = None,
        rng: random.Random | None = None,
    ) -> "Backoff":
        """A backoff under the registered knobs; ``initial`` may be pinned
        by the caller (e.g. a worker seeding from its poll interval)."""
        return cls(
            initial if initial is not None else knobs.get("REPRO_BACKOFF_INITIAL"),
            knobs.get("REPRO_BACKOFF_CAP"),
            knobs.get("REPRO_BACKOFF_MULTIPLIER"),
            knobs.get("REPRO_BACKOFF_JITTER"),
            rng=rng,
        )

    def next_delay(self) -> float:
        delay = min(self.cap, self.initial * (self.multiplier ** self.failures))
        self.failures += 1
        return jittered(delay, fraction=self.jitter, rng=self._rng)

    def reset(self) -> None:
        self.failures = 0


def jittered(
    seconds: float,
    *,
    fraction: float | None = None,
    rng: random.Random | None = None,
) -> float:
    """``seconds`` +/- a uniform ``fraction`` of itself (never negative).

    The desynchronisation primitive for anything periodic — idle worker
    polls, ``cache pull --interval`` loops — so identical configurations
    spread out instead of stampeding in phase.  ``fraction`` defaults to
    the ``REPRO_BACKOFF_JITTER`` knob.
    """
    if fraction is None:
        fraction = knobs.get("REPRO_BACKOFF_JITTER")
    if seconds <= 0 or fraction <= 0:
        return max(0.0, seconds)
    spread = seconds * fraction
    chooser = rng if rng is not None else random
    return max(0.0, seconds + chooser.uniform(-spread, spread))


class RetryBudget:
    """A bounded number of attempts; spend one per try via :meth:`grant`."""

    __slots__ = ("attempts", "spent")

    def __init__(self, attempts: int) -> None:
        self.attempts = int(attempts)
        self.spent = 0

    @classmethod
    def from_env(cls) -> "RetryBudget":
        return cls(knobs.get("REPRO_RETRY_ATTEMPTS"))

    def grant(self) -> bool:
        """Take one attempt; ``False`` once the budget is exhausted."""
        if self.spent >= self.attempts:
            return False
        self.spent += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.attempts


@dataclass(frozen=True)
class LeasePolicy:
    """Lease length + attempt budget governing fabric work items."""

    lease_seconds: float
    max_attempts: int

    @classmethod
    def from_env(cls) -> "LeasePolicy":
        return cls(
            lease_seconds=knobs.get("REPRO_LEASE_SECONDS"),
            max_attempts=knobs.get("REPRO_MAX_ATTEMPTS"),
        )

    def lease_deadline(self, *, now: float | None = None) -> Deadline:
        return Deadline.after(self.lease_seconds, now=now)

    def lease_budget(self) -> RetryBudget:
        return RetryBudget(self.max_attempts)


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-threshold breaker with a timed half-open probe.

    ``threshold`` consecutive failures open the circuit; while open,
    :meth:`allow` refuses attempts until ``reset_seconds`` have passed,
    then admits exactly one probe (half-open).  The probe's
    :meth:`record_success` closes the circuit; its :meth:`record_failure`
    re-opens it for another cooldown.  Thread-safe: the worker's run loop
    and its heartbeat thread may share one breaker.
    """

    def __init__(self, threshold: int, reset_seconds: float) -> None:
        self.threshold = max(1, int(threshold))
        self.reset_seconds = reset_seconds
        self._lock = threading.Lock()
        self._failures = 0  # guarded-by: _lock
        self._state = CLOSED  # guarded-by: _lock
        self._retry_at: float | None = None  # guarded-by: _lock
        self.opened_count = 0  # guarded-by: _lock

    @classmethod
    def from_env(cls) -> "CircuitBreaker":
        return cls(
            knobs.get("REPRO_BREAKER_THRESHOLD"),
            knobs.get("REPRO_BREAKER_RESET"),
        )

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self, *, now: float | None = None) -> bool:
        """Whether an attempt may proceed right now.

        While open, flips to half-open (admitting this one probe) once the
        cooldown elapses; a half-open circuit admits no *further* attempts
        until the probe reports back.
        """
        base = time.monotonic() if now is None else now
        with self._lock:
            if self._state == CLOSED:
                return True
            if (
                self._state == OPEN
                and self._retry_at is not None
                and base >= self._retry_at
            ):
                self._state = HALF_OPEN
                return True
            return False

    def cooldown(self, *, now: float | None = None) -> float:
        """Seconds until the next probe is due (0 when attempts may flow)."""
        base = time.monotonic() if now is None else now
        with self._lock:
            if self._state != OPEN or self._retry_at is None:
                return 0.0
            return max(0.0, self._retry_at - base)

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = CLOSED
            self._retry_at = None

    def record_failure(self, *, now: float | None = None) -> bool:
        """Count one failure; ``True`` when this failure *opened* the
        circuit (callers log the transition once, not per failure)."""
        base = time.monotonic() if now is None else now
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or self._failures >= self.threshold:
                newly_open = self._state != OPEN
                self._state = OPEN
                self._retry_at = base + self.reset_seconds
                if newly_open:
                    self.opened_count += 1
                return newly_open
            return False


def pause(delay: float, stop: threading.Event | None = None) -> bool:
    """The package's one blocking sleep.

    Waits ``delay`` seconds — or until ``stop`` is set, which is what makes
    every backoff loop promptly interruptible.  Returns ``True`` when the
    wait ended because ``stop`` fired (callers break their loop on it).
    """
    if stop is not None:
        return stop.wait(max(0.0, delay))
    if delay > 0:
        time.sleep(delay)
    return False


def retry_call(
    fn: Callable[[], object],
    *,
    retryable: tuple[type[BaseException], ...],
    giveup: Callable[[BaseException], bool] | None = None,
    budget: RetryBudget | None = None,
    backoff: Backoff | None = None,
    stop: threading.Event | None = None,
    log: Callable[[str], None] | None = None,
    describe: str = "operation",
):
    """Call ``fn`` until it succeeds or the policy says stop.

    Retries only ``retryable`` exceptions (anything else propagates
    immediately), except those ``giveup`` vetoes — e.g. retry transport
    errors but not HTTP-level rejections.  The attempt count comes from
    ``budget`` (default: the ``REPRO_RETRY_ATTEMPTS`` knob), the pacing
    from ``backoff`` (default: the ``REPRO_BACKOFF_*`` knobs), and a set
    ``stop`` event abandons the wait and re-raises the last error.
    """
    budget = budget if budget is not None else RetryBudget.from_env()
    backoff = backoff if backoff is not None else Backoff.from_env()
    last: BaseException | None = None
    while budget.grant():
        try:
            return fn()
        except retryable as error:
            if giveup is not None and giveup(error):
                raise
            last = error
            if budget.exhausted:
                break
            delay = backoff.next_delay()
            if log is not None:
                log(
                    f"{describe} failed ({type(error).__name__}: {error}); "
                    f"retrying in {delay:.2f}s "
                    f"({budget.spent}/{budget.attempts} attempts)"
                )
            if pause(delay, stop):
                break
    assert last is not None, "retry budget must allow at least one attempt"
    raise last


# ----------------------------------------------------------------------
# Knob-backed policy accessors (the serve/fabric call sites use these)
# ----------------------------------------------------------------------
def http_timeout() -> float:
    """Socket timeout for fabric/sync HTTP clients (``REPRO_HTTP_TIMEOUT``)."""
    return knobs.get("REPRO_HTTP_TIMEOUT")


def request_deadline_seconds() -> float | None:
    """Per-request wall budget of the serve router; ``None`` when disabled."""
    value = knobs.get("REPRO_REQUEST_DEADLINE")
    return value if value > 0 else None


def drain_seconds() -> float:
    """How long a shutting-down server waits for in-flight jobs."""
    return knobs.get("REPRO_DRAIN_SECONDS")
