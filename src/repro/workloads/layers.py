"""Layer specifications and their materialisation into synthetic matrices.

A :class:`LayerSpec` captures everything the evaluation needs to know about
one SpMSpM layer: the GEMM dimensions, the sparsity of each operand and the
sparsity pattern.  ``materialize_layer`` turns a spec into a concrete pair of
compressed matrices, optionally *scaled*: pure-Python cycle simulation of the
full-size layers (up to tens of MiB compressed) is not tractable in this
environment, so the benchmark harness shrinks the dimensions by a scale
factor while the accelerator configuration shrinks its SRAM capacities by the
same factor (see ``AcceleratorConfig.scaled``), preserving the
working-set-to-capacity ratios that drive the paper's trends.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass, replace

from repro.sparse.formats import CompressedMatrix, Layout
from repro.sparse.generate import SparsityPattern, random_sparse


@dataclass(frozen=True)
class LayerSpec:
    """One SpMSpM layer: ``C[M, N] = A[M, K] x B[K, N]``.

    Attributes
    ----------
    name:
        Layer label (e.g. ``"SQ5"`` or ``"resnet50/conv3_2"``).
    m, k, n:
        GEMM dimensions.
    sparsity_a, sparsity_b:
        Fraction of *zero* entries in A and B (the convention of Table 2 and
        Table 6, where sparsity is reported in percent).
    pattern_a, pattern_b:
        Spatial distribution of the non-zeros of each operand.
    """

    name: str
    m: int
    k: int
    n: int
    sparsity_a: float
    sparsity_b: float
    pattern_a: SparsityPattern = SparsityPattern.UNIFORM
    pattern_b: SparsityPattern = SparsityPattern.UNIFORM

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) < 1:
            raise ValueError(f"layer {self.name!r} has a non-positive dimension")
        for label, value in (("sparsity_a", self.sparsity_a), ("sparsity_b", self.sparsity_b)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"layer {self.name!r}: {label} must be in [0, 1], got {value}")

    # ------------------------------------------------------------------
    @property
    def density_a(self) -> float:
        """Fraction of non-zeros in A."""
        return 1.0 - self.sparsity_a

    @property
    def density_b(self) -> float:
        """Fraction of non-zeros in B."""
        return 1.0 - self.sparsity_b

    @property
    def dense_macs(self) -> int:
        """Multiply-accumulates a dense GEMM of this shape would perform."""
        return self.m * self.k * self.n

    def expected_nnz_a(self) -> float:
        """Expected number of non-zeros in A."""
        return self.m * self.k * self.density_a

    def expected_nnz_b(self) -> float:
        """Expected number of non-zeros in B."""
        return self.k * self.n * self.density_b

    def expected_compressed_bytes_a(self, element_bytes: int = 4) -> float:
        """Approximate compressed size of A in bytes."""
        return self.expected_nnz_a() * element_bytes + (self.m + 1) * 4

    def expected_compressed_bytes_b(self, element_bytes: int = 4) -> float:
        """Approximate compressed size of B in bytes."""
        return self.expected_nnz_b() * element_bytes + (self.k + 1) * 4

    # ------------------------------------------------------------------
    def scaled(self, scale: float) -> "LayerSpec":
        """Return a copy with every dimension multiplied by ``scale`` (min 1)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        if scale == 1.0:
            return self
        return replace(
            self,
            m=max(1, int(round(self.m * scale))),
            k=max(1, int(round(self.k * scale))),
            n=max(1, int(round(self.n * scale))),
        )

    def deterministic_seed(self, salt: int = 0) -> int:
        """A reproducible RNG seed derived from the layer name."""
        digest = hashlib.sha256(f"{self.name}:{salt}".encode()).digest()
        return int.from_bytes(digest[:4], "little")


def materialize_layer(
    spec: LayerSpec,
    *,
    scale: float = 1.0,
    seed: int | None = None,
    layout_a: Layout = Layout.CSR,
    layout_b: Layout = Layout.CSR,
) -> tuple[CompressedMatrix, CompressedMatrix]:
    """Generate the synthetic ``(A, B)`` operand pair for a layer spec.

    ``scale`` shrinks (or enlarges) every dimension; sparsities are kept, so
    the compressed sizes scale quadratically with ``scale``.

    Generation is deterministic in its arguments, so a small LRU memo shares
    the operand pair between the consecutive jobs of a sweep grid that
    simulate the same layer on different designs — which also lets the
    engine's per-pair derived-structure memos (layout views, output-row
    counts) hit across those jobs.  Matrices are treated as immutable
    throughout the code base, so sharing is safe.
    """
    return _materialize_cached(spec, scale, seed, layout_a, layout_b)


@functools.lru_cache(maxsize=4)
def _materialize_cached(
    spec: "LayerSpec",
    scale: float,
    seed: int | None,
    layout_a: Layout,
    layout_b: Layout,
) -> tuple[CompressedMatrix, CompressedMatrix]:
    scaled = spec.scaled(scale)
    base_seed = spec.deterministic_seed() if seed is None else seed
    a = random_sparse(
        scaled.m,
        scaled.k,
        scaled.density_a,
        pattern=scaled.pattern_a,
        layout=layout_a,
        seed=base_seed,
    )
    b = random_sparse(
        scaled.k,
        scaled.n,
        scaled.density_b,
        pattern=scaled.pattern_b,
        layout=layout_b,
        seed=base_seed + 1,
    )
    return a, b


def scale_for_budget(spec: LayerSpec, max_dense_macs: float) -> float:
    """Scale factor that keeps the layer's dense MAC count under a budget.

    Used by the benchmark harness to pick a per-layer scale that keeps the
    pure-Python simulation tractable while leaving small layers untouched.
    """
    if max_dense_macs <= 0:
        raise ValueError("the MAC budget must be positive")
    if spec.dense_macs <= max_dense_macs:
        return 1.0
    # Dense MACs scale with the cube of the linear scale factor.
    return (max_dense_macs / spec.dense_macs) ** (1.0 / 3.0)


def effective_scale(specs: list[LayerSpec], max_dense_macs: float) -> float:
    """One common scale factor for a set of layers (the largest one's budget)."""
    if not specs:
        return 1.0
    return min(scale_for_budget(spec, max_dense_macs) for spec in specs)


def compressed_mib(value_bytes: float) -> float:
    """Convert bytes to MiB (for reporting against Table 2 / Table 6)."""
    return value_bytes / (1024.0 * 1024.0)


def round_up_pow2(value: int) -> int:
    """Smallest power of two >= value (used by sweep benchmarks)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def human_macs(value: float) -> str:
    """Human-readable MAC count (e.g. ``"3.2M"``)."""
    for suffix, factor in (("G", 1e9), ("M", 1e6), ("K", 1e3)):
        if value >= factor:
            return f"{value / factor:.1f}{suffix}"
    return f"{value:.0f}"


def layer_summary(spec: LayerSpec) -> dict[str, object]:
    """Row-form summary of a layer spec (used by Table 6 reporting)."""
    return {
        "layer": spec.name,
        "M": spec.m,
        "N": spec.n,
        "K": spec.k,
        "spA(%)": round(100 * spec.sparsity_a, 1),
        "spB(%)": round(100 * spec.sparsity_b, 1),
        "csA(KiB)": round(spec.expected_compressed_bytes_a() / 1024, 1),
        "csB(KiB)": round(spec.expected_compressed_bytes_b() / 1024, 1),
        "dense MACs": human_macs(spec.dense_macs),
    }
