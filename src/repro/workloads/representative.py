"""The nine representative DNN layers of Table 6.

The paper's layer-wise evaluation (Figs. 13-16) uses nine layers chosen so
that the first three favour Inner Product (SQ5, SQ11, R4), the next three
favour Outer Product (R6, S-R3, V0) and the last three favour Gustavson's
(MB215, V7, A2).  Table 6 gives the exact dimensions and sparsities; the
specs below reproduce them verbatim in the table's own convention
(``A`` is ``M x K`` with sparsity ``spA``, ``B`` is ``K x N`` with ``spB``).
"""

from __future__ import annotations

from repro.dataflows.base import DataflowClass
from repro.workloads.layers import LayerSpec

#: Table 6, column for column.  The trailing member of each tuple is the
#: dataflow family the paper observes the layer benefits from the most.
_TABLE6 = [
    # name,   M,    N,     K,    spA,  spB,  favoured family
    ("SQ5",    64,  2916,   16, 0.68, 0.11, DataflowClass.INNER_PRODUCT),
    ("SQ11",  128,   729,   32, 0.70, 0.10, DataflowClass.INNER_PRODUCT),
    ("R4",    256,  3136,   64, 0.88, 0.09, DataflowClass.INNER_PRODUCT),
    ("R6",     64,  2916,  576, 0.89, 0.53, DataflowClass.OUTER_PRODUCT),
    ("S-R3",   64,  5329,  576, 0.89, 0.46, DataflowClass.OUTER_PRODUCT),
    ("V0",    128, 12100,  576, 0.90, 0.61, DataflowClass.OUTER_PRODUCT),
    ("MB215", 128,     8,  512, 0.50, 0.00, DataflowClass.GUSTAVSON),
    ("V7",    512,   144, 4608, 0.90, 0.94, DataflowClass.GUSTAVSON),
    ("A2",    384,   121, 1728, 0.70, 0.54, DataflowClass.GUSTAVSON),
]

#: Table 6 compressed sizes (KiB), kept for the Table 6 reproduction bench.
TABLE6_COMPRESSED_KIB = {
    "SQ5": (1.2, 162, 728),
    "SQ11": (4.8, 82, 364),
    "R4": (7.6, 709, 3136),
    "R6": (16, 3086, 728),
    "S-R3": (16, 6422, 1332),
    "V0": (29, 21357, 12321),
    "MB215": (128, 16, 4),
    "V7": (921, 177, 288),
    "A2": (777, 373, 181),
}


def _build() -> dict[str, tuple[LayerSpec, DataflowClass]]:
    table = {}
    for name, m, n, k, sp_a, sp_b, favoured in _TABLE6:
        spec = LayerSpec(
            name=name, m=m, k=k, n=n, sparsity_a=sp_a, sparsity_b=sp_b
        )
        table[name] = (spec, favoured)
    return table


_REGISTRY = _build()

#: The nine Table 6 layer specs, in table order.
REPRESENTATIVE_LAYERS: list[LayerSpec] = [spec for spec, _ in _REGISTRY.values()]

#: The dataflow family each layer is expected to favour.
FAVOURED_DATAFLOW_CLASS: dict[str, DataflowClass] = {
    name: favoured for name, (_, favoured) in _REGISTRY.items()
}


def get_representative_layer(name: str) -> LayerSpec:
    """Look up one of the Table 6 layers by its name (e.g. ``"V0"``)."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown representative layer {name!r}; available: {', '.join(_REGISTRY)}"
        )
    return _REGISTRY[name][0]


def representative_layer_names() -> list[str]:
    """The nine layer names in Table 6 order."""
    return list(_REGISTRY)
