"""The eight DNN models of Table 2, reconstructed layer by layer.

The paper evaluates end-to-end execution of eight sparse DNN models taken
from MLPerf plus a few extras: AlexNet, SqueezeNet, VGG-16, ResNet-50,
SSD-ResNets, SSD-MobileNets, DistilBERT and MobileBERT.  Table 2 reports, per
model, the number of SpMSpM layers and the average sparsity of the two
operands; the layer dimensions themselves come from the published network
architectures (convolutions lowered to GEMM with im2col, attention and MLP
blocks as plain GEMMs).

Operand convention (the same as the paper's Table 2 and Table 6): each layer
is expressed as ``C[M, N] = A[M, K] x B[K, N]`` with **A the weights**
(M = output channels, K = input channels x kernel area) and **B the
activations** (K x N with N = spatial positions or tokens).  The per-model
average sparsities of Table 2 are applied to the corresponding operand
(weight sparsity to A, activation sparsity to B), with a deterministic
per-layer jitter so that — as in the paper — the best dataflow varies from
layer to layer within a model.  Weights are assumed to be stored offline in
both CSR and CSC (as the paper does), so the inter-layer format constraint
falls on the activation operand.

Full-size layer dimensions are kept in the specs; the benchmark harness
scales them down (together with the on-chip memory capacities) to keep the
pure-Python simulation tractable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.sparse.generate import SparsityPattern
from repro.workloads.layers import LayerSpec


@dataclass(frozen=True)
class ModelSpec:
    """One DNN model: an ordered chain of SpMSpM layers plus Table 2 metadata."""

    name: str
    short_name: str
    domain: str
    layers: tuple[LayerSpec, ...]
    #: Average weight sparsity reported in Table 2 (column AvSpA, in [0, 1]).
    table2_weight_sparsity: float
    #: Average activation sparsity reported in Table 2 (column AvSpB, in [0, 1]).
    table2_activation_sparsity: float
    #: CPU MKL cycles reported in Table 2 (in millions), for reference only.
    table2_cpu_megacycles: float
    notes: str = ""

    @property
    def num_layers(self) -> int:
        """Number of SpMSpM layers in the chain."""
        return len(self.layers)


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def _jitter(name: str, base: float, spread: float, lo: float = 0.01, hi: float = 0.99) -> float:
    """Deterministic per-layer sparsity jitter around the model average."""
    digest = hashlib.sha256(name.encode()).digest()
    unit = int.from_bytes(digest[:4], "little") / 2**32  # [0, 1)
    value = base + (unit - 0.5) * 2.0 * spread
    return min(hi, max(lo, value))


def _conv_layer(
    model: str,
    index: int,
    *,
    spatial: int,
    cin: int,
    cout: int,
    kernel: int,
    act_sparsity: float,
    weight_sparsity: float,
    act_pattern: SparsityPattern = SparsityPattern.UNIFORM,
    weight_pattern: SparsityPattern = SparsityPattern.ROW_SKEWED,
) -> LayerSpec:
    """A convolution lowered to GEMM: A = weights (cout x cin*k*k), B = activations."""
    name = f"{model}/L{index}"
    return LayerSpec(
        name=name,
        m=cout,
        k=cin * kernel * kernel,
        n=spatial,
        sparsity_a=_jitter(name + ":w", weight_sparsity, 0.08),
        sparsity_b=_jitter(name + ":a", act_sparsity, 0.12),
        pattern_a=weight_pattern,
        pattern_b=act_pattern,
    )


def _fc_layer(
    model: str,
    index: int,
    *,
    tokens: int,
    cin: int,
    cout: int,
    act_sparsity: float,
    weight_sparsity: float,
) -> LayerSpec:
    """A fully-connected / attention projection GEMM: A = weights, B = activations."""
    name = f"{model}/L{index}"
    return LayerSpec(
        name=name,
        m=cout,
        k=cin,
        n=tokens,
        sparsity_a=_jitter(name + ":w", weight_sparsity, 0.06),
        sparsity_b=_jitter(name + ":a", act_sparsity, 0.10),
    )


# ----------------------------------------------------------------------
# Model definitions
# ----------------------------------------------------------------------
def _alexnet() -> ModelSpec:
    """AlexNet: 5 convolutions + 2 FC layers (Table 2: 7 layers, 70% / 48%)."""
    act, wgt = 0.48, 0.70
    shapes = [
        # (spatial, cin, cout, kernel)
        (55 * 55, 3, 96, 11),
        (27 * 27, 96, 256, 5),
        (13 * 13, 256, 384, 3),
        (13 * 13, 384, 384, 3),
        (13 * 13, 384, 256, 3),
    ]
    layers = [
        _conv_layer("alexnet", i, spatial=s, cin=ci, cout=co, kernel=k,
                    act_sparsity=act, weight_sparsity=wgt)
        for i, (s, ci, co, k) in enumerate(shapes)
    ]
    layers.append(_fc_layer("alexnet", 5, tokens=16, cin=9216, cout=4096,
                            act_sparsity=act, weight_sparsity=wgt))
    layers.append(_fc_layer("alexnet", 6, tokens=16, cin=4096, cout=4096,
                            act_sparsity=act, weight_sparsity=wgt))
    return ModelSpec(
        name="AlexNet", short_name="A", domain="CV",
        layers=tuple(layers),
        table2_weight_sparsity=0.70, table2_activation_sparsity=0.48,
        table2_cpu_megacycles=63.41,
        notes="5 conv + 2 FC layers; FC layers evaluated at batch 16.",
    )


def _squeezenet() -> ModelSpec:
    """SqueezeNet v1.1: conv1 + 8 fire modules (3 GEMMs each) + conv10 = 26 layers."""
    act, wgt = 0.31, 0.70
    layers: list[LayerSpec] = []
    index = 0
    layers.append(_conv_layer("squeezenet", index, spatial=111 * 111, cin=3, cout=64,
                              kernel=3, act_sparsity=act, weight_sparsity=wgt))
    index += 1
    # (spatial, cin, squeeze, expand) per fire module of SqueezeNet v1.1.
    fire_configs = [
        (55 * 55, 64, 16, 64),
        (55 * 55, 128, 16, 64),
        (27 * 27, 128, 32, 128),
        (27 * 27, 256, 32, 128),
        (13 * 13, 256, 48, 192),
        (13 * 13, 384, 48, 192),
        (13 * 13, 384, 64, 256),
        (13 * 13, 512, 64, 256),
    ]
    for spatial, cin, squeeze, expand in fire_configs:
        layers.append(_conv_layer("squeezenet", index, spatial=spatial, cin=cin,
                                  cout=squeeze, kernel=1,
                                  act_sparsity=act, weight_sparsity=wgt))
        index += 1
        layers.append(_conv_layer("squeezenet", index, spatial=spatial, cin=squeeze,
                                  cout=expand, kernel=1,
                                  act_sparsity=act, weight_sparsity=wgt))
        index += 1
        layers.append(_conv_layer("squeezenet", index, spatial=spatial, cin=squeeze,
                                  cout=expand, kernel=3,
                                  act_sparsity=act, weight_sparsity=wgt))
        index += 1
    layers.append(_conv_layer("squeezenet", index, spatial=13 * 13, cin=512, cout=1000,
                              kernel=1, act_sparsity=act, weight_sparsity=wgt))
    return ModelSpec(
        name="SqueezeNet", short_name="SQ", domain="CV",
        layers=tuple(layers),
        table2_weight_sparsity=0.70, table2_activation_sparsity=0.31,
        table2_cpu_megacycles=26.6,
        notes="conv1 + 8 fire modules (squeeze/expand1x1/expand3x3) + conv10.",
    )


def _vgg16() -> ModelSpec:
    """VGG-16 evaluated on its 8 largest convolution stages (Table 2: 8 layers)."""
    act, wgt = 0.80, 0.90
    shapes = [
        (224 * 224, 64, 64, 3),
        (112 * 112, 64, 128, 3),
        (112 * 112, 128, 128, 3),
        (56 * 56, 128, 256, 3),
        (56 * 56, 256, 256, 3),
        (28 * 28, 256, 512, 3),
        (28 * 28, 512, 512, 3),
        (14 * 14, 512, 512, 3),
    ]
    layers = [
        _conv_layer("vgg16", i, spatial=s, cin=ci, cout=co, kernel=k,
                    act_sparsity=act, weight_sparsity=wgt)
        for i, (s, ci, co, k) in enumerate(shapes)
    ]
    return ModelSpec(
        name="VGG-16", short_name="V", domain="CV",
        layers=tuple(layers),
        table2_weight_sparsity=0.90, table2_activation_sparsity=0.80,
        table2_cpu_megacycles=0.90,
        notes="Eight representative convolution stages of VGG-16.",
    )


def _resnet50() -> ModelSpec:
    """ResNet-50: the 54 convolution GEMMs of the four residual stages."""
    act, wgt = 0.52, 0.89
    layers: list[LayerSpec] = []
    index = 0
    # (spatial, bottleneck width, blocks) for conv2_x .. conv5_x.
    stages = [
        (56 * 56, 64, 3),
        (28 * 28, 128, 4),
        (14 * 14, 256, 6),
        (7 * 7, 512, 3),
    ]
    for spatial, width, blocks in stages:
        for block in range(blocks):
            cin = width * 4 if block else max(64, width * 2)
            # 1x1 reduce, 3x3, 1x1 expand — the three GEMMs of a bottleneck.
            layers.append(_conv_layer("resnet50", index, spatial=spatial, cin=cin,
                                      cout=width, kernel=1,
                                      act_sparsity=act, weight_sparsity=wgt))
            index += 1
            layers.append(_conv_layer("resnet50", index, spatial=spatial, cin=width,
                                      cout=width, kernel=3,
                                      act_sparsity=act, weight_sparsity=wgt))
            index += 1
            layers.append(_conv_layer("resnet50", index, spatial=spatial, cin=width,
                                      cout=width * 4, kernel=1,
                                      act_sparsity=act, weight_sparsity=wgt))
            index += 1
    # 54 layers total: 3 GEMMs x (3 + 4 + 6 + 3) blocks = 48, plus the six
    # projection shortcuts of the stage transitions.
    for spatial, width in ((56 * 56, 64), (28 * 28, 128), (14 * 14, 256), (7 * 7, 512)):
        layers.append(_conv_layer("resnet50", index, spatial=spatial, cin=width * 2,
                                  cout=width * 4, kernel=1,
                                  act_sparsity=act, weight_sparsity=wgt))
        index += 1
    layers.append(_conv_layer("resnet50", index, spatial=112 * 112, cin=3, cout=64,
                              kernel=7, act_sparsity=act, weight_sparsity=wgt))
    index += 1
    layers.append(_fc_layer("resnet50", index, tokens=16, cin=2048, cout=1000,
                            act_sparsity=act, weight_sparsity=wgt))
    return ModelSpec(
        name="ResNet-50", short_name="R", domain="CV",
        layers=tuple(layers),
        table2_weight_sparsity=0.89, table2_activation_sparsity=0.52,
        table2_cpu_megacycles=26.64,
        notes="48 bottleneck GEMMs + 4 projection shortcuts + stem + classifier.",
    )


def _ssd_resnet() -> ModelSpec:
    """SSD with a ResNet-34 backbone (object detection): 37 layers."""
    act, wgt = 0.49, 0.89
    layers: list[LayerSpec] = []
    index = 0
    backbone = [
        (150 * 150, 64, 64, 3),
        (150 * 150, 64, 64, 3),
        (75 * 75, 64, 128, 3),
        (75 * 75, 128, 128, 3),
        (75 * 75, 128, 128, 3),
        (75 * 75, 128, 128, 3),
        (38 * 38, 128, 256, 3),
        (38 * 38, 256, 256, 3),
        (38 * 38, 256, 256, 3),
        (38 * 38, 256, 256, 3),
        (38 * 38, 256, 256, 3),
        (38 * 38, 256, 256, 3),
    ]
    for spatial, cin, cout, k in backbone:
        layers.append(_conv_layer("ssd_resnet", index, spatial=spatial, cin=cin,
                                  cout=cout, kernel=k,
                                  act_sparsity=act, weight_sparsity=wgt))
        index += 1
    extra_heads = [
        (38 * 38, 256, 256, 1), (38 * 38, 256, 512, 3),
        (19 * 19, 512, 256, 1), (19 * 19, 256, 512, 3),
        (10 * 10, 512, 128, 1), (10 * 10, 128, 256, 3),
        (5 * 5, 256, 128, 1), (5 * 5, 128, 256, 3),
        (3 * 3, 256, 128, 1), (3 * 3, 128, 256, 3),
    ]
    for spatial, cin, cout, k in extra_heads:
        layers.append(_conv_layer("ssd_resnet", index, spatial=spatial, cin=cin,
                                  cout=cout, kernel=k,
                                  act_sparsity=act, weight_sparsity=wgt))
        index += 1
    detection_heads = [
        (38 * 38, 512, 16, 3), (38 * 38, 512, 324, 3),
        (19 * 19, 512, 24, 3), (19 * 19, 512, 486, 3),
        (10 * 10, 256, 24, 3), (10 * 10, 256, 486, 3),
        (5 * 5, 256, 24, 3), (5 * 5, 256, 486, 3),
        (3 * 3, 256, 16, 3), (3 * 3, 256, 324, 3),
        (1, 256, 16, 3), (1, 256, 324, 3),
        (38 * 38, 256, 486, 3), (19 * 19, 256, 486, 3), (10 * 10, 128, 324, 3),
    ]
    for spatial, cin, cout, k in detection_heads:
        layers.append(_conv_layer("ssd_resnet", index, spatial=spatial, cin=cin,
                                  cout=cout, kernel=k,
                                  act_sparsity=act, weight_sparsity=wgt))
        index += 1
    return ModelSpec(
        name="SSD-ResNets", short_name="S-R", domain="OR",
        layers=tuple(layers[:37]),
        table2_weight_sparsity=0.89, table2_activation_sparsity=0.49,
        table2_cpu_megacycles=0.50,
        notes="ResNet-34 backbone + SSD extra feature maps + detection heads.",
    )


def _ssd_mobilenet() -> ModelSpec:
    """SSD with a MobileNet-v1 backbone: 29 GEMM layers (pointwise convs + heads)."""
    act, wgt = 0.35, 0.74
    layers: list[LayerSpec] = []
    index = 0
    # MobileNet pointwise (1x1) convolutions carry almost all the MACs; the
    # depthwise stages are folded into their activation sparsity.
    pointwise = [
        (150 * 150, 32, 64), (75 * 75, 64, 128), (75 * 75, 128, 128),
        (38 * 38, 128, 256), (38 * 38, 256, 256), (19 * 19, 256, 512),
        (19 * 19, 512, 512), (19 * 19, 512, 512), (19 * 19, 512, 512),
        (19 * 19, 512, 512), (19 * 19, 512, 512), (10 * 10, 512, 1024),
        (10 * 10, 1024, 1024),
    ]
    for spatial, cin, cout in pointwise:
        layers.append(_conv_layer("ssd_mobilenet", index, spatial=spatial, cin=cin,
                                  cout=cout, kernel=1,
                                  act_sparsity=act, weight_sparsity=wgt))
        index += 1
    extras = [
        (10 * 10, 1024, 256, 1), (5 * 5, 256, 512, 3),
        (5 * 5, 512, 128, 1), (3 * 3, 128, 256, 3),
        (3 * 3, 256, 128, 1), (2 * 2, 128, 256, 3),
        (2 * 2, 256, 64, 1), (1, 64, 128, 3),
    ]
    for spatial, cin, cout, k in extras:
        layers.append(_conv_layer("ssd_mobilenet", index, spatial=spatial, cin=cin,
                                  cout=cout, kernel=k,
                                  act_sparsity=act, weight_sparsity=wgt))
        index += 1
    heads = [
        (19 * 19, 512, 12, 1), (19 * 19, 512, 273, 1),
        (10 * 10, 1024, 24, 1), (10 * 10, 1024, 546, 1),
        (5 * 5, 512, 24, 1), (5 * 5, 512, 546, 1),
        (3 * 3, 256, 24, 1), (3 * 3, 256, 546, 1),
    ]
    for spatial, cin, cout, k in heads:
        layers.append(_conv_layer("ssd_mobilenet", index, spatial=spatial, cin=cin,
                                  cout=cout, kernel=k,
                                  act_sparsity=act, weight_sparsity=wgt))
        index += 1
    return ModelSpec(
        name="SSD-Mobilenets", short_name="S-M", domain="OR",
        layers=tuple(layers[:29]),
        table2_weight_sparsity=0.74, table2_activation_sparsity=0.35,
        table2_cpu_megacycles=1.65,
        notes="MobileNet-v1 pointwise convolutions + SSD extras and heads.",
    )


def _distilbert() -> ModelSpec:
    """DistilBERT: 6 transformer blocks x 6 GEMMs = 36 layers (seq len 384)."""
    act, wgt = 0.0004, 0.50  # Table 2: AvSpB 0.04% — activations are nearly dense.
    hidden, ff, seq = 768, 3072, 384
    layers: list[LayerSpec] = []
    index = 0
    for _ in range(6):
        block = [
            (seq, hidden, hidden),  # Q projection
            (seq, hidden, hidden),  # K projection
            (seq, hidden, hidden),  # V projection
            (seq, hidden, hidden),  # attention output projection
            (seq, hidden, ff),      # feed-forward up
            (seq, ff, hidden),      # feed-forward down
        ]
        for tokens, cin, cout in block:
            layers.append(_fc_layer("distilbert", index, tokens=tokens, cin=cin,
                                    cout=cout, act_sparsity=act, weight_sparsity=wgt))
            index += 1
    return ModelSpec(
        name="DistilBERT", short_name="DB", domain="NLP",
        layers=tuple(layers),
        table2_weight_sparsity=0.50, table2_activation_sparsity=0.0004,
        table2_cpu_megacycles=0.94,
        notes="6 blocks x (QKV + output + 2 FFN) projections, sequence length 384.",
    )


def _mobilebert() -> ModelSpec:
    """MobileBERT: 24 bottleneck blocks x 13 GEMMs + embeddings = 316 layers."""
    act, wgt = 0.11, 0.50
    hidden, intra, ff, seq = 512, 128, 512, 8  # MLPerf mobile configuration
    layers: list[LayerSpec] = []
    index = 0
    for _ in range(24):
        block = [
            (seq, hidden, intra),   # bottleneck input projection
            (seq, intra, intra),    # Q
            (seq, intra, intra),    # K
            (seq, intra, intra),    # V
            (seq, intra, intra),    # attention output
            (seq, intra, ff),       # FFN 1 up
            (seq, ff, intra),       # FFN 1 down
            (seq, intra, ff),       # FFN 2 up
            (seq, ff, intra),       # FFN 2 down
            (seq, intra, ff),       # FFN 3 up
            (seq, ff, intra),       # FFN 3 down
            (seq, intra, hidden),   # bottleneck output projection
            (seq, hidden, hidden),  # residual mixing
        ]
        for tokens, cin, cout in block:
            layers.append(_fc_layer("mobilebert", index, tokens=tokens, cin=cin,
                                    cout=cout, act_sparsity=act, weight_sparsity=wgt))
            index += 1
    extras = [
        (seq, 128, hidden), (seq, hidden, hidden), (seq, hidden, hidden),
        (seq, hidden, 2),
    ]
    for tokens, cin, cout in extras:
        layers.append(_fc_layer("mobilebert", index, tokens=tokens, cin=cin,
                                cout=cout, act_sparsity=act, weight_sparsity=wgt))
        index += 1
    return ModelSpec(
        name="MobileBERT", short_name="MB", domain="NLP",
        layers=tuple(layers),
        table2_weight_sparsity=0.50, table2_activation_sparsity=0.11,
        table2_cpu_megacycles=0.01,
        notes="24 bottleneck blocks x 13 GEMMs + embedding/classifier GEMMs.",
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _build_registry() -> dict[str, ModelSpec]:
    models = [
        _alexnet(),
        _squeezenet(),
        _vgg16(),
        _resnet50(),
        _ssd_resnet(),
        _ssd_mobilenet(),
        _distilbert(),
        _mobilebert(),
    ]
    return {model.short_name: model for model in models}


#: All eight models keyed by their Table 2 short name (A, SQ, V, R, S-R, S-M, DB, MB).
MODEL_REGISTRY: dict[str, ModelSpec] = _build_registry()


def list_models() -> list[str]:
    """Short names of the available models, in Table 2 order."""
    return list(MODEL_REGISTRY)


def get_model(name: str) -> ModelSpec:
    """Look up a model by short name (``"A"``) or full name (``"AlexNet"``)."""
    if name in MODEL_REGISTRY:
        return MODEL_REGISTRY[name]
    for model in MODEL_REGISTRY.values():
        if model.name.lower() == name.lower():
            return model
    raise KeyError(
        f"unknown model {name!r}; available: "
        + ", ".join(f"{m.short_name} ({m.name})" for m in MODEL_REGISTRY.values())
    )
