"""Workloads: the DNN models and representative layers of the paper's evaluation.

* :mod:`repro.workloads.layers` — :class:`LayerSpec`, the description of one
  SpMSpM layer (dimensions + sparsities) and its materialisation into
  synthetic compressed matrices.
* :mod:`repro.workloads.models` — the eight DNN models of Table 2
  (AlexNet, SqueezeNet, VGG-16, ResNet-50, SSD-ResNets, SSD-MobileNets,
  DistilBERT, MobileBERT) reconstructed layer by layer from the published
  architectures and the table's sparsity statistics.
* :mod:`repro.workloads.representative` — the nine representative layers of
  Table 6 used by the layer-wise evaluation (Figs. 13-16).
"""

from repro.workloads.layers import LayerSpec, materialize_layer
from repro.workloads.models import (
    MODEL_REGISTRY,
    ModelSpec,
    get_model,
    list_models,
)
from repro.workloads.representative import REPRESENTATIVE_LAYERS, get_representative_layer

__all__ = [
    "LayerSpec",
    "materialize_layer",
    "ModelSpec",
    "MODEL_REGISTRY",
    "get_model",
    "list_models",
    "REPRESENTATIVE_LAYERS",
    "get_representative_layer",
]
