"""Tiling: splitting a layer that does not fit the on-chip memories.

The mapper/compiler (Fig. 3b, phase 1) emits not only the dataflow but also a
tiling scheme; the runtime phases then repeat once per tile.  The relevant
capacity constraints are:

* the stationary operand only needs FIFO-sized buffering (it streams through
  once), so it never forces tiling by itself;
* the streaming operand should ideally fit the 1 MiB streaming cache — when
  it does not, either the dataflow tolerates the misses (OP reads it once;
  Gust pays per-fiber misses) or the layer is tiled along the dimension that
  shrinks the streaming working set; and
* the partial-sum footprint of OP/Gust should fit the PSRAM.

:func:`plan_tiling` produces a :class:`TilingPlan` describing how many tiles
each dimension is cut into for a given dataflow, mirroring what the paper's
offline analysis would feed the control logic.  The scheduler uses it to
repeat the engine's phases per tile; the engine itself also tolerates
untilable layers by spilling, so the plan is an optimisation, not a
correctness requirement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.config import AcceleratorConfig, default_config
from repro.dataflows.base import Dataflow, DataflowClass
from repro.sparse.formats import CompressedMatrix, Layout


@dataclass(frozen=True)
class TilingPlan:
    """How a layer is cut into tiles for execution."""

    dataflow: Dataflow
    #: Number of tiles along the stationary-operand major dimension.
    stationary_tiles: int
    #: Number of tiles along the streaming-operand major dimension.
    streaming_tiles: int
    #: Estimated streaming-operand bytes per tile.
    streaming_bytes_per_tile: int
    #: Estimated partial-sum bytes per tile (OP/Gust only).
    psum_bytes_per_tile: int

    @property
    def num_tiles(self) -> int:
        """Total number of execution tiles."""
        return self.stationary_tiles * self.streaming_tiles

    def fits_on_chip(self, config: AcceleratorConfig) -> bool:
        """True when each tile's working set fits the streaming cache and PSRAM."""
        return (
            self.streaming_bytes_per_tile <= config.str_cache_bytes
            and self.psum_bytes_per_tile <= config.psram_bytes
        )


def plan_tiling(
    dataflow: Dataflow,
    a: CompressedMatrix,
    b: CompressedMatrix,
    config: AcceleratorConfig | None = None,
) -> TilingPlan:
    """Compute a tiling plan for ``C = A x B`` under ``dataflow``.

    The plan cuts the streaming operand's major dimension until each tile's
    compressed size fits the streaming cache, and (for OP/Gust) cuts the
    stationary operand's major dimension until the expected partial-sum
    footprint of a tile fits the PSRAM.
    """
    config = config or default_config()
    element_bytes = config.element_bytes

    a_csr = a if a.layout is Layout.CSR else a.with_layout(Layout.CSR)
    b_csr = b if b.layout is Layout.CSR else b.with_layout(Layout.CSR)
    b_bytes = b_csr.nnz * element_bytes

    # Streaming tiles: shrink the streaming working set to the cache size.
    streaming_tiles = max(1, math.ceil(b_bytes / config.str_cache_bytes))
    streaming_bytes_per_tile = math.ceil(b_bytes / streaming_tiles) if b_bytes else 0

    # Partial-sum footprint per stationary tile.
    if dataflow.dataflow_class is DataflowClass.INNER_PRODUCT:
        psum_bytes = 0
    else:
        b_row_nnz = np.diff(b_csr.pointers)
        a_ks = np.asarray(a_csr.indices, dtype=np.int64)
        multiplications = int(b_row_nnz[a_ks].sum()) if len(a_ks) else 0
        if dataflow.dataflow_class is DataflowClass.OUTER_PRODUCT:
            # Every product is a partial sum held until the merge phase.
            psum_bytes = multiplications * element_bytes
        else:
            # Gustavson only spills rows whose stationary fiber exceeds the
            # multiplier array; bound the footprint by the widest row's output.
            a_row_nnz = np.diff(a_csr.pointers)
            spill_rows = a_row_nnz > config.num_multipliers
            if spill_rows.any():
                psum_bytes = int(
                    (np.minimum(a_row_nnz[spill_rows], config.num_multipliers)).sum()
                ) * element_bytes
            else:
                psum_bytes = 0

    stationary_tiles = max(1, math.ceil(psum_bytes / config.psram_bytes)) if psum_bytes else 1
    psum_bytes_per_tile = math.ceil(psum_bytes / stationary_tiles) if psum_bytes else 0

    return TilingPlan(
        dataflow=dataflow,
        stationary_tiles=stationary_tiles,
        streaming_tiles=streaming_tiles,
        streaming_bytes_per_tile=streaming_bytes_per_tile,
        psum_bytes_per_tile=psum_bytes_per_tile,
    )
