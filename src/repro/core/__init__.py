"""The paper's primary contribution, assembled: mapper, tiling and scheduler.

* :mod:`repro.core.mapper` — the offline dataflow analysis of Fig. 3b
  (phase 1): decide, per layer, which of the six dataflows to configure.
* :mod:`repro.core.tiling` — the tiling scheme the mapper emits when an
  operand does not fit in the on-chip memories.
* :mod:`repro.core.scheduler` — end-to-end execution of a DNN (a chain of
  SpMSpM layers) on any of the accelerator designs, including the
  inter-layer format transitions of Table 4.
"""

from repro.core.mapper import HeuristicMapper, OracleMapper
from repro.core.tiling import TilingPlan, plan_tiling
from repro.core.scheduler import DnnScheduler, LayerExecution

__all__ = [
    "HeuristicMapper",
    "OracleMapper",
    "TilingPlan",
    "plan_tiling",
    "DnnScheduler",
    "LayerExecution",
]
