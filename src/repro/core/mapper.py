"""The mapper: offline dataflow analysis (Fig. 3b, phase 1).

Before a layer executes, a mapper/compiler inspects the SpMSpM operation's
features — matrix dimensions, sparsity degree and pattern, compressed sizes
relative to the on-chip memories — and decides which of the six dataflows the
accelerator should be configured with.  The paper leaves the tool itself as
future work but describes the criteria its evaluation used; this module
provides two concrete policies:

* :class:`HeuristicMapper` — a closed-form cost estimate per dataflow family
  derived from the paper's own analysis (Section 5.2): Inner Product pays for
  re-streaming the whole B matrix once per stationary batch, Outer Product
  pays for writing/merging every partial sum, Gustavson pays for irregular
  re-fetches of B fibers that miss in the streaming cache.  The cheapest
  estimate wins.  This is fast enough to call for every layer of every model.
* :class:`OracleMapper` — exhaustively simulates the candidate dataflows with
  the cycle-accounting engine and picks the fastest.  Slow, but it provides
  the upper bound the ablation benchmarks compare the heuristic against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.config import AcceleratorConfig, default_config
from repro.dataflows.base import Dataflow, DataflowClass
from repro.sparse.formats import CompressedMatrix, Layout


@dataclass(frozen=True)
class DataflowEstimate:
    """Outcome of the heuristic cost model for one dataflow family."""

    dataflow_class: DataflowClass
    cost: float
    detail: dict[str, float]


class HeuristicMapper:
    """Characteristics-based per-layer dataflow selection."""

    def __init__(self, config: AcceleratorConfig | None = None) -> None:
        self.config = config or default_config()

    # ------------------------------------------------------------------
    def select(
        self,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        activation_layout: Layout | None = None,
        produced_layout: Layout | None = None,
    ) -> Dataflow:
        """Choose the dataflow for ``C = A x B``.

        ``activation_layout`` is the layout the activations (operand A) arrive
        in from the previous layer; when given, only dataflows that consume it
        without an explicit conversion are considered.  ``produced_layout``
        optionally constrains the layout C must be produced in (when the next
        layer's needs are already known).
        """
        estimates = self.estimate_costs(a, b)
        candidates = _candidate_variants(activation_layout, produced_layout)
        best: tuple[float, Dataflow] | None = None
        for dataflow in candidates:
            cost = estimates[dataflow.dataflow_class].cost
            if best is None or cost < best[0]:
                best = (cost, dataflow)
        assert best is not None  # _candidate_variants never returns an empty list
        return best[1]

    # ------------------------------------------------------------------
    def estimate_costs(
        self, a: CompressedMatrix, b: CompressedMatrix
    ) -> dict[DataflowClass, DataflowEstimate]:
        """Closed-form per-family cost estimates (in cycles, roughly)."""
        cfg = self.config
        element_bytes = cfg.element_bytes
        a_csr = a if a.layout is Layout.CSR else a.with_layout(Layout.CSR)
        b_csr = b if b.layout is Layout.CSR else b.with_layout(Layout.CSR)
        nnz_a = a_csr.nnz
        nnz_b = b_csr.nnz
        b_row_nnz = np.diff(b_csr.pointers)
        a_ks = np.asarray(a_csr.indices, dtype=np.int64)
        multiplications = int(b_row_nnz[a_ks].sum()) if len(a_ks) else 0
        b_bytes = nnz_b * element_bytes
        cache_bytes = cfg.str_cache_bytes
        dist_bw = cfg.distribution_bandwidth
        red_bw = cfg.reduction_bandwidth
        dram_bpc = cfg.dram_bytes_per_cycle

        # --- Inner Product ------------------------------------------------
        iterations = max(1, math.ceil(nnz_a / cfg.num_multipliers))
        ip_stream_cycles = iterations * nnz_b / dist_bw
        if b_bytes <= cache_bytes:
            ip_dram_bytes = b_bytes  # compulsory fill only
        else:
            ip_dram_bytes = iterations * b_bytes  # re-fetched every pass
        ip_cost = max(ip_stream_cycles, ip_dram_bytes / dram_bpc) + multiplications / red_bw

        # --- Outer Product ------------------------------------------------
        psums = multiplications
        psum_bytes = psums * element_bytes
        op_compute = nnz_b / dist_bw + psums / red_bw + psums / red_bw  # stream + write + merge
        spill_bytes = max(0, psum_bytes - cfg.psram_bytes)
        op_dram_bytes = b_bytes + 2 * spill_bytes
        op_cost = max(op_compute, op_dram_bytes / dram_bpc)

        # --- Gustavson ------------------------------------------------------
        gust_compute = multiplications / dist_bw + multiplications / red_bw
        if b_bytes <= cache_bytes:
            gust_dram_bytes = b_bytes  # each fiber miss is compulsory only
        else:
            # Irregular gathers over a matrix larger than the cache: a large
            # fraction of fiber fetches miss.  Model the refetched volume as
            # the streamed volume scaled by how much B exceeds the cache.
            overflow = 1.0 - cache_bytes / b_bytes
            gust_dram_bytes = b_bytes + overflow * multiplications * element_bytes
        gust_cost = max(gust_compute, gust_dram_bytes / dram_bpc)

        return {
            DataflowClass.INNER_PRODUCT: DataflowEstimate(
                DataflowClass.INNER_PRODUCT,
                ip_cost,
                {"iterations": iterations, "dram_bytes": ip_dram_bytes},
            ),
            DataflowClass.OUTER_PRODUCT: DataflowEstimate(
                DataflowClass.OUTER_PRODUCT,
                op_cost,
                {"psums": psums, "dram_bytes": op_dram_bytes},
            ),
            DataflowClass.GUSTAVSON: DataflowEstimate(
                DataflowClass.GUSTAVSON,
                gust_cost,
                {"multiplications": multiplications, "dram_bytes": gust_dram_bytes},
            ),
        }


class OracleMapper:
    """Exhaustive per-layer dataflow selection by simulation.

    Simulates every candidate dataflow with the cycle-accounting engine and
    picks the one with the fewest cycles.  Used by the mapper ablation bench
    and as ground truth when validating the heuristic.

    The candidate trials are the hottest redundant work in the harness (the
    same operands are simulated under up to six dataflows, and then again by
    whoever asked), so they are submitted as content-addressed jobs through a
    :class:`repro.runtime.BatchRunner`: a layer the oracle has seen before —
    in this process or any earlier one — costs a cache lookup instead of six
    simulations.  The runner is serial by default because ``select`` already
    runs inside pool workers during parallel sweeps.
    """

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        runner: "object | None" = None,
        *,
        engine: str | None = None,
    ) -> None:
        self.config = config or default_config()
        self._runner = runner
        #: Engine backend the candidate trials run with (``None``: env default).
        self.engine = engine

    @property
    def runner(self):
        """The job runner candidate trials go through (lazily constructed)."""
        if self._runner is None:
            from repro.runtime import trial_runner

            self._runner = trial_runner()
        return self._runner

    def select(
        self,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        activation_layout: Layout | None = None,
        produced_layout: Layout | None = None,
    ) -> Dataflow:
        """Pick the fastest dataflow by simulating every legal candidate."""
        from repro.runtime import ENGINE_DESIGN, SimJob

        candidates = _candidate_variants(activation_layout, produced_layout)
        trials = self.runner.run(
            [
                SimJob(
                    design=ENGINE_DESIGN,
                    config=self.config,
                    a=a,
                    b=b,
                    dataflow=dataflow,
                    engine=self.engine,
                )
                for dataflow in candidates
            ]
        )
        best: tuple[float, Dataflow] | None = None
        for dataflow, result in zip(candidates, trials):
            if best is None or result.total_cycles < best[0]:
                best = (result.total_cycles, dataflow)
        assert best is not None
        return best[1]


def _candidate_variants(
    activation_layout: Layout | None, produced_layout: Layout | None
) -> list[Dataflow]:
    """Dataflows compatible with the given activation/output layout constraints.

    When both constraints are given but cannot be satisfied simultaneously,
    the activation constraint wins (an output-side conversion would be the
    next layer's problem); when nothing satisfies even the activation
    constraint alone, all six dataflows are returned and the caller accepts
    an explicit conversion.
    """
    candidates = list(Dataflow)
    if activation_layout is not None:
        filtered = [
            d for d in candidates
            if _required_activation_layout(d) is activation_layout
        ]
        if filtered:
            candidates = filtered
    if produced_layout is not None:
        filtered = [d for d in candidates if _produced_layout(d) is produced_layout]
        if filtered:
            candidates = filtered
    return candidates


def _required_activation_layout(dataflow: Dataflow) -> Layout:
    from repro.dataflows.transitions import required_activation_layout

    return required_activation_layout(dataflow)


def _produced_layout(dataflow: Dataflow) -> Layout:
    from repro.dataflows.transitions import produced_layout

    return produced_layout(dataflow)
