"""End-to-end DNN execution: a chain of SpMSpM layers on one accelerator.

The scheduler reproduces the end-to-end evaluation of the paper (Fig. 12,
Fig. 18): it walks the layers of a DNN model in order, lets the accelerator
choose (or forces) a dataflow per layer, tracks the layout in which each
layer's activations arrive — the output layout of the previous layer — and
charges an explicit format conversion whenever a fixed-dataflow design is
forced into an illegal transition of Table 4.  Flexagon, by construction,
chains dataflows so that conversions are never needed (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.accelerators.base import Accelerator
from repro.dataflows.base import Dataflow
from repro.dataflows.transitions import produced_layout, required_activation_layout
from repro.metrics.results import LayerSimResult, ModelSimResult
from repro.sparse.convert import explicit_conversion_cost
from repro.sparse.formats import CompressedMatrix, Layout


@dataclass
class LayerExecution:
    """One layer of a DNN model ready for execution.

    Attributes
    ----------
    a:
        The activation operand (output of the previous layer or the model
        input).
    b:
        The weight operand (assumed available offline in both layouts, as the
        paper does).
    name:
        Layer label used in reports.
    """

    a: CompressedMatrix
    b: CompressedMatrix
    name: str = ""


@dataclass
class DnnScheduler:
    """Runs a chain of layers on an accelerator, tracking format transitions."""

    accelerator: Accelerator
    #: Extra cycles charged per byte moved by an explicit format conversion
    #: (a DRAM round trip at the configured bandwidth).
    conversion_overhead_enabled: bool = True
    #: When False the scheduler does not constrain dataflow selection by the
    #: incoming activation layout and never charges conversions.  This models
    #: the paper's assumption that the mapper plans variants globally (and
    #: that weights are stored offline in both formats), so transitions are
    #: always conversion-free.
    track_activation_layout: bool = True
    #: Layout the very first layer's activations are stored in off chip.
    initial_activation_layout: Layout = Layout.CSR
    #: Per-layer dataflow overrides (layer index -> dataflow).
    forced_dataflows: dict[int, Dataflow] = field(default_factory=dict)

    def run_model(
        self,
        layers: list[LayerExecution],
        *,
        model_name: str = "",
        capture_outputs: bool = False,
    ) -> ModelSimResult:
        """Execute every layer in order and return the aggregated result."""
        result = ModelSimResult(
            accelerator=self.accelerator.name, model_name=model_name
        )
        activation_layout = self.initial_activation_layout
        for index, layer in enumerate(layers):
            dataflow = self.forced_dataflows.get(index)
            if dataflow is None:
                dataflow = self._choose(
                    layer, activation_layout if self.track_activation_layout else None
                )
            layer_result = self.accelerator.run_layer(
                layer.a,
                layer.b,
                dataflow=dataflow,
                capture_output=capture_outputs,
                layer_name=layer.name or f"layer{index}",
            )
            if self.track_activation_layout:
                layer_result = self._charge_conversion_if_needed(
                    layer, layer_result, dataflow, activation_layout, result
                )
            result.layer_results.append(layer_result)
            activation_layout = produced_layout(dataflow)
        return result

    # ------------------------------------------------------------------
    def _choose(
        self, layer: LayerExecution, activation_layout: Layout | None
    ) -> Dataflow:
        """Ask the accelerator for a dataflow, passing the layout context."""
        chooser = self.accelerator.choose_dataflow
        try:
            return chooser(layer.a, layer.b, activation_layout=activation_layout)
        except TypeError:
            # Fixed-dataflow designs only expose the produced-layout knob.
            return chooser(layer.a, layer.b)

    def _charge_conversion_if_needed(
        self,
        layer: LayerExecution,
        layer_result: LayerSimResult,
        dataflow: Dataflow,
        activation_layout: Layout,
        result: ModelSimResult,
    ) -> LayerSimResult:
        """Return ``layer_result`` with any explicit-conversion cost folded in.

        Layer records are immutable by contract (they may be shared with the
        result cache and with duplicate batch slots), so the overhead is
        charged by building a replacement record with fresh cycle/traffic
        components instead of mutating the one the accelerator returned.
        """
        needed = required_activation_layout(dataflow)
        if needed is activation_layout:
            return layer_result
        result.explicit_conversions += 1
        if not self.conversion_overhead_enabled:
            return layer_result
        cost = explicit_conversion_cost(layer.a)
        result.conversion_bytes += cost.bytes_moved
        config = self.accelerator.config
        extra_cycles = cost.bytes_moved / config.dram_bytes_per_cycle
        return replace(
            layer_result,
            cycles=replace(
                layer_result.cycles,
                stationary=layer_result.cycles.stationary + extra_cycles,
            ),
            traffic=replace(
                layer_result.traffic,
                offchip_bytes=layer_result.traffic.offchip_bytes + cost.bytes_moved,
            ),
        )
