"""Simulation result records.

These dataclasses are the contract between the accelerator models and the
benchmark harness: every quantity the paper's figures plot (cycles split into
multiplying/merging phases, on-chip traffic per memory structure, streaming
cache miss rate, off-chip traffic, speed-ups, performance/area) is a field or
derived property here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.dataflows.base import Dataflow
from repro.dataflows.stats import DataflowStats


@dataclass
class PhaseCycles:
    """Cycle counts per execution phase (Fig. 3b phases 2-4)."""

    #: Cycles spent loading stationary data into the multipliers.
    stationary: float = 0.0
    #: Cycles of the streaming (multiplying) phase — the blue bars of Fig. 13.
    streaming: float = 0.0
    #: Cycles of the merging phase — the orange bars of Fig. 13.
    merging: float = 0.0

    @property
    def total(self) -> float:
        """Total execution cycles of the layer."""
        return self.stationary + self.streaming + self.merging

    def merged_with(self, other: "PhaseCycles") -> "PhaseCycles":
        """Element-wise sum (used when accumulating layers of a model)."""
        return PhaseCycles(
            stationary=self.stationary + other.stationary,
            streaming=self.streaming + other.streaming,
            merging=self.merging + other.merging,
        )


@dataclass
class TrafficBreakdown:
    """On-chip and off-chip traffic in bytes (Figs. 14 and 16)."""

    #: Bytes read from the stationary FIFO into the datapath.
    sta_bytes: int = 0
    #: Bytes read from the streaming cache into the datapath.
    str_bytes: int = 0
    #: Bytes moved to/from the PSRAM (partial-sum writes + reads).
    psum_bytes: int = 0
    #: Off-chip bytes (DRAM reads + writes), the quantity of Fig. 16.
    offchip_bytes: int = 0

    @property
    def onchip_bytes(self) -> int:
        """Total on-chip memory traffic (the quantity of Fig. 14)."""
        return self.sta_bytes + self.str_bytes + self.psum_bytes

    def merged_with(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        """Element-wise sum."""
        return TrafficBreakdown(
            sta_bytes=self.sta_bytes + other.sta_bytes,
            str_bytes=self.str_bytes + other.str_bytes,
            psum_bytes=self.psum_bytes + other.psum_bytes,
            offchip_bytes=self.offchip_bytes + other.offchip_bytes,
        )


@dataclass
class LayerSimResult:
    """Outcome of simulating one SpMSpM layer on one accelerator."""

    #: Name of the accelerator design that produced the result.
    accelerator: str
    #: Dataflow the layer was executed with.
    dataflow: Dataflow
    #: Cycle counts per phase.
    cycles: PhaseCycles = field(default_factory=PhaseCycles)
    #: Traffic breakdown.
    traffic: TrafficBreakdown = field(default_factory=TrafficBreakdown)
    #: Miss rate of the streaming cache during the layer.
    str_cache_miss_rate: float = 0.0
    #: Accesses observed by the streaming cache.
    str_cache_accesses: int = 0
    #: Operation counts accumulated by the datapath.
    stats: DataflowStats = field(default_factory=DataflowStats)
    #: The produced output matrix (``None`` when output capture is disabled).
    output: Optional[object] = None
    #: Optional label of the layer that was simulated.
    layer_name: str = ""

    @property
    def total_cycles(self) -> float:
        """Total execution cycles."""
        return self.cycles.total


@dataclass
class ModelSimResult:
    """Outcome of executing a whole DNN model (a chain of layers)."""

    accelerator: str
    model_name: str
    layer_results: list[LayerSimResult] = field(default_factory=list)
    #: Explicit format conversions that had to be inserted between layers.
    explicit_conversions: int = 0
    #: Extra off-chip bytes those conversions moved.
    conversion_bytes: int = 0

    @property
    def total_cycles(self) -> float:
        """Sum of layer cycles plus any conversion overhead already folded in."""
        return sum(layer.total_cycles for layer in self.layer_results)

    @property
    def total_traffic(self) -> TrafficBreakdown:
        """Aggregate traffic over all layers."""
        total = TrafficBreakdown()
        for layer in self.layer_results:
            total = total.merged_with(layer.traffic)
        return total

    @property
    def dataflow_histogram(self) -> dict[Dataflow, int]:
        """How many layers ran under each dataflow (Fig. 1-style summary)."""
        histogram: dict[Dataflow, int] = {}
        for layer in self.layer_results:
            histogram[layer.dataflow] = histogram.get(layer.dataflow, 0) + 1
        return histogram


def speedup(baseline_cycles: float, cycles: float) -> float:
    """Speed-up of ``cycles`` relative to ``baseline_cycles`` (>1 means faster)."""
    if cycles <= 0:
        raise ValueError("cycle counts must be positive to compute a speed-up")
    return baseline_cycles / cycles


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the aggregation the paper uses for speed-ups)."""
    if not values:
        raise ValueError("cannot take the geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
