"""Simulation result records.

These dataclasses are the contract between the accelerator models and the
benchmark harness: every quantity the paper's figures plot (cycles split into
multiplying/merging phases, on-chip traffic per memory structure, streaming
cache miss rate, off-chip traffic, speed-ups, performance/area) is a field or
derived property here.

Every record is **JSON-round-trippable**: ``to_record()`` produces a plain
dict of JSON-safe values (versioned by :data:`RESULT_SCHEMA_VERSION`) and
``from_record()`` reconstructs an equivalent record, so results can cross
process and service boundaries — the contract the :mod:`repro.api` response
objects are built on.  The only field that does not survive the trip is a
captured ``output`` matrix (it is deliberately dropped; results that must
travel should be produced with ``capture_output=False``, the default).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Optional, Union

from repro.arch.memory.dram import DramTrafficCounter
from repro.dataflows.base import Dataflow
from repro.dataflows.stats import DataflowStats

#: Version of the serialized record layout.  Bump whenever ``to_record`` /
#: ``from_record`` change shape so stale payloads are rejected loudly instead
#: of deserialising into nonsense.
RESULT_SCHEMA_VERSION = 1

#: The value types a report row may carry: every row dict produced by the
#: experiment harness and the :mod:`repro.api` response records is JSON-safe.
RowValue = Union[str, int, float, bool, None]

#: One row of a reproduced figure or table (column name -> JSON-safe value).
Row = dict[str, RowValue]


def canonical_order(present: dict, canonical) -> list[str]:
    """Keys of ``present`` in canonical order, unknown keys last (stable).

    JSON serialisation sorts mapping keys, so deserializers use this to
    restore the orderings the figures rely on (models in Table 2 order,
    layers in Table 6 order, designs in plot order).
    """
    known = [key for key in canonical if key in present]
    return known + [key for key in present if key not in set(known)]


def check_record_schema(record: dict, expected_kind: str | None = None) -> None:
    """Validate the schema stamp of a serialized record before decoding it."""
    version = record.get("schema")
    if version != RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported record schema {version!r}; "
            f"this build reads version {RESULT_SCHEMA_VERSION}"
        )
    if expected_kind is not None and record.get("kind") != expected_kind:
        raise ValueError(
            f"expected a {expected_kind!r} record, got {record.get('kind')!r}"
        )


@dataclass
class PhaseCycles:
    """Cycle counts per execution phase (Fig. 3b phases 2-4)."""

    #: Cycles spent loading stationary data into the multipliers.
    stationary: float = 0.0
    #: Cycles of the streaming (multiplying) phase — the blue bars of Fig. 13.
    streaming: float = 0.0
    #: Cycles of the merging phase — the orange bars of Fig. 13.
    merging: float = 0.0

    @property
    def total(self) -> float:
        """Total execution cycles of the layer."""
        return self.stationary + self.streaming + self.merging

    def merged_with(self, other: "PhaseCycles") -> "PhaseCycles":
        """Element-wise sum (used when accumulating layers of a model)."""
        return PhaseCycles(
            stationary=self.stationary + other.stationary,
            streaming=self.streaming + other.streaming,
            merging=self.merging + other.merging,
        )

    def to_record(self) -> dict[str, float]:
        """JSON-safe dict form."""
        return {
            "stationary": float(self.stationary),
            "streaming": float(self.streaming),
            "merging": float(self.merging),
        }

    @classmethod
    def from_record(cls, record: dict) -> "PhaseCycles":
        """Inverse of :meth:`to_record`."""
        return cls(**record)


@dataclass
class TrafficBreakdown:
    """On-chip and off-chip traffic in bytes (Figs. 14 and 16)."""

    #: Bytes read from the stationary FIFO into the datapath.
    sta_bytes: int = 0
    #: Bytes read from the streaming cache into the datapath.
    str_bytes: int = 0
    #: Bytes moved to/from the PSRAM (partial-sum writes + reads).
    psum_bytes: int = 0
    #: Off-chip bytes (DRAM reads + writes), the quantity of Fig. 16.
    offchip_bytes: int = 0

    @property
    def onchip_bytes(self) -> int:
        """Total on-chip memory traffic (the quantity of Fig. 14)."""
        return self.sta_bytes + self.str_bytes + self.psum_bytes

    def merged_with(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        """Element-wise sum."""
        return TrafficBreakdown(
            sta_bytes=self.sta_bytes + other.sta_bytes,
            str_bytes=self.str_bytes + other.str_bytes,
            psum_bytes=self.psum_bytes + other.psum_bytes,
            offchip_bytes=self.offchip_bytes + other.offchip_bytes,
        )

    def to_record(self) -> dict[str, int]:
        """JSON-safe dict form (numpy integers normalised to plain ints)."""
        return {name: int(value) for name, value in asdict(self).items()}

    @classmethod
    def from_record(cls, record: dict) -> "TrafficBreakdown":
        """Inverse of :meth:`to_record`."""
        return cls(**record)


@dataclass(frozen=True)
class LayerSimResult:
    """Outcome of simulating one SpMSpM layer on one accelerator.

    The record is **immutable by contract**: the dataclass is frozen and
    every post-construction adjustment (the scheduler folding conversion
    overhead into a layer, the engine relabelling a mirrored run) goes
    through :func:`dataclasses.replace` with freshly built components.  That
    is what lets the batch runner hand the *same* record object to every
    duplicate slot of a batch — and to every consumer of a cached entry —
    without defensive deep copies.  The nested ``cycles``/``traffic``/
    ``stats`` components remain plain mutable accumulators while the engine
    is still building them, but must never be written once wrapped here.
    """

    #: Name of the accelerator design that produced the result.
    accelerator: str
    #: Dataflow the layer was executed with.
    dataflow: Dataflow
    #: Cycle counts per phase.
    cycles: PhaseCycles = field(default_factory=PhaseCycles)
    #: Traffic breakdown.
    traffic: TrafficBreakdown = field(default_factory=TrafficBreakdown)
    #: Miss rate of the streaming cache during the layer.
    str_cache_miss_rate: float = 0.0
    #: Accesses observed by the streaming cache.
    str_cache_accesses: int = 0
    #: Operation counts accumulated by the datapath.
    stats: DataflowStats = field(default_factory=DataflowStats)
    #: The produced output matrix (``None`` when output capture is disabled).
    output: Optional[object] = None
    #: Optional label of the layer that was simulated.
    layer_name: str = ""
    #: Full off-chip traffic breakdown (``None`` for records produced by
    #: models without a DRAM interface, e.g. deserialized legacy payloads).
    dram: Optional[DramTrafficCounter] = None

    @property
    def total_cycles(self) -> float:
        """Total execution cycles."""
        return self.cycles.total

    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form (a captured ``output`` matrix is dropped)."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "layer_result",
            "accelerator": self.accelerator,
            "dataflow": self.dataflow.name,
            "cycles": self.cycles.to_record(),
            "traffic": self.traffic.to_record(),
            "str_cache_miss_rate": float(self.str_cache_miss_rate),
            "str_cache_accesses": int(self.str_cache_accesses),
            "stats": {name: int(value) for name, value in asdict(self.stats).items()},
            "layer_name": self.layer_name,
            "dram": (
                None
                if self.dram is None
                else {name: int(value) for name, value in asdict(self.dram).items()}
            ),
        }

    @classmethod
    def from_record(cls, record: dict) -> "LayerSimResult":
        """Inverse of :meth:`to_record`."""
        check_record_schema(record, "layer_result")
        return cls(
            accelerator=record["accelerator"],
            dataflow=Dataflow[record["dataflow"]],
            cycles=PhaseCycles.from_record(record["cycles"]),
            traffic=TrafficBreakdown.from_record(record["traffic"]),
            str_cache_miss_rate=record["str_cache_miss_rate"],
            str_cache_accesses=record["str_cache_accesses"],
            stats=DataflowStats(**record["stats"]),
            layer_name=record["layer_name"],
            dram=(
                None
                if record["dram"] is None
                else DramTrafficCounter(**record["dram"])
            ),
        )


@dataclass
class ModelSimResult:
    """Outcome of executing a whole DNN model (a chain of layers)."""

    accelerator: str
    model_name: str
    layer_results: list[LayerSimResult] = field(default_factory=list)
    #: Explicit format conversions that had to be inserted between layers.
    explicit_conversions: int = 0
    #: Extra off-chip bytes those conversions moved.
    conversion_bytes: int = 0

    @property
    def total_cycles(self) -> float:
        """Sum of layer cycles plus any conversion overhead already folded in."""
        return sum(layer.total_cycles for layer in self.layer_results)

    @property
    def total_traffic(self) -> TrafficBreakdown:
        """Aggregate traffic over all layers."""
        total = TrafficBreakdown()
        for layer in self.layer_results:
            total = total.merged_with(layer.traffic)
        return total

    @property
    def dataflow_histogram(self) -> dict[Dataflow, int]:
        """How many layers ran under each dataflow (Fig. 1-style summary)."""
        histogram: dict[Dataflow, int] = {}
        for layer in self.layer_results:
            histogram[layer.dataflow] = histogram.get(layer.dataflow, 0) + 1
        return histogram

    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "model_result",
            "accelerator": self.accelerator,
            "model_name": self.model_name,
            "layer_results": [layer.to_record() for layer in self.layer_results],
            "explicit_conversions": int(self.explicit_conversions),
            "conversion_bytes": int(self.conversion_bytes),
        }

    @classmethod
    def from_record(cls, record: dict) -> "ModelSimResult":
        """Inverse of :meth:`to_record`."""
        check_record_schema(record, "model_result")
        return cls(
            accelerator=record["accelerator"],
            model_name=record["model_name"],
            layer_results=[
                LayerSimResult.from_record(layer) for layer in record["layer_results"]
            ],
            explicit_conversions=record["explicit_conversions"],
            conversion_bytes=record["conversion_bytes"],
        )


def speedup(baseline_cycles: float, cycles: float) -> float:
    """Speed-up of ``cycles`` relative to ``baseline_cycles`` (>1 means faster)."""
    if cycles <= 0:
        raise ValueError("cycle counts must be positive to compute a speed-up")
    return baseline_cycles / cycles


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the aggregation the paper uses for speed-ups)."""
    if not values:
        raise ValueError("cannot take the geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
