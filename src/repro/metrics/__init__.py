"""Result records and report formatting for simulations and benchmarks."""

from repro.metrics.results import (
    RESULT_SCHEMA_VERSION,
    LayerSimResult,
    ModelSimResult,
    PhaseCycles,
    Row,
    RowValue,
    TrafficBreakdown,
    check_record_schema,
    geometric_mean,
    speedup,
)
from repro.metrics.reporting import format_table, format_markdown_table

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "LayerSimResult",
    "ModelSimResult",
    "PhaseCycles",
    "Row",
    "RowValue",
    "TrafficBreakdown",
    "check_record_schema",
    "geometric_mean",
    "speedup",
    "format_table",
    "format_markdown_table",
]
