"""Result records and report formatting for simulations and benchmarks."""

from repro.metrics.results import (
    LayerSimResult,
    ModelSimResult,
    PhaseCycles,
    TrafficBreakdown,
    geometric_mean,
    speedup,
)
from repro.metrics.reporting import format_table, format_markdown_table

__all__ = [
    "LayerSimResult",
    "ModelSimResult",
    "PhaseCycles",
    "TrafficBreakdown",
    "geometric_mean",
    "speedup",
    "format_table",
    "format_markdown_table",
]
