"""Plain-text table formatting used by the benchmark harness and examples.

The benchmark scripts print the same rows/series the paper's tables and
figures report; these helpers render them as aligned ASCII or Markdown tables
without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.3g}",
    title: str | None = None,
) -> str:
    """Render a list of row dictionaries as an aligned ASCII table."""
    if not rows:
        return (title + "\n(empty)\n") if title else "(empty)\n"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[_fmt(row.get(col, ""), float_format) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines) + "\n"


def format_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.3g}",
) -> str:
    """Render a list of row dictionaries as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(empty)\n"
    columns = list(columns) if columns else list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |", "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(col, ""), float_format) for col in columns) + " |"
        )
    return "\n".join(lines) + "\n"


def _fmt(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def histogram_line(counts: Mapping[str, int], width: int = 40) -> str:
    """Render a one-line textual histogram (used by the Fig. 1 bench)."""
    total = sum(counts.values())
    if total == 0:
        return "(no data)"
    parts = []
    for key, count in counts.items():
        bar = "#" * max(1, int(round(width * count / total))) if count else ""
        parts.append(f"{key}: {count:4d} {bar}")
    return "\n".join(parts)


def series_to_rows(
    series: Mapping[str, Iterable[float]], index_name: str, index: Iterable[object]
) -> list[dict[str, object]]:
    """Convert ``{series_name: values}`` plus an index into table rows."""
    index = list(index)
    rows: list[dict[str, object]] = []
    for i, idx in enumerate(index):
        row: dict[str, object] = {index_name: idx}
        for name, values in series.items():
            values = list(values)
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return rows
