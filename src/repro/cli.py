"""``python -m repro`` — the command-line face of the :mod:`repro.api` facade.

Subcommands::

    python -m repro figure fig12              # rows of one figure, as JSON
    python -m repro figure fig13 --table      # ... or as an aligned table
    python -m repro sweep --models SQ --designs Flexagon,GAMMA-like
    python -m repro dse --workloads xf-prune-80,gnn-cora   # Pareto exploration
    python -m repro serve --port 8734         # HTTP/JSON server over the cache
    python -m repro worker http://host:8734   # claim + execute fabric work
    python -m repro cache stats               # entries + size (--json for wire form)
    python -m repro cache clear               # drop every entry
    python -m repro cache prune --max-size-mb 64   # LRU-evict down to a bound
    python -m repro cache prune --prefix dse-      # evict one key namespace
    python -m repro cache pull http://host:8734    # merge a peer's entries
    python -m repro list                      # figures, models, layers, designs

``figure`` and ``sweep`` write the canonical JSON of the response record to
stdout (or ``-o FILE``): two invocations over the same settings and a warm
cache produce byte-identical output, with zero jobs executed on the second
run.  The job counters go to stderr so they never perturb the payload.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.api.figures import FIGURES
from repro.api.requests import FigureQuery, SweepSpec
from repro.api.session import Session
from repro.engine_vec import ENGINE_BACKENDS
from repro.experiments.settings import default_settings
from repro.metrics.reporting import format_table
from repro.runtime import BatchRunner, ResultCache
from repro.workloads.models import MODEL_REGISTRY
from repro.workloads.representative import representative_layer_names


# ----------------------------------------------------------------------
# Shared argument groups
# ----------------------------------------------------------------------
def _add_settings_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("experiment settings")
    group.add_argument(
        "--max-dense-macs", type=float, default=None, metavar="N",
        help="per-layer dense-MAC budget driving the scaling policy",
    )
    group.add_argument(
        "--max-layers", type=int, default=None, metavar="N",
        help="cap on sampled layers per model in end-to-end sweeps",
    )
    group.add_argument(
        "--full-scale", action="store_true",
        help="simulate full-size (unscaled) layers",
    )
    group.add_argument(
        "--seed-salt", type=int, default=None, metavar="N",
        help="random-seed salt for synthetic matrix generation",
    )
    group.add_argument(
        "--engine", default=None, choices=ENGINE_BACKENDS,
        help="SpMSpM engine backend (default: REPRO_ENGINE or 'vectorized'; "
        "both backends are bit-equivalent)",
    )


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("runtime")
    group.add_argument(
        "--serial", action="store_true", help="force the serial executor"
    )
    group.add_argument(
        "--workers", type=int, default=None, metavar="N", help="process-pool width"
    )
    group.add_argument(
        "--no-cache", action="store_true", help="run without the persistent cache"
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    group.add_argument(
        "--progress", dest="progress", action="store_true", default=None,
        help="live N/M job counter on stderr (default: on when stderr is a TTY)",
    )
    group.add_argument(
        "--no-progress", dest="progress", action="store_false",
        help="suppress the live job counter",
    )


def _add_output_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("output")
    group.add_argument(
        "--table", action="store_true",
        help="render an aligned table instead of JSON",
    )
    group.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the payload to FILE instead of stdout",
    )


def _settings_from_args(args: argparse.Namespace):
    overrides: dict = {}
    if args.full_scale:
        overrides["max_dense_macs"] = None
    if args.max_dense_macs is not None:
        overrides["max_dense_macs"] = args.max_dense_macs
    if args.max_layers is not None:
        overrides["max_layers_per_model"] = args.max_layers
    if args.seed_salt is not None:
        overrides["seed_salt"] = args.seed_salt
    if args.engine is not None:
        overrides["engine"] = args.engine
    return default_settings(**overrides)


def _progress_callback(done: int, total: int) -> None:
    """Redraw the live ``N/M`` counter on stderr (newline once complete)."""
    end = "\n" if done >= total else ""
    print(f"\r[repro] jobs {done}/{total}", end=end, file=sys.stderr, flush=True)


def _session_from_args(args: argparse.Namespace) -> Session:
    runner_kwargs: dict = {
        "parallel": False if args.serial else None,
        "max_workers": args.workers,
    }
    if args.no_cache:
        runner_kwargs["cache"] = None
    elif args.cache_dir:
        runner_kwargs["cache"] = ResultCache(args.cache_dir)
    progress = args.progress
    if progress is None:
        progress = sys.stderr.isatty()
    if progress:
        runner_kwargs["on_result"] = _progress_callback
    return Session(_settings_from_args(args), runner=BatchRunner(**runner_kwargs))


def _emit(args: argparse.Namespace, payload: str) -> None:
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        sys.stdout.write(payload)


def _report_jobs(session: Session) -> None:
    stats = session.stats
    print(
        f"[repro] jobs: submitted={stats.submitted} cache_hits={stats.cache_hits} "
        f"executed={stats.executed} exec_seconds={stats.exec_seconds:.3f} "
        f"cache_scan_seconds={stats.cache_scan_seconds:.3f} "
        f"peak_in_flight={stats.peak_in_flight}",
        file=sys.stderr,
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_figure(args: argparse.Namespace) -> int:
    session = _session_from_args(args)
    result = session.figure(FigureQuery(args.figure))
    if args.table:
        payload = format_table(result.rows, title=result.title)
    else:
        payload = result.to_json() + "\n"
    _emit(args, payload)
    _report_jobs(session)
    return 0


def _parse_override(text: str) -> tuple[str, object]:
    name, _, raw = text.partition("=")
    if not _ or not name:
        raise argparse.ArgumentTypeError(f"expected KEY=VALUE, got {text!r}")
    try:
        value: object = int(raw)
    except ValueError:
        try:
            value = float(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"override {name!r} must be numeric, got {raw!r}"
            ) from None
    return name, value


def _print_sweepable_models() -> None:
    """``sweep --list-models``: Table 2 models plus DSE-registered workloads."""
    from repro.dse.workloads import get_workload, workload_names

    print("models (python -m repro sweep --models ...):")
    for short_name, model in MODEL_REGISTRY.items():
        print(f"  {short_name:12s} {model.name} ({model.num_layers} layers)")
    print("dse workloads (python -m repro dse --workloads ...):")
    for name in workload_names():
        workload = get_workload(name)
        print(f"  {name:12s} [{workload.kind}]")


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.list_models:
        _print_sweepable_models()
        return 0
    session = _session_from_args(args)
    spec = SweepSpec(
        designs=args.designs,
        models=args.models,
        layers=args.layers,
        config_overrides=args.set or (),
        scale=args.scale,
        max_layers_per_model=args.max_layers,
    )
    result = session.sweep(spec)
    if args.table:
        payload = format_table(result.rows, title=f"Sweep {spec.key()[:12]}")
    else:
        payload = result.to_json() + "\n"
    _emit(args, payload)
    _report_jobs(session)
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.dse import design_point_names, get_design_point, workload_names
    from repro.dse.explore import DseSpec

    if args.list_workloads or args.list_designs:
        if args.list_workloads:
            _print_sweepable_models()
        if args.list_designs:
            print("design points (python -m repro dse --designs ...):")
            for name in design_point_names():
                point = get_design_point(name)
                print(f"  {name:18s} [{point.family}] {point.accelerator}")
        return 0
    if not args.workloads:
        print(
            "error: --workloads is required (see --list-workloads); "
            f"registered: {','.join(workload_names())}",
            file=sys.stderr,
        )
        return 2
    session = _session_from_args(args)
    spec = DseSpec(
        workloads=args.workloads,
        designs=args.designs or (),
        scale=args.scale,
    )
    result = session.dse(spec)
    if args.table:
        payload = format_table(result.points, title=f"DSE {spec.key()[:12]}")
        payload += "\nPareto frontiers:\n"
        for objective, names in sorted(result.frontier.items()):
            payload += f"  {objective}: {', '.join(names)}\n"
    else:
        payload = result.to_json() + "\n"
    _emit(args, payload)
    _report_jobs(session)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_server

    # The live N/M progress counter would interleave with the serve log on
    # one stderr stream; background jobs report progress over HTTP instead.
    if args.progress is None:
        args.progress = False
    # The serve port already carries the fabric's /v1/work routes, so under
    # REPRO_POOL=remote there is no reason to open a second listener.
    os.environ.setdefault("REPRO_FABRIC_LISTEN", "0")
    session = _session_from_args(args)
    return run_server(session, host=args.host, port=args.port)


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.fabric import run_worker

    return run_worker(
        args.url,
        worker_id=args.id,
        cache_dir=args.cache_dir,
        poll_seconds=args.poll_seconds,
        max_items=args.max_items,
    )


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    if args.cache_command == "stats":
        report = cache.stats_report()
        if args.json:
            # The same serializer the server's /v1/cache/stats endpoint
            # uses, so dashboards scrape one format from either surface.
            from repro.serve.wire import cache_stats_record, dump_body

            sys.stdout.buffer.write(dump_body(cache_stats_record(report)))
            return 0
        entries = report["entries"]
        scan_seconds = report["scan_seconds"]
        throughput = entries / scan_seconds if scan_seconds > 0 else 0.0
        print(f"cache directory : {cache.directory}")
        print(f"entries         : {entries}")
        print(f"size            : {report['size_bytes'] / 1e6:.2f} MB")
        print(f"shard dirs      : {report['shard_dirs']}")
        print(f"legacy entries  : {report['legacy_entries']} (flat layout; migrated on read)")
        print(f"scan            : {scan_seconds * 1e3:.2f} ms ({throughput:,.0f} entries/s)")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    if args.cache_command == "pull":
        from repro.fabric import pull_cache

        if args.interval is not None:
            from repro.fabric import pull_loop

            log = lambda message: print(  # noqa: E731 - one-line stderr logger
                f"[repro.cache] {message}", file=sys.stderr, flush=True
            )
            print(
                f"[repro.cache] following {args.url} every ~{args.interval:g}s "
                f"(jittered; Ctrl-C to stop)",
                file=sys.stderr,
                flush=True,
            )
            try:
                rounds = pull_loop(
                    cache, args.url, args.interval, rounds=args.rounds, log=log
                )
            except KeyboardInterrupt:
                print("[repro.cache] pull loop stopped", file=sys.stderr)
                return 0
            print(f"[repro.cache] pull loop finished after {rounds} rounds",
                  file=sys.stderr, flush=True)
            return 0
        report = pull_cache(cache, args.url)
        print(
            f"pulled {report.fetched} entries from {args.url} into "
            f"{cache.directory} ({report.already_present} already present, "
            f"{report.skipped} skipped, {report.remote_entries} remote entries)"
        )
        return 0
    assert args.cache_command == "prune", args.cache_command
    if args.max_size_mb is None and args.prefix is None:
        print("error: prune needs --max-size-mb, --prefix, or both", file=sys.stderr)
        return 2
    bound = None if args.max_size_mb is None else int(args.max_size_mb * 1e6)
    report = cache.prune(bound, prefix=args.prefix)
    scope = f" (prefix {args.prefix!r})" if args.prefix else ""
    print(
        f"pruned {report.removed_entries} entries ({report.freed_bytes / 1e6:.2f} MB) "
        f"from {cache.directory}{scope}; {report.remaining_entries} matching entries "
        f"({report.remaining_bytes / 1e6:.2f} MB) remain"
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    what = args.what
    if args.json:
        from repro.serve.wire import catalog_record, dump_body, figures_record

        record = figures_record() if what == "figures" else catalog_record()
        if what in ("models", "layers", "designs", "workloads"):
            record = {key: record[key] for key in ("kind", "schema", what)}
        sys.stdout.buffer.write(dump_body(record))
        return 0
    if what in ("figures", "all"):
        print("figures:")
        for definition in FIGURES.values():
            print(f"  {definition.figure:8s} {definition.title}")
    if what in ("models", "all"):
        print("models:")
        for short_name, model in MODEL_REGISTRY.items():
            print(f"  {short_name:5s} {model.name} ({model.num_layers} layers)")
    if what in ("layers", "all"):
        print("layers:")
        for name in representative_layer_names():
            print(f"  {name}")
    if what in ("designs", "all"):
        from repro.api.requests import SWEEPABLE_DESIGNS

        print("designs:")
        for design in SWEEPABLE_DESIGNS:
            print(f"  {design}")
    if what in ("workloads", "all"):
        from repro.dse import (
            design_point_names,
            get_design_point,
            get_workload,
            workload_names,
        )

        print("dse workloads:")
        for name in workload_names():
            print(f"  {name:18s} [{get_workload(name).kind}]")
        print("dse design points:")
        for name in design_point_names():
            print(f"  {name:18s} [{get_design_point(name).family}]")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Flexagon reproduction: figure queries, sweeps and cache "
        "maintenance over the batched simulation runtime.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure = subparsers.add_parser(
        "figure", help="compute (or cache-serve) the rows of one figure/table"
    )
    figure.add_argument(
        "figure", metavar="FIG",
        help="figure identifier, e.g. fig12, fig13, table2 ('list' shows all)",
    )
    _add_output_args(figure)
    _add_settings_args(figure)
    _add_runner_args(figure)
    figure.set_defaults(func=_cmd_figure)

    sweep = subparsers.add_parser(
        "sweep", help="run a declarative models x designs x layers grid"
    )
    sweep.add_argument(
        "--models", default=None, metavar="CSV", help="Table 2 short names, e.g. SQ,V"
    )
    sweep.add_argument(
        "--layers", default=None, metavar="CSV",
        help="Table 6 representative layer names, e.g. R6,A2",
    )
    sweep.add_argument(
        "--designs", default=",".join(SweepSpec.__dataclass_fields__["designs"].default),
        metavar="CSV", help="designs to simulate (default: the four accelerators)",
    )
    sweep.add_argument(
        "--set", action="append", type=_parse_override, metavar="KEY=VALUE",
        help="accelerator-config override (repeatable), e.g. --set num_multipliers=16",
    )
    sweep.add_argument(
        "--scale", type=float, default=None,
        help="pin the operand scale factor (skips the MAC-budget policy)",
    )
    sweep.add_argument(
        "--list-models", action="store_true",
        help="list sweepable models (and DSE workloads), then exit",
    )
    _add_output_args(sweep)
    _add_settings_args(sweep)
    _add_runner_args(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    dse = subparsers.add_parser(
        "dse",
        help="explore a (workloads x design points) grid and report the "
        "Pareto frontier (cycles vs. area/power)",
    )
    dse.add_argument(
        "--workloads", default=None, metavar="CSV",
        help="DSE workload names, e.g. xf-prune-80,gnn-cora "
        "(--list-workloads shows all)",
    )
    dse.add_argument(
        "--designs", default=None, metavar="CSV",
        help="design-point names (default: every built-in family; "
        "--list-designs shows all)",
    )
    dse.add_argument(
        "--scale", type=float, default=None,
        help="pin the operand scale of synthetic workloads "
        "(skips the MAC-budget policy)",
    )
    dse.add_argument(
        "--list-workloads", action="store_true",
        help="list registered workloads, then exit",
    )
    dse.add_argument(
        "--list-designs", action="store_true",
        help="list registered design points, then exit",
    )
    _add_output_args(dse)
    _add_settings_args(dse)
    _add_runner_args(dse)
    dse.set_defaults(func=_cmd_dse)

    serve = subparsers.add_parser(
        "serve", help="serve figure/sweep queries over HTTP/JSON"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default: loopback only)",
    )
    serve.add_argument(
        "--port", type=int, default=8734, metavar="N",
        help="TCP port (default: 8734; 0 picks a free port)",
    )
    _add_settings_args(serve)
    _add_runner_args(serve)
    serve.set_defaults(func=_cmd_serve)

    worker = subparsers.add_parser(
        "worker",
        help="claim and execute work from a fabric coordinator "
        "(a serve instance or a REPRO_POOL=remote run)",
    )
    worker.add_argument(
        "url", metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:8734",
    )
    worker.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker identity in leases and logs (default: host-pid derived)",
    )
    worker.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="worker-local cache for nested results "
        "(default: REPRO_CACHE_DIR or .repro_cache)",
    )
    worker.add_argument(
        "--poll-seconds", type=float, default=0.2, metavar="S",
        help="idle delay between claim polls (default: 0.2)",
    )
    worker.add_argument(
        "--max-items", type=int, default=1, metavar="N",
        help="work items to claim per poll (default: 1)",
    )
    worker.set_defaults(func=_cmd_worker)

    cache = subparsers.add_parser("cache", help="inspect or maintain the result cache")
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser("stats", help="entry count and size")
    stats.add_argument(
        "--json", action="store_true",
        help="machine-readable output (the /v1/cache/stats wire format)",
    )
    cache_sub.add_parser("clear", help="drop every entry")
    prune = cache_sub.add_parser(
        "prune",
        help="evict entries: LRU down to a size bound, by key prefix, or both",
    )
    prune.add_argument(
        "--max-size-mb", type=float, default=None, metavar="N",
        help="keep at most N megabytes of entries (oldest evicted first)",
    )
    prune.add_argument(
        "--prefix", default=None, metavar="PREFIX",
        help="only consider keys starting with PREFIX (e.g. dse-); without "
        "--max-size-mb every matching entry is evicted",
    )
    pull = cache_sub.add_parser(
        "pull",
        help="merge the entries a peer coordinator has and this cache lacks "
        "(anti-entropy; entries are digest-verified before storing)",
    )
    pull.add_argument(
        "url", metavar="URL",
        help="peer base URL, e.g. http://127.0.0.1:8734",
    )
    pull.add_argument(
        "--interval", type=float, default=None, metavar="SECONDS",
        help="follower mode: keep pulling, sleeping a jittered SECONDS "
        "between rounds, until interrupted",
    )
    pull.add_argument(
        "--rounds", type=int, default=None, metavar="N",
        help="with --interval, stop after N pull rounds (default: forever)",
    )
    cache.set_defaults(func=_cmd_cache)

    lister = subparsers.add_parser(
        "list", help="list answerable figures, models, layers and designs"
    )
    lister.add_argument(
        "what", nargs="?", default="all",
        choices=("all", "figures", "models", "layers", "designs", "workloads"),
    )
    lister.add_argument(
        "--json", action="store_true",
        help="machine-readable output (the serving front-end's wire format)",
    )
    lister.set_defaults(func=_cmd_list)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
