"""Common interface of the simulated accelerator designs."""

from __future__ import annotations

import abc

from repro.arch.config import AcceleratorConfig, default_config
from repro.accelerators.engine import SpmspmEngine
from repro.dataflows.base import Dataflow
from repro.metrics.results import LayerSimResult
from repro.sparse.formats import CompressedMatrix


class Accelerator(abc.ABC):
    """Base class for the four simulated hardware designs.

    Every design wraps the shared :class:`SpmspmEngine` substrate; what a
    concrete subclass decides is *which dataflows it is allowed to configure*
    for a given layer (Flexagon: all six; the baselines: exactly one family).
    """

    #: Human-readable name used in result records and benchmark tables.
    name: str = "accelerator"

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        *,
        engine: str | None = None,
    ) -> None:
        self.config = config or default_config()
        self.engine = SpmspmEngine(self.config, backend=engine)
        #: Optional serial :class:`~repro.runtime.BatchRunner` that routes
        #: the configured engine run through the shared content-addressed
        #: result cache (attached by :func:`repro.runtime.build_design`).
        #: Engine jobs are keyed by (config, operands, dataflow) alone, so a
        #: run this design needs is often already cached — typically as one
        #: of the oracle mapper's candidate trials over the same operands.
        #: ``None`` simulates directly.
        self.engine_job_runner = None

    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def supported_dataflows(self) -> tuple[Dataflow, ...]:
        """The dataflows this design can execute."""

    @abc.abstractmethod
    def choose_dataflow(
        self,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        activation_layout=None,
        produced_layout=None,
    ) -> Dataflow:
        """Pick the dataflow this design would configure for the given layer.

        ``activation_layout`` is the layout the activations arrive in from the
        previous layer; ``produced_layout`` optionally constrains the layout
        the output must be produced in.  Fixed-dataflow designs may ignore
        either hint (and then pay the explicit-conversion cost the scheduler
        charges).
        """

    # ------------------------------------------------------------------
    def run_layer(
        self,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        dataflow: Dataflow | None = None,
        capture_output: bool = False,
        layer_name: str = "",
    ) -> LayerSimResult:
        """Simulate one SpMSpM layer on this design.

        When ``dataflow`` is omitted the design's own selection policy is
        used.  The chosen dataflow is validated against
        :attr:`supported_dataflows` in *both* cases: a forced dataflow guards
        the caller, and a policy choice guards against a misconfigured
        mapper (e.g. a custom mapper handed to Flexagon that returns a
        dataflow the design cannot configure).
        """
        if dataflow is not None:
            chosen, source = dataflow, "forced by the caller"
        else:
            chosen = self.choose_dataflow(a, b)
            source = f"chosen by {type(self).__name__}.choose_dataflow"
        if chosen not in self.supported_dataflows:
            label = (
                chosen.informal_name if isinstance(chosen, Dataflow) else repr(chosen)
            )
            raise ValueError(
                f"{self.name} does not support the {label} dataflow ({source})"
            )
        if self.engine_job_runner is not None and not capture_output:
            # Run the engine as a content-addressed job: bit-equivalent to
            # the direct call below (the engine is a pure function of
            # (config, dataflow, operands)), but memoized — the record is
            # shared with the oracle mapper's trials and with every other
            # design that configures the same dataflow over these operands.
            from dataclasses import replace

            from repro.runtime.jobs import ENGINE_DESIGN, SimJob

            record = self.engine_job_runner.run_one(
                SimJob(
                    design=ENGINE_DESIGN,
                    config=self.config,
                    a=a,
                    b=b,
                    dataflow=chosen,
                    engine=self.engine.backend,
                )
            )
            return replace(record, accelerator=self.name, layer_name=layer_name)
        return self.engine.run_layer(
            chosen,
            a,
            b,
            capture_output=capture_output,
            layer_name=layer_name,
            accelerator_name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(multipliers={self.config.num_multipliers})"
