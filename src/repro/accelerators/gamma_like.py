"""GAMMA-like baseline: a fixed Gustavson (row-wise product) accelerator.

Captures the essence of GAMMA (Table 1 / Section 4): row-wise product with a
fiber cache for the streaming operand and a merger for the per-row partial
fibers.  On the shared substrate this corresponds to always configuring
Gustavson's dataflow.
"""

from __future__ import annotations

from repro.accelerators.base import Accelerator
from repro.dataflows.base import Dataflow
from repro.sparse.formats import CompressedMatrix, Layout


class GammaLikeAccelerator(Accelerator):
    """Fixed-dataflow Gustavson (Gust) design."""

    name = "GAMMA-like"

    @property
    def supported_dataflows(self) -> tuple[Dataflow, ...]:
        return (Dataflow.GUST_M, Dataflow.GUST_N)

    def choose_dataflow(
        self,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        activation_layout: Layout | None = None,
        produced_layout: Layout | None = None,
    ) -> Dataflow:
        """Pick the stationary variant; the family is always Gustavson's."""
        if produced_layout is Layout.CSC:
            return Dataflow.GUST_N
        return Dataflow.GUST_M
