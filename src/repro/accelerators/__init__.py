"""Accelerator models: Flexagon, the three fixed-dataflow baselines and the CPU.

* :class:`~repro.accelerators.flexagon.FlexagonAccelerator` — the paper's
  design: all six dataflows on one substrate, dataflow chosen per layer.
* :class:`~repro.accelerators.sigma_like.SigmaLikeAccelerator` — Inner
  Product only (FAN-style reduction network).
* :class:`~repro.accelerators.sparch_like.SparchLikeAccelerator` — Outer
  Product only (merger network).
* :class:`~repro.accelerators.gamma_like.GammaLikeAccelerator` — Gustavson
  only (merger network + fiber cache).
* :class:`~repro.accelerators.cpu.CpuMklLikeBaseline` — the CPU MKL-style
  software baseline of Table 2 / Fig. 12.
* :mod:`repro.accelerators.area_power` — the analytical area/power model
  behind Table 8, Fig. 17 and Fig. 18.

All four hardware designs share the same cycle-accounting engine
(:mod:`repro.accelerators.engine`); they differ in which dataflows they are
allowed to configure and in their area/power breakdown, exactly as the paper
normalises its comparison.
"""

from repro.accelerators.base import Accelerator
from repro.accelerators.engine import SpmspmEngine
from repro.accelerators.flexagon import FlexagonAccelerator
from repro.accelerators.sigma_like import SigmaLikeAccelerator
from repro.accelerators.sparch_like import SparchLikeAccelerator
from repro.accelerators.gamma_like import GammaLikeAccelerator
from repro.accelerators.cpu import CpuMklLikeBaseline
from repro.accelerators.area_power import (
    AreaPowerBreakdown,
    accelerator_area_power,
    naive_triple_network_area,
)

__all__ = [
    "Accelerator",
    "SpmspmEngine",
    "FlexagonAccelerator",
    "SigmaLikeAccelerator",
    "SparchLikeAccelerator",
    "GammaLikeAccelerator",
    "CpuMklLikeBaseline",
    "AreaPowerBreakdown",
    "accelerator_area_power",
    "naive_triple_network_area",
]
