"""Analytical area / power model (Table 8, Fig. 17 and Fig. 18).

The paper obtains post-layout area and power for the main building blocks of
the four accelerators (DN, MN, RN/merger/MRN, streaming cache, PSRAM) from
RTL synthesis at TSMC 28 nm / 800 MHz plus CACTI for the SRAMs.  We cannot run
those tools, so — per the substitution policy in DESIGN.md — the per-component
constants reported in Table 8 for the 64-multiplier reference design are used
as calibration points and scaled structurally:

* network components scale with the number of multiplier switches / tree
  nodes they contain,
* SRAM components scale with their capacity in bytes.

Everything the paper derives from Table 8 — the Flexagon area/power overhead
percentages, the naive-design comparison of Fig. 17 and the performance/area
efficiency of Fig. 18 — is a ratio of these numbers, which the structural
scaling preserves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig, default_config

#: The reference design point the Table 8 constants were measured at.
_REFERENCE_MULTIPLIERS = 64
_REFERENCE_CACHE_BYTES = 1 * 1024**2
_REFERENCE_PSRAM_BYTES = 256 * 1024

#: Table 8 area constants in mm^2 for the 64-MS reference design.
_AREA_MM2 = {
    "dn": 0.04,
    "mn": 0.07,
    "rn_fan": 0.17,        # SIGMA-like reduction network (FAN)
    "rn_merger": 0.07,     # SpArch-like / GAMMA-like merger
    "rn_mrn": 0.21,        # Flexagon's unified MRN
    "cache": 3.93,         # 1 MiB streaming cache
    "psram": 1.03,         # 256 KiB PSRAM
}

#: Table 8 power constants in mW for the 64-MS reference design.
_POWER_MW = {
    "dn": 2.18,
    "mn": 3.29,
    "rn_fan": 248.0,
    "rn_merger": 64.48,
    "rn_mrn": 312.0,
    "cache": 2142.0,
    "psram": 538.0,        # 256 KiB PSRAM
}

#: PSRAM capacity each design provisions (Section 5.3: the GAMMA-like design
#: needs half the partial-sum storage; SIGMA-like needs none).
_PSRAM_FRACTION = {
    "SIGMA-like": 0.0,
    "SpArch-like": 1.0,
    "GAMMA-like": 0.5,
    "Flexagon": 1.0,
}

#: Reduction-network flavour per design.
_RN_KIND = {
    "SIGMA-like": "rn_fan",
    "SpArch-like": "rn_merger",
    "GAMMA-like": "rn_merger",
    "Flexagon": "rn_mrn",
}

#: Fig. 17: extra area of the naive (non-unified) design's 64x(1:3) demuxes,
#: 3x(64:1) muxes and associated wiring, as a fraction of the Flexagon total.
_NAIVE_MUX_DEMUX_FRACTION = 0.25


@dataclass(frozen=True)
class AreaPowerBreakdown:
    """Per-component area (mm^2) and power (mW) of one design."""

    design: str
    dn_area: float
    mn_area: float
    rn_area: float
    cache_area: float
    psram_area: float
    dn_power: float
    mn_power: float
    rn_power: float
    cache_power: float
    psram_power: float

    @property
    def total_area(self) -> float:
        """Total area in mm^2 (the Table 8 "Total" row)."""
        return (
            self.dn_area + self.mn_area + self.rn_area + self.cache_area + self.psram_area
        )

    @property
    def total_power(self) -> float:
        """Total power in mW."""
        return (
            self.dn_power
            + self.mn_power
            + self.rn_power
            + self.cache_power
            + self.psram_power
        )

    def as_row(self) -> dict[str, float | str]:
        """Row form used by the Table 8 bench."""
        return {
            "design": self.design,
            "DN (mm2)": self.dn_area,
            "MN (mm2)": self.mn_area,
            "RN (mm2)": self.rn_area,
            "Cache (mm2)": self.cache_area,
            "PSRAM (mm2)": self.psram_area,
            "Total (mm2)": self.total_area,
            "DN (mW)": self.dn_power,
            "MN (mW)": self.mn_power,
            "RN (mW)": self.rn_power,
            "Cache (mW)": self.cache_power,
            "PSRAM (mW)": self.psram_power,
            "Total (mW)": self.total_power,
        }


def accelerator_area_power(
    design: str, config: AcceleratorConfig | None = None
) -> AreaPowerBreakdown:
    """Area/power breakdown of one design at a given configuration.

    ``design`` must be one of ``"SIGMA-like"``, ``"SpArch-like"``,
    ``"GAMMA-like"`` or ``"Flexagon"``.
    """
    if design not in _RN_KIND:
        raise ValueError(
            f"unknown design {design!r}; expected one of {sorted(_RN_KIND)}"
        )
    config = config or default_config()
    network_scale = config.num_multipliers / _REFERENCE_MULTIPLIERS
    cache_scale = config.str_cache_bytes / _REFERENCE_CACHE_BYTES
    psram_scale = (
        config.psram_bytes / _REFERENCE_PSRAM_BYTES
    ) * _PSRAM_FRACTION[design]
    rn_kind = _RN_KIND[design]

    return AreaPowerBreakdown(
        design=design,
        dn_area=_AREA_MM2["dn"] * network_scale,
        mn_area=_AREA_MM2["mn"] * network_scale,
        rn_area=_AREA_MM2[rn_kind] * network_scale,
        cache_area=_AREA_MM2["cache"] * cache_scale,
        psram_area=_AREA_MM2["psram"] * psram_scale,
        dn_power=_POWER_MW["dn"] * network_scale,
        mn_power=_POWER_MW["mn"] * network_scale,
        rn_power=_POWER_MW[rn_kind] * network_scale,
        cache_power=_POWER_MW["cache"] * cache_scale,
        psram_power=_POWER_MW["psram"] * psram_scale,
    )


def naive_triple_network_area(
    config: AcceleratorConfig | None = None,
) -> dict[str, dict[str, float]]:
    """Fig. 17 comparison: unified Flexagon vs a naive triple-network design.

    The naive design keeps the same DN/MN and SRAMs, replicates the reduction
    network three times (FAN + two mergers) and needs 64 (1:3) demultiplexers
    plus 3 (64:1) multiplexers to stitch them together.  Returns, for each
    design, the area split into ``datapath``, ``sram`` and ``mux_demux``.
    """
    config = config or default_config()
    flexagon = accelerator_area_power("Flexagon", config)
    network_scale = config.num_multipliers / _REFERENCE_MULTIPLIERS

    flexagon_split = {
        "datapath": flexagon.dn_area + flexagon.mn_area + flexagon.rn_area,
        "sram": flexagon.cache_area + flexagon.psram_area,
        "mux_demux": 0.0,
    }
    naive_datapath = (
        flexagon.dn_area
        + flexagon.mn_area
        + (_AREA_MM2["rn_fan"] + 2 * _AREA_MM2["rn_merger"]) * network_scale
    )
    naive_split = {
        "datapath": naive_datapath,
        "sram": flexagon.cache_area + flexagon.psram_area,
        "mux_demux": _NAIVE_MUX_DEMUX_FRACTION * flexagon.total_area,
    }
    return {"Flexagon": flexagon_split, "Naive": naive_split}


def performance_per_area(cycles: float, area_mm2: float) -> float:
    """Performance/area figure of merit (inverse cycles per mm^2, Fig. 18).

    The paper normalises both speed-up and area to the SIGMA-like design, so
    only ratios of this quantity are meaningful.
    """
    if cycles <= 0 or area_mm2 <= 0:
        raise ValueError("cycles and area must be positive")
    return 1.0 / (cycles * area_mm2)
