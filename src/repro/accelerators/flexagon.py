"""The Flexagon accelerator: all six dataflows on one substrate.

Flexagon's advantage over the fixed-dataflow baselines is entirely in *which*
dataflow it configures per layer (the hardware sizing is the same).  The
selection is performed offline by the mapper (Fig. 3b phase 1); here the
accelerator defers to :mod:`repro.core.mapper`, which offers a
characteristics-based heuristic (the default) and an oracle that exhaustively
simulates the candidates.
"""

from __future__ import annotations

from repro.accelerators.base import Accelerator
from repro.arch.config import AcceleratorConfig
from repro.dataflows.base import Dataflow
from repro.sparse.formats import CompressedMatrix, Layout


class FlexagonAccelerator(Accelerator):
    """The reconfigurable multi-dataflow design of the paper."""

    name = "Flexagon"

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        *,
        mapper: "object | None" = None,
        engine: str | None = None,
    ) -> None:
        super().__init__(config, engine=engine)
        if mapper is None:
            # Imported lazily to keep the accelerators package importable
            # without the core package (and to avoid an import cycle).
            from repro.core.mapper import HeuristicMapper

            mapper = HeuristicMapper(self.config)
        self.mapper = mapper

    @property
    def supported_dataflows(self) -> tuple[Dataflow, ...]:
        return tuple(Dataflow)

    def choose_dataflow(
        self,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        activation_layout: Layout | None = None,
        produced_layout: Layout | None = None,
    ) -> Dataflow:
        """Delegate the per-layer dataflow decision to the configured mapper."""
        return self.mapper.select(
            a, b, activation_layout=activation_layout, produced_layout=produced_layout
        )
