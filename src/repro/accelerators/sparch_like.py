"""SpArch-like baseline: a fixed Outer-Product accelerator.

Captures the essence of SpArch (Table 1 / Section 4): outer-product partial
matrix generation followed by a merger tree, with a partial-sum memory
(our PSRAM stands in for its matrix condenser + merge buffers).  On the
shared substrate this corresponds to always configuring the Outer-Product
dataflow.
"""

from __future__ import annotations

from repro.accelerators.base import Accelerator
from repro.dataflows.base import Dataflow
from repro.sparse.formats import CompressedMatrix, Layout


class SparchLikeAccelerator(Accelerator):
    """Fixed-dataflow Outer-Product (OP) design."""

    name = "SpArch-like"

    @property
    def supported_dataflows(self) -> tuple[Dataflow, ...]:
        return (Dataflow.OP_M, Dataflow.OP_N)

    def choose_dataflow(
        self,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        activation_layout: Layout | None = None,
        produced_layout: Layout | None = None,
    ) -> Dataflow:
        """Pick the stationary variant; the family is always Outer Product."""
        if produced_layout is Layout.CSC:
            return Dataflow.OP_N
        return Dataflow.OP_M
