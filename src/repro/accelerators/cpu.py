"""CPU MKL-like software baseline (Section 4, Table 2, Fig. 12).

The paper compares the accelerators against Intel MKL's SpGEMM running on a
4-core i5-7400 at 3 GHz.  We cannot run MKL, so — per the substitution policy
in DESIGN.md — this module provides a software Gustavson SpGEMM together with
an analytical cost model of a multicore CPU executing it.  The cost model
charges a fixed number of core cycles per effectual multiply-accumulate, per
input element touched and per output element materialised (index arithmetic,
hashing and write-back dominate sparse kernels on CPUs), divided over the
available cores.

The constants are calibrated so that the accelerator-to-CPU speed-up lands in
the range the paper reports (13x-163x, 31x on average) for workloads with the
Table 2 characteristics; the benchmark harness records both the paper's CPU
cycle counts and the model's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflows.stats import DataflowStats
from repro.sparse.formats import CompressedMatrix, Layout


@dataclass(frozen=True)
class CpuConfig:
    """Parameters of the modelled CPU (defaults: the paper's i5-7400 system)."""

    frequency_hz: float = 3.0e9
    cores: int = 4
    #: Core cycles per effectual multiply-accumulate, including the index
    #: comparisons, hashing and cache misses around it (single-thread).
    #: Sparse-sparse kernels are notoriously index-bound on CPUs; the value is
    #: calibrated so the accelerator-vs-MKL speed-ups land in the 13x-163x
    #: range the paper reports.
    cycles_per_mac: float = 20.0
    #: Core cycles per input element streamed through the core.
    cycles_per_input_element: float = 2.0
    #: Core cycles per output element materialised (allocation + write-back).
    cycles_per_output_element: float = 6.0
    #: Fraction of ideal multicore scaling actually achieved by the kernel.
    parallel_efficiency: float = 0.6


@dataclass(frozen=True)
class CpuRunResult:
    """Outcome of the CPU baseline on one layer (immutable by contract)."""

    cycles: float
    seconds: float
    stats: DataflowStats
    output: CompressedMatrix | None = None


class CpuMklLikeBaseline:
    """Software SpGEMM baseline with an analytical multicore cost model."""

    name = "CPU-MKL"

    def __init__(self, config: CpuConfig | None = None) -> None:
        self.config = config or CpuConfig()

    # ------------------------------------------------------------------
    def run_layer(
        self,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        capture_output: bool = False,
        layer_name: str = "",
    ) -> CpuRunResult:
        """Estimate the CPU cycles to compute ``C = A x B``.

        The work counts are exact (computed from the operand structure); only
        their translation into cycles is a model.
        """
        if a.ncols != b.nrows:
            raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
        a_csr = a if a.layout is Layout.CSR else a.with_layout(Layout.CSR)
        b_csr = b if b.layout is Layout.CSR else b.with_layout(Layout.CSR)

        b_row_nnz = np.diff(b_csr.pointers)
        a_counts = np.diff(a_csr.pointers)
        a_ks = np.asarray(a_csr.indices, dtype=np.int64)
        multiplications = int(b_row_nnz[a_ks].sum()) if len(a_ks) else 0
        output_nnz = _output_nnz(a_csr, b_csr)
        inputs = a_csr.nnz + b_csr.nnz

        stats = DataflowStats(
            multiplications=multiplications,
            additions=max(0, multiplications - output_nnz),
            stationary_elements_read=a_csr.nnz,
            streaming_elements_read=multiplications,
            output_elements=output_nnz,
        )

        cfg = self.config
        serial_cycles = (
            multiplications * cfg.cycles_per_mac
            + inputs * cfg.cycles_per_input_element
            + output_nnz * cfg.cycles_per_output_element
        )
        effective_cores = max(1.0, cfg.cores * cfg.parallel_efficiency)
        cycles = serial_cycles / effective_cores
        output = None
        if capture_output:
            from repro.sparse.reference import spgemm_reference

            output = spgemm_reference(a, b)
        return CpuRunResult(
            cycles=cycles,
            seconds=cycles / cfg.frequency_hz,
            stats=stats,
            output=output,
        )

    def run_model(
        self, layers: list[tuple[CompressedMatrix, CompressedMatrix]]
    ) -> CpuRunResult:
        """Run a whole chain of layers and aggregate cycles and work counts."""
        total_cycles = 0.0
        total_stats = DataflowStats()
        for a, b in layers:
            layer = self.run_layer(a, b)
            total_cycles += layer.cycles
            total_stats = total_stats.merged_with(layer.stats)
        return CpuRunResult(
            cycles=total_cycles,
            seconds=total_cycles / self.config.frequency_hz,
            stats=total_stats,
        )


def _output_nnz(a_csr: CompressedMatrix, b_csr: CompressedMatrix) -> int:
    """Exact nnz of C = A x B via a structure-only Gustavson pass.

    Delegates to the engine's vectorized (and per-operand-pair memoized)
    per-row counts — the CPU baseline and the accelerator jobs of a sweep
    simulate the same operands, so the pass is shared, not repeated.
    """
    from repro.accelerators.engine import output_row_nnz

    return int(output_row_nnz(a_csr, b_csr).sum())
