"""SIGMA-like baseline: a fixed Inner-Product accelerator.

Captures the essence of SIGMA (Table 1 / Section 4): a flexible reduction
network (FAN) that reduces clusters of dot products at once, intersection at
the controller, and no partial-sum memory.  On the shared substrate this
corresponds to always configuring the Inner-Product dataflow.
"""

from __future__ import annotations

from repro.accelerators.base import Accelerator
from repro.dataflows.base import Dataflow
from repro.sparse.formats import CompressedMatrix, Layout


class SigmaLikeAccelerator(Accelerator):
    """Fixed-dataflow Inner-Product (IP) design."""

    name = "SIGMA-like"

    @property
    def supported_dataflows(self) -> tuple[Dataflow, ...]:
        return (Dataflow.IP_M, Dataflow.IP_N)

    def choose_dataflow(
        self,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        activation_layout: Layout | None = None,
        produced_layout: Layout | None = None,
    ) -> Dataflow:
        """Pick the stationary variant; the family is always Inner Product.

        When the next layer needs the output in a particular layout
        (``produced_layout``), the matching variant is selected — the only
        degree of freedom a fixed-dataflow design has.
        """
        if produced_layout is Layout.CSC:
            return Dataflow.IP_N
        return Dataflow.IP_M
