"""The shared cycle-accounting SpMSpM engine.

All four hardware designs evaluated in the paper (Flexagon and the
SIGMA-like, SpArch-like and GAMMA-like baselines) are modelled with the same
64-multiplier substrate: the same distribution / multiplier / reduction
bandwidths and the same L1 sizing (Section 4, "we model the same parameters
presented in Table 5, and we only change the memory controllers to deliver
the data in the proper order according to its dataflow").  This module is
that substrate: it executes one SpMSpM layer under a given dataflow and
returns cycles (split into stationary / streaming / merging phases), on-chip
and off-chip traffic, cache miss rates and PSRAM behaviour.

Modelling approach (see DESIGN.md, "Simulation fidelity model"): the engine
walks the exact element streams each dataflow produces, drives an exact
set-associative model of the streaming cache and an occupancy model of the
PSRAM, and converts element counts into cycles with the configured bandwidth
bounds:

* the Distribution Network injects at most ``distribution_bandwidth``
  elements per cycle,
* the MRN accepts at most ``reduction_bandwidth`` elements per cycle, and
* every phase can also be bound by DRAM bandwidth (misses, spills, stationary
  fills and output writes), whichever is slower.

The per-phase time is the maximum of the compute-bound and memory-bound
terms, the standard first-order throughput model for streaming accelerators.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.arch.config import AcceleratorConfig
from repro.arch.controllers.streaming import StreamingTileReader
from repro.arch.memory.cache import StreamingCache
from repro.arch.memory.dram import DramModel
from repro.dataflows.base import DATAFLOW_PROPERTIES, Dataflow, DataflowClass
from repro.dataflows.runner import run_dataflow
from repro.dataflows.stats import DataflowStats
from repro.engine_vec import resolve_engine_backend
from repro.metrics.results import LayerSimResult, PhaseCycles, TrafficBreakdown
from repro.sparse.formats import CompressedMatrix, Layout, cached_derived


@dataclass
class _LayerContext:
    """Pre-computed views and hardware instances for one layer execution."""

    config: AcceleratorConfig
    stationary: CompressedMatrix
    streaming: CompressedMatrix
    cache: StreamingCache
    reader: StreamingTileReader
    dram: DramModel
    #: nnz of each fiber (row) of the streaming operand, indexed by K.
    streaming_fiber_nnz: np.ndarray
    #: nnz of each output row of C (union of streamed fibers per stationary row).
    c_row_nnz: np.ndarray
    stats: DataflowStats = field(default_factory=DataflowStats)
    cycles: PhaseCycles = field(default_factory=PhaseCycles)
    traffic: TrafficBreakdown = field(default_factory=TrafficBreakdown)

    @property
    def element_bytes(self) -> int:
        return self.config.element_bytes

    @functools.cached_property
    def tree_depth(self) -> int:
        return max(1, int(math.ceil(math.log2(max(2, self.config.num_multipliers)))))


class SpmspmEngine:
    """Cycle-accounting simulator of one SpMSpM layer on the shared substrate.

    Two execution backends are available (``backend``, default resolved from
    the ``REPRO_ENGINE`` environment variable, falling back to
    ``"vectorized"``):

    * ``"reference"`` — the per-batch Python walks below, the behavioural
      ground truth.
    * ``"vectorized"`` — the NumPy array kernels of :mod:`repro.engine_vec`,
      bit-equivalent to the reference (same :class:`LayerSimResult`, down to
      the floating-point cycle sums) but much faster.
    """

    def __init__(self, config: AcceleratorConfig, backend: str | None = None) -> None:
        self.config = config
        self.backend = resolve_engine_backend(backend)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run_layer(
        self,
        dataflow: Dataflow,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        capture_output: bool = False,
        layer_name: str = "",
        accelerator_name: str = "engine",
    ) -> LayerSimResult:
        """Simulate ``C = A x B`` under ``dataflow`` and return the result record."""
        if a.ncols != b.nrows:
            raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")

        if dataflow.is_n_stationary:
            mirrored = self.run_layer(
                dataflow.mirrored(),
                b.transposed(),
                a.transposed(),
                capture_output=capture_output,
                layer_name=layer_name,
                accelerator_name=accelerator_name,
            )
            output = mirrored.output
            if output is not None:
                output = output.transposed()
            return replace(mirrored, dataflow=dataflow, output=output)

        ctx = self._build_context(dataflow, a, b)
        if self.backend == "vectorized":
            from repro.engine_vec import kernels

            runner = {
                DataflowClass.INNER_PRODUCT: kernels.run_inner_product,
                DataflowClass.OUTER_PRODUCT: kernels.run_outer_product,
                DataflowClass.GUSTAVSON: kernels.run_gustavson,
            }[dataflow.dataflow_class]
            runner(self, ctx)
        else:
            runner = {
                DataflowClass.INNER_PRODUCT: self._run_inner_product,
                DataflowClass.OUTER_PRODUCT: self._run_outer_product,
                DataflowClass.GUSTAVSON: self._run_gustavson,
            }[dataflow.dataflow_class]
            runner(ctx)

        ctx.traffic.offchip_bytes = ctx.dram.traffic.total_bytes
        output = None
        if capture_output:
            output = run_dataflow(
                dataflow, a, b, num_multipliers=self.config.num_multipliers
            ).output
        return LayerSimResult(
            accelerator=accelerator_name,
            dataflow=dataflow,
            cycles=ctx.cycles,
            traffic=ctx.traffic,
            str_cache_miss_rate=ctx.cache.stats.miss_rate,
            str_cache_accesses=ctx.cache.stats.accesses,
            stats=ctx.stats,
            output=output,
            layer_name=layer_name,
            dram=ctx.dram.traffic,  # full off-chip breakdown for the benches
        )

    # ------------------------------------------------------------------
    # Context construction
    # ------------------------------------------------------------------
    def _build_context(
        self, dataflow: Dataflow, a: CompressedMatrix, b: CompressedMatrix
    ) -> _LayerContext:
        props = DATAFLOW_PROPERTIES[dataflow]
        # For the three M-stationary dataflows the stationary operand is always
        # derived from A and the streaming operand from B; what changes is the
        # layout each is viewed through (Table 3).
        stationary = a.with_layout(props.a_format)
        streaming = b.with_layout(props.b_format)

        cfg = self.config
        cache = StreamingCache(
            cfg.str_cache_bytes,
            cfg.str_cache_line_bytes,
            cfg.str_cache_associativity,
            banks=cfg.str_cache_banks,
            element_bytes=cfg.element_bytes,
        )
        dram = DramModel(cfg.dram, cfg.frequency_hz)
        reader = StreamingTileReader(streaming, cache)

        # Per-row nnz of B (indexed by K) and per-row nnz of C, computed from
        # CSR views of the original operands.  These drive multiplication
        # counts and output traffic for every dataflow.
        a_csr = a.with_layout(Layout.CSR)
        b_csr = b if b.layout is Layout.CSR else b.with_layout(Layout.CSR)
        b_row_nnz = np.diff(b_csr.pointers)
        c_row_nnz = output_row_nnz(a_csr, b_csr)

        # The streaming fiber nnz must be expressed in the streaming view's
        # own major axis (columns of B for IP, rows of B for OP/Gust).
        streaming_fiber_nnz = np.diff(streaming.pointers)

        ctx = _LayerContext(
            config=cfg,
            stationary=stationary,
            streaming=streaming,
            cache=cache,
            reader=reader,
            dram=dram,
            streaming_fiber_nnz=streaming_fiber_nnz,
            c_row_nnz=c_row_nnz,
        )
        ctx.b_row_nnz = b_row_nnz
        ctx.a_csr = a_csr
        ctx.b_csr = b_csr
        return ctx

    # ------------------------------------------------------------------
    # Inner Product (SIGMA-like behaviour)
    # ------------------------------------------------------------------
    def _run_inner_product(self, ctx: _LayerContext) -> None:
        cfg = self.config
        a_csr = ctx.a_csr
        b_row_nnz = ctx.b_row_nnz
        streaming_nnz = int(ctx.streaming.nnz)
        streaming_lines = _lines_for(streaming_nnz, ctx)
        streaming_bytes = streaming_nnz * ctx.element_bytes
        fits_in_cache = streaming_bytes <= cfg.str_cache_bytes

        batches = _pack_whole_fibers(a_csr, cfg.num_multipliers)
        first_pass = True
        for batch in batches:
            sta_elems = sum(end - start for _, start, end in batch)
            ctx.stats.stationary_iterations += 1
            ctx.stats.stationary_elements_read += sta_elems
            ctx.traffic.sta_bytes += sta_elems * ctx.element_bytes
            ctx.dram.read_stationary(sta_elems * ctx.element_bytes)
            sta_cycles = max(
                sta_elems / cfg.distribution_bandwidth,
                (sta_elems * ctx.element_bytes) / ctx.dram.bytes_per_cycle,
            )
            ctx.cycles.stationary += sta_cycles

            # The entire streaming matrix passes by once per stationary batch.
            # Re-streaming is strictly sequential, so the cache behaviour is
            # closed-form: the first pass takes only compulsory misses; later
            # passes hit everything iff the matrix fits, otherwise sequential
            # LRU thrashing misses every line again.
            if first_pass or not fits_in_cache:
                pass_misses = streaming_lines
            else:
                pass_misses = 0
            first_pass = False
            ctx.cache.stats.accesses += streaming_nnz
            ctx.cache.stats.misses += pass_misses
            ctx.cache.stats.hits += streaming_nnz - pass_misses
            miss_bytes = pass_misses * cfg.str_cache_line_bytes
            ctx.cache.stats.miss_bytes += miss_bytes
            ctx.dram.read_streaming(miss_bytes)

            ctx.stats.streaming_elements_read += streaming_nnz
            ctx.traffic.str_bytes += streaming_nnz * ctx.element_bytes

            # Effectual multiplications of this batch: every (m, k) stationary
            # element intersects nnz(B[k, :]) streamed elements in total.
            mults = 0
            rows_in_batch = 0
            output_elements_completed = 0
            for m, start, end in batch:
                ks = a_csr.indices[start:end]
                mults += int(b_row_nnz[ks].sum())
                rows_in_batch += 1
                if end == int(a_csr.pointers[m + 1]):
                    output_elements_completed += int(ctx.c_row_nnz[m])
            ctx.stats.multiplications += mults
            ctx.stats.additions += max(0, mults - output_elements_completed)
            ctx.stats.intersection_probes += streaming_nnz * rows_in_batch

            output_bytes = output_elements_completed * ctx.element_bytes
            ctx.dram.write_output(output_bytes)

            # IP is distribution-bound: every streamed element is examined
            # once per batch (and multicast to the clusters it intersects);
            # the products of one delivery are reduced spatially by the FAN /
            # MRN within the same cycle, so only the completed output sums
            # compete for the reduction-network egress bandwidth.
            compute_cycles = max(
                streaming_nnz / cfg.distribution_bandwidth,
                output_elements_completed / cfg.reduction_bandwidth,
            )
            dram_cycles = (miss_bytes + output_bytes) / ctx.dram.bytes_per_cycle
            ctx.cycles.streaming += max(compute_cycles, dram_cycles) + ctx.tree_depth

        ctx.stats.output_elements = int(ctx.c_row_nnz.sum())

    # ------------------------------------------------------------------
    # Outer Product (SpArch-like behaviour)
    # ------------------------------------------------------------------
    def _run_outer_product(self, ctx: _LayerContext) -> None:
        cfg = self.config
        a_csc = ctx.stationary  # CSC view: fibers are columns of A
        b_row_nnz = ctx.b_row_nnz
        counts = np.diff(a_csc.pointers)
        ks_all = np.repeat(np.arange(a_csc.major_dim, dtype=np.int64), counts)
        ms_all = np.asarray(a_csc.indices, dtype=np.int64)

        # Per-output-row partial fiber lengths (one partial fiber per stationary
        # scalar), used by the merging-phase model below.
        psum_rows = ms_all
        psum_lens = b_row_nnz[ks_all]

        num_elements = len(ks_all)
        for start in range(0, num_elements, cfg.num_multipliers):
            end = min(start + cfg.num_multipliers, num_elements)
            batch_ks = ks_all[start:end]
            sta_elems = end - start
            ctx.stats.stationary_iterations += 1
            ctx.stats.stationary_elements_read += sta_elems
            ctx.traffic.sta_bytes += sta_elems * ctx.element_bytes
            ctx.dram.read_stationary(sta_elems * ctx.element_bytes)
            ctx.cycles.stationary += max(
                sta_elems / cfg.distribution_bandwidth,
                (sta_elems * ctx.element_bytes) / ctx.dram.bytes_per_cycle,
            )

            distinct_ks = np.unique(batch_ks)
            streamed = 0
            misses = 0
            for k in distinct_ks:
                _, fiber_misses = _touch_streaming_fiber(ctx, int(k))
                misses += fiber_misses
                streamed += int(ctx.streaming_fiber_nnz[k])
            mults = int(b_row_nnz[batch_ks].sum())
            ctx.stats.streaming_elements_read += streamed
            ctx.traffic.str_bytes += streamed * ctx.element_bytes
            ctx.stats.multiplications += mults
            ctx.stats.psum_writes += mults
            ctx.traffic.psum_bytes += mults * ctx.element_bytes

            miss_bytes = misses * cfg.str_cache_line_bytes
            ctx.dram.read_streaming(miss_bytes)
            compute_cycles = max(
                streamed / cfg.distribution_bandwidth,
                mults / cfg.reduction_bandwidth,
            )
            dram_cycles = miss_bytes / ctx.dram.bytes_per_cycle
            ctx.cycles.streaming += max(compute_cycles, dram_cycles) + 1

        self._merge_partial_fibers(ctx, psum_rows, psum_lens)
        ctx.stats.output_elements = int(ctx.c_row_nnz.sum())

    # ------------------------------------------------------------------
    # Gustavson (GAMMA-like behaviour)
    # ------------------------------------------------------------------
    def _run_gustavson(self, ctx: _LayerContext) -> None:
        cfg = self.config
        a_csr = ctx.stationary  # CSR view: fibers are rows of A
        b_csr = ctx.streaming
        b_row_nnz = ctx.b_row_nnz
        b_indices = np.asarray(b_csr.indices)
        b_pointers = np.asarray(b_csr.pointers)

        spill_row_blocks_peak = 0
        for m in range(a_csr.major_dim):
            start = int(a_csr.pointers[m])
            end = int(a_csr.pointers[m + 1])
            if start == end:
                continue
            row_ks = np.asarray(a_csr.indices[start:end], dtype=np.int64)
            multi_chunk = len(row_ks) > cfg.num_multipliers
            chunk_output_lens: list[int] = []

            for cstart in range(0, len(row_ks), cfg.num_multipliers):
                chunk_ks = row_ks[cstart : cstart + cfg.num_multipliers]
                sta_elems = len(chunk_ks)
                ctx.stats.stationary_iterations += 1
                ctx.stats.stationary_elements_read += sta_elems
                ctx.stats.intersection_probes += sta_elems
                ctx.traffic.sta_bytes += sta_elems * ctx.element_bytes
                ctx.dram.read_stationary(sta_elems * ctx.element_bytes)
                ctx.cycles.stationary += max(
                    sta_elems / cfg.distribution_bandwidth,
                    (sta_elems * ctx.element_bytes) / ctx.dram.bytes_per_cycle,
                )

                streamed = 0
                misses = 0
                for k in chunk_ks:
                    _, fiber_misses = _touch_streaming_fiber(ctx, int(k))
                    misses += fiber_misses
                    streamed += int(b_row_nnz[k])
                mults = streamed  # every streamed element is multiplied once
                ctx.stats.streaming_elements_read += streamed
                ctx.traffic.str_bytes += streamed * ctx.element_bytes
                ctx.stats.multiplications += mults
                ctx.stats.merge_passes += 1

                if multi_chunk:
                    chunk_out = _union_length(b_indices, b_pointers, chunk_ks)
                    chunk_output_lens.append(chunk_out)
                    ctx.stats.psum_writes += chunk_out
                    ctx.traffic.psum_bytes += chunk_out * ctx.element_bytes
                    output_bytes = 0
                else:
                    output_bytes = int(ctx.c_row_nnz[m]) * ctx.element_bytes
                    ctx.dram.write_output(output_bytes)

                miss_bytes = misses * cfg.str_cache_line_bytes
                ctx.dram.read_streaming(miss_bytes)
                compute_cycles = max(
                    streamed / cfg.distribution_bandwidth,
                    mults / cfg.reduction_bandwidth,
                )
                # Gustavson's fiber gathers are irregular and demand-driven:
                # unlike the sequential streams of IP/OP they cannot be fully
                # prefetched, so each miss exposes part of the DRAM latency.
                dram_cycles = (
                    (miss_bytes + output_bytes) / ctx.dram.bytes_per_cycle
                    + misses * cfg.exposed_miss_latency_cycles
                )
                ctx.cycles.streaming += max(compute_cycles, dram_cycles) + 1

            if multi_chunk:
                # Final merge of the per-chunk partial fibers read back from
                # the PSRAM, feeding the comparator tree once more.
                total_in = int(sum(chunk_output_lens))
                ctx.stats.psum_reads += total_in
                ctx.traffic.psum_bytes += total_in * ctx.element_bytes
                ctx.stats.merge_passes += 1
                output_bytes = int(ctx.c_row_nnz[m]) * ctx.element_bytes
                ctx.dram.write_output(output_bytes)
                compute_cycles = total_in / cfg.reduction_bandwidth + ctx.tree_depth
                dram_cycles = output_bytes / ctx.dram.bytes_per_cycle
                ctx.cycles.merging += max(compute_cycles, dram_cycles)

                row_blocks = sum(
                    _blocks_for(length, ctx) for length in chunk_output_lens
                )
                spill_row_blocks_peak = max(spill_row_blocks_peak, row_blocks)
                if row_blocks > cfg.psram_blocks:
                    spill_bytes = (row_blocks - cfg.psram_blocks) * cfg.psram_block_bytes
                    ctx.dram.spill_psums(spill_bytes)
                    ctx.cycles.merging += 2 * spill_bytes / ctx.dram.bytes_per_cycle

        ctx.stats.output_elements = int(ctx.c_row_nnz.sum())

    # ------------------------------------------------------------------
    # Shared merging-phase model (Outer Product)
    # ------------------------------------------------------------------
    def _merge_partial_fibers(
        self, ctx: _LayerContext, psum_rows: np.ndarray, psum_lens: np.ndarray
    ) -> None:
        """Model the OP merging phase from the list of partial fiber lengths."""
        cfg = self.config
        if len(psum_rows) == 0:
            return

        order = np.argsort(psum_rows, kind="stable")
        rows_sorted = psum_rows[order]
        lens_sorted = psum_lens[order]
        row_starts = np.flatnonzero(
            np.concatenate(([True], rows_sorted[1:] != rows_sorted[:-1]))
        )
        row_ends = np.concatenate((row_starts[1:], [len(rows_sorted)]))

        # A merge pass must combine at least two fibers to make progress, even
        # in a degenerate single-multiplier configuration.
        leaves = max(2, cfg.num_multipliers)
        total_merge_inputs = 0
        merge_cycles = 0.0
        total_spilled_blocks = 0
        total_blocks_needed = int(
            np.ceil(lens_sorted / max(1, cfg.psram_elements_per_block)).sum()
        )
        # Per-row counts of non-empty partial fibers and total inputs; a row
        # whose fibers fit one pass (the overwhelmingly common case) needs no
        # per-row array slicing or pending-list walk.
        positive_prefix = np.concatenate(([0], np.cumsum(lens_sorted > 0)))
        length_prefix = np.concatenate(([0], np.cumsum(lens_sorted)))
        row_fibers = (positive_prefix[row_ends] - positive_prefix[row_starts]).tolist()
        row_inputs = (length_prefix[row_ends] - length_prefix[row_starts]).tolist()
        tree_depth = ctx.tree_depth
        red_bw = cfg.reduction_bandwidth
        for index, (rs, re) in enumerate(zip(row_starts, row_ends)):
            fibers = row_fibers[index]
            if fibers == 0:
                continue
            if fibers <= leaves:
                # Single pass: every partial fiber of the row merges at once.
                inputs = row_inputs[index]
                total_merge_inputs += inputs
                merge_cycles += inputs / red_bw + tree_depth
                ctx.stats.merge_passes += 1
                continue
            # Multi-pass row: the tree repeatedly folds ``leaves`` fibers into
            # one partial result that re-enters the next pass, i.e. pass 1
            # consumes ``leaves`` fibers and every later pass ``leaves - 1``
            # fresh ones plus the previous merge.  Walking prefix sums
            # reproduces the pending-list fold without per-pass list slicing.
            row = int(rows_sorted[rs])
            out_len = int(ctx.c_row_nnz[row])
            lengths = lens_sorted[rs:re]
            prefix = np.concatenate(([0], np.cumsum(lengths[lengths > 0]))).tolist()
            count = len(prefix) - 1
            inputs = prefix[leaves]
            total_merge_inputs += inputs
            merge_cycles += inputs / red_bw + tree_depth
            passes = 1
            consumed = leaves
            while consumed < count:
                merged_len = min(inputs, out_len)
                ctx.stats.psum_writes += merged_len
                ctx.traffic.psum_bytes += merged_len * ctx.element_bytes
                upto = min(consumed + leaves - 1, count)
                inputs = merged_len + prefix[upto] - prefix[consumed]
                total_merge_inputs += inputs
                merge_cycles += inputs / red_bw + tree_depth
                passes += 1
                consumed = upto
            ctx.stats.merge_passes += passes

        ctx.stats.psum_reads += total_merge_inputs
        ctx.traffic.psum_bytes += total_merge_inputs * ctx.element_bytes

        # PSRAM occupancy: all partial fibers of the layer coexist before the
        # merging phase starts; anything beyond the PSRAM capacity spills.
        if total_blocks_needed > cfg.psram_blocks:
            total_spilled_blocks = total_blocks_needed - cfg.psram_blocks
        spill_bytes = total_spilled_blocks * cfg.psram_block_bytes
        if spill_bytes:
            ctx.dram.spill_psums(spill_bytes)

        output_bytes = int(ctx.c_row_nnz.sum()) * ctx.element_bytes
        ctx.dram.write_output(output_bytes)
        dram_cycles = (2 * spill_bytes + output_bytes) / ctx.dram.bytes_per_cycle
        ctx.cycles.merging += max(merge_cycles, dram_cycles)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _pack_whole_fibers(
    matrix: CompressedMatrix, num_multipliers: int
) -> list[list[tuple[int, int, int]]]:
    """Greedy packing of whole fibers into multiplier batches.

    Returns batches as lists of ``(major_index, start, end)`` index ranges
    into the matrix storage.  Fibers longer than the array are split into
    array-sized chunks that occupy a batch alone (temporal K-tiling), matching
    :class:`repro.arch.controllers.stationary.StationaryTileReader`.
    """
    batches: list[list[tuple[int, int, int]]] = []
    current: list[tuple[int, int, int]] = []
    used = 0
    pointers = matrix.pointers.tolist()  # plain ints: cheaper per-row reads
    for major in range(matrix.major_dim):
        start, end = pointers[major], pointers[major + 1]
        nnz = end - start
        if nnz == 0:
            continue
        if nnz > num_multipliers:
            if current:
                batches.append(current)
                current, used = [], 0
            for chunk_start in range(start, end, num_multipliers):
                batches.append([(major, chunk_start, min(chunk_start + num_multipliers, end))])
            continue
        if used + nnz > num_multipliers and current:
            batches.append(current)
            current, used = [], 0
        current.append((major, start, end))
        used += nnz
    if current:
        batches.append(current)
    return batches


def output_row_nnz(a_csr: CompressedMatrix, b_csr: CompressedMatrix) -> np.ndarray:
    """Memoized :func:`_output_row_nnz` (per live operand-pair instance).

    The oracle mapper simulates the same operand pair under up to six
    dataflows (plus the final run), and the design grid shares materialized
    operands between jobs, so the structure-only output pass is the hottest
    redundant work of a sweep.
    """
    return cached_derived(
        "output_row_nnz", lambda: _output_row_nnz(a_csr, b_csr), a_csr, b_csr
    )


def _output_row_nnz(a_csr: CompressedMatrix, b_csr: CompressedMatrix) -> np.ndarray:
    """nnz of every output row of C = A x B (structure-only Gustavson pass).

    Computed with one grouped distinct-coordinate count over the CSR index
    arrays (rows of A are the groups) instead of a per-row Python union —
    the counts are exact integers either way.
    """
    from repro.engine_vec.kernels import grouped_union_counts

    a_indices = np.asarray(a_csr.indices, dtype=np.int64)
    if len(a_indices) == 0:
        return np.zeros(a_csr.nrows, dtype=np.int64)
    rows_of = np.repeat(
        np.arange(a_csr.nrows, dtype=np.int64), np.diff(a_csr.pointers)
    )
    return grouped_union_counts(
        np.asarray(b_csr.indices, dtype=np.int64),
        np.asarray(b_csr.pointers, dtype=np.int64),
        a_indices,
        rows_of,
        a_csr.nrows,
        b_csr.minor_dim,
    )


def _union_length(
    b_indices: np.ndarray, b_pointers: np.ndarray, ks: np.ndarray
) -> int:
    """Number of distinct column coordinates in the union of B rows ``ks``."""
    if len(ks) == 0:
        return 0
    from repro.engine_vec.cache_model import expand_spans

    ks = np.asarray(ks, dtype=np.int64)
    counts = b_pointers[ks + 1] - b_pointers[ks]
    if len(ks) == 1:
        return int(counts[0])
    positions, _ = expand_spans(b_pointers[ks], counts)
    return int(len(np.unique(b_indices[positions])))


def _touch_streaming_fiber(ctx: _LayerContext, fiber_index: int) -> tuple[int, int]:
    """Drive the streaming cache for one fiber read; return ``(nnz, misses)``."""
    nnz = int(ctx.streaming_fiber_nnz[fiber_index])
    if nnz == 0:
        return 0, 0
    misses = ctx.reader.touch_fiber(fiber_index)
    return nnz, misses


def _lines_for(num_elements: int, ctx: _LayerContext) -> int:
    """Number of cache lines spanned by ``num_elements`` consecutive elements."""
    if num_elements <= 0:
        return 0
    bytes_total = num_elements * ctx.element_bytes
    return int(math.ceil(bytes_total / ctx.config.str_cache_line_bytes))


def _blocks_for(num_elements: int, ctx: _LayerContext) -> int:
    """Number of PSRAM blocks needed to hold ``num_elements`` partial sums."""
    if num_elements <= 0:
        return 0
    return int(math.ceil(num_elements / ctx.config.psram_elements_per_block))
