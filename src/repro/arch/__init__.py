"""Cycle-accounting models of Flexagon's on-chip hardware components.

The subpackage contains the building blocks of Fig. 3a:

* :mod:`repro.arch.config` — the accelerator configuration (Table 5).
* :mod:`repro.arch.distribution` — the Benes-style Distribution Network.
* :mod:`repro.arch.multiplier` — the Multiplier Network (multiplier /
  forwarder modes).
* :mod:`repro.arch.mrn` — the Merger-Reduction Network (adder/comparator
  tree), including a tick-level micro-simulator.
* :mod:`repro.arch.memory` — the L1 memory organisation: stationary FIFO,
  streaming set-associative cache, PSRAM and the DRAM model.
* :mod:`repro.arch.controllers` — the unified tile filler/reader/writer
  memory controllers of Fig. 11.
"""

from repro.arch.config import AcceleratorConfig, default_config
from repro.arch.distribution import DistributionNetwork
from repro.arch.multiplier import MultiplierMode, MultiplierNetwork, MultiplierSwitch
from repro.arch.mrn import MergerReductionNetwork, NodeMode

__all__ = [
    "AcceleratorConfig",
    "default_config",
    "DistributionNetwork",
    "MultiplierMode",
    "MultiplierNetwork",
    "MultiplierSwitch",
    "MergerReductionNetwork",
    "NodeMode",
]
