"""Multiplier Network: the array of multiplier switches (Fig. 4c).

Each multiplier switch holds one stationary element in its ``Sta`` register
and operates in one of two modes:

* **Multiplier mode** — multiply the incoming streamed value by the stationary
  value and forward the product (plus the output coordinate) to the MRN.
  Used throughout IP execution and during the streaming phase of OP / Gust.
* **Forwarder mode** — pass the incoming element through unchanged, which is
  how partial sums re-enter the MRN from the PSRAM during the merging phase
  of OP / Gust.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sparse.fiber import Element


class MultiplierMode(enum.Enum):
    """Operating mode of one multiplier switch."""

    MULTIPLIER = "multiplier"
    FORWARDER = "forwarder"
    IDLE = "idle"


@dataclass
class MultiplierStats:
    """Work counters for one multiplier switch (or the whole network)."""

    multiplications: int = 0
    forwards: int = 0
    stationary_loads: int = 0


class MultiplierSwitch:
    """One multiplier switch of the Multiplier Network."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.mode = MultiplierMode.IDLE
        #: The stationary operand value kept in the ``Sta`` register.
        self.stationary_value: float | None = None
        #: Coordinate metadata associated with the stationary element (e.g. the
        #: row and k of an A element in the OP dataflow).
        self.stationary_coord: tuple[int, ...] | None = None
        self.stats = MultiplierStats()

    # ------------------------------------------------------------------
    def configure(self, mode: MultiplierMode) -> None:
        """Set the operating mode for the next phase."""
        self.mode = mode

    def load_stationary(self, value: float, coord: tuple[int, ...] | None = None) -> None:
        """Latch a stationary element (the stationary phase)."""
        self.stationary_value = float(value)
        self.stationary_coord = coord
        self.stats.stationary_loads += 1

    def clear_stationary(self) -> None:
        """Drop the stationary element (between iterations)."""
        self.stationary_value = None
        self.stationary_coord = None

    # ------------------------------------------------------------------
    def process(self, element: Element) -> Element:
        """Consume one streamed element and produce the element sent to the MRN."""
        if self.mode is MultiplierMode.MULTIPLIER:
            if self.stationary_value is None:
                raise RuntimeError(
                    f"multiplier {self.index} has no stationary value loaded"
                )
            self.stats.multiplications += 1
            return Element(element.coord, element.value * self.stationary_value)
        if self.mode is MultiplierMode.FORWARDER:
            self.stats.forwards += 1
            return element
        raise RuntimeError(f"multiplier {self.index} is idle and received data")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiplierSwitch({self.index}, {self.mode.value})"


class MultiplierNetwork:
    """The linear array of multiplier switches."""

    def __init__(self, num_multipliers: int) -> None:
        if num_multipliers < 1:
            raise ValueError("the multiplier network needs at least one switch")
        self.switches = [MultiplierSwitch(i) for i in range(num_multipliers)]

    def __len__(self) -> int:
        return len(self.switches)

    def __getitem__(self, index: int) -> MultiplierSwitch:
        return self.switches[index]

    def configure_all(self, mode: MultiplierMode) -> None:
        """Put every switch in the same mode (typical per-phase configuration)."""
        for switch in self.switches:
            switch.configure(mode)

    def load_stationary_elements(
        self, elements: list[tuple[float, tuple[int, ...]]]
    ) -> int:
        """Load up to ``len(self)`` stationary elements, returning how many fit."""
        count = min(len(elements), len(self.switches))
        for i in range(count):
            value, coord = elements[i]
            self.switches[i].load_stationary(value, coord)
        for i in range(count, len(self.switches)):
            self.switches[i].clear_stationary()
        return count

    def total_stats(self) -> MultiplierStats:
        """Aggregate the per-switch counters."""
        total = MultiplierStats()
        for switch in self.switches:
            total.multiplications += switch.stats.multiplications
            total.forwards += switch.stats.forwards
            total.stationary_loads += switch.stats.stationary_loads
        return total
