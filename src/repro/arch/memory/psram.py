"""PSRAM: the partial-sum memory structure (Section 3.4, Fig. 10).

The PSRAM stores the partial-sum fibers the OP and Gustavson dataflows
generate during the streaming phase and serves them back, fiber by fiber,
during the merging phase.  Its organisation follows the paper:

* the memory is divided into **sets indexed by output row** (so multiple rows
  can be produced in parallel),
* each set is divided into **blocks** (lines); a block holds a *valid bit*,
  a *K tag* (which k-iteration fiber the block belongs to), ``First``/``Last``
  registers marking the occupied span, and the block of elements,
* a fiber whose length exceeds one block simply continues in another free
  block of the same set tagged with the same K ("way-combining"),
* ``PartialWrite(row, k, element)`` appends an element to the fiber ``(row, k)``,
* ``Consume(row, k)`` pops the next element of that fiber (elements are read
  once and erased; a fully consumed block is invalidated), and
* multiple banks allow several fibers of the same set to be read in parallel
  during merging.

When a set runs out of free blocks the accelerator must spill to DRAM; the
model reports this through :class:`PsramStats.spilled_elements` so the
accelerator models can charge the extra off-chip traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class PsramStats:
    """Counters of PSRAM activity."""

    partial_writes: int = 0
    consumes: int = 0
    #: Elements that could not be held on chip and had to spill to DRAM.
    spilled_elements: int = 0
    #: Blocks allocated over the lifetime of the structure.
    blocks_allocated: int = 0
    #: Highest simultaneous block occupancy observed.
    peak_blocks_in_use: int = 0


@dataclass
class _Block:
    """One PSRAM block (line)."""

    valid: bool = False
    #: Output row the stored fiber belongs to (rows sharing a set must not
    #: alias into each other's blocks).
    row_tag: int = -1
    #: k-iteration the stored fiber belongs to (the paper's K register).
    k_tag: int = -1
    elements: list = field(default_factory=list)
    first: int = 0

    @property
    def last(self) -> int:
        """Index one past the newest element (the ``Last`` register)."""
        return len(self.elements)

    def is_consumed(self) -> bool:
        """True when every stored element has been read back."""
        return self.valid and self.first >= self.last


class Psram:
    """Behavioural model of the partial-sum SRAM."""

    def __init__(
        self,
        capacity_bytes: int,
        block_bytes: int,
        num_sets: int,
        banks: int = 16,
        element_bytes: int = 4,
    ) -> None:
        if capacity_bytes <= 0 or block_bytes <= 0 or num_sets <= 0:
            raise ValueError("PSRAM geometry parameters must be positive")
        if capacity_bytes % block_bytes:
            raise ValueError("capacity must be a multiple of the block size")
        total_blocks = capacity_bytes // block_bytes
        if total_blocks < num_sets:
            raise ValueError("PSRAM must have at least one block per set")
        self.capacity_bytes = capacity_bytes
        self.block_bytes = block_bytes
        self.num_sets = num_sets
        self.banks = banks
        self.element_bytes = element_bytes
        self.blocks_per_set = total_blocks // num_sets
        self.elements_per_block = block_bytes // element_bytes
        self._sets: list[list[_Block]] = [
            [_Block() for _ in range(self.blocks_per_set)] for _ in range(num_sets)
        ]
        self.stats = PsramStats()

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def set_index(self, row: int) -> int:
        """Map an output row to its PSRAM set."""
        return row % self.num_sets

    @property
    def total_blocks(self) -> int:
        """Total number of blocks across all sets."""
        return self.num_sets * self.blocks_per_set

    def blocks_in_use(self) -> int:
        """Number of currently valid blocks."""
        return sum(1 for s in self._sets for b in s if b.valid)

    def occupancy_bytes(self) -> int:
        """Bytes of live (unconsumed) partial sums."""
        return sum(
            (b.last - b.first) * self.element_bytes
            for s in self._sets
            for b in s
            if b.valid
        )

    # ------------------------------------------------------------------
    # PartialWrite
    # ------------------------------------------------------------------
    def partial_write(self, row: int, k: int, element) -> bool:
        """Append ``element`` to the partial fiber ``(row, k)``.

        Returns True when the element was stored on chip and False when the
        set had no free block and the element spilled to DRAM (the caller is
        responsible for charging that traffic).
        """
        self.stats.partial_writes += 1
        blocks = self._sets[self.set_index(row)]
        # Find the newest non-full block already holding this (row, k) fiber.
        target: _Block | None = None
        for block in blocks:
            if (
                block.valid
                and block.row_tag == row
                and block.k_tag == k
                and block.last < self.elements_per_block
            ):
                target = block
        if target is None:
            target = self._allocate_block(blocks, row, k)
        if target is None:
            self.stats.spilled_elements += 1
            return False
        target.elements.append(element)
        return True

    def _allocate_block(self, blocks: list[_Block], row: int, k: int) -> _Block | None:
        for block in blocks:
            if not block.valid:
                block.valid = True
                block.row_tag = row
                block.k_tag = k
                block.elements = []
                block.first = 0
                self.stats.blocks_allocated += 1
                self.stats.peak_blocks_in_use = max(
                    self.stats.peak_blocks_in_use, self.blocks_in_use()
                )
                return block
        return None

    # ------------------------------------------------------------------
    # Consume
    # ------------------------------------------------------------------
    def fiber_ks(self, row: int) -> list[int]:
        """The k tags currently live for ``row`` (what the merge controller scans)."""
        blocks = self._sets[self.set_index(row)]
        seen: list[int] = []
        for block in blocks:
            if (
                block.valid
                and block.row_tag == row
                and not block.is_consumed()
                and block.k_tag not in seen
            ):
                seen.append(block.k_tag)
        return seen

    def fiber_length(self, row: int, k: int) -> int:
        """Remaining unconsumed elements of fiber ``(row, k)``."""
        blocks = self._sets[self.set_index(row)]
        return sum(
            block.last - block.first
            for block in blocks
            if block.valid and block.row_tag == row and block.k_tag == k
        )

    def consume(self, row: int, k: int):
        """Read and erase the next element of fiber ``(row, k)``.

        Raises ``LookupError`` when the fiber has no unconsumed elements.
        Consuming the last element of a block clears its valid bit, freeing it
        for reuse.
        """
        blocks = self._sets[self.set_index(row)]
        for block in blocks:
            if (
                block.valid
                and block.row_tag == row
                and block.k_tag == k
                and not block.is_consumed()
            ):
                element = block.elements[block.first]
                block.first += 1
                self.stats.consumes += 1
                if block.is_consumed():
                    block.valid = False
                    block.row_tag = -1
                    block.k_tag = -1
                    block.elements = []
                    block.first = 0
                return element
        raise LookupError(f"no unconsumed elements for row {row}, k {k}")

    def consume_fiber(self, row: int, k: int) -> Iterator:
        """Yield every remaining element of fiber ``(row, k)``, consuming them."""
        while self.fiber_length(row, k):
            yield self.consume(row, k)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Invalidate every block (between tiles / layers), keeping statistics."""
        for blocks in self._sets:
            for block in blocks:
                block.valid = False
                block.row_tag = -1
                block.k_tag = -1
                block.elements = []
                block.first = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Psram({self.capacity_bytes}B, block={self.block_bytes}B, "
            f"sets={self.num_sets}, blocks/set={self.blocks_per_set})"
        )
