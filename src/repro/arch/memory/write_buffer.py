"""Output write buffer: the FIFO that hides DRAM write latency (Section 3.4).

Final output fibers leave the MRN and are written to DRAM through a small
FIFO so the datapath never stalls on individual DRAM writes.  The model
tracks how many elements and bytes flowed through it and how often it filled
up (which exposes DRAM write bandwidth to the datapath).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class WriteBufferStats:
    """Counters of write-buffer activity."""

    writes: int = 0
    drains: int = 0
    full_stalls: int = 0
    bytes_written: int = 0


class WriteBuffer:
    """A bounded FIFO between the datapath and DRAM for final outputs."""

    def __init__(self, capacity_bytes: int, element_bytes: int = 4) -> None:
        if capacity_bytes <= 0:
            raise ValueError("write buffer capacity must be positive")
        self.capacity_elements = max(1, capacity_bytes // element_bytes)
        self.element_bytes = element_bytes
        self._queue: deque = deque()
        self.stats = WriteBufferStats()

    @property
    def occupancy(self) -> int:
        """Elements currently buffered."""
        return len(self._queue)

    def is_full(self) -> bool:
        """True when a write would have to stall."""
        return len(self._queue) >= self.capacity_elements

    def write(self, element) -> bool:
        """Buffer one output element.

        Returns True when accepted immediately and False when the buffer was
        full and the datapath would have stalled for one drain; in that case
        the oldest element is drained (written to DRAM) to make room and the
        new element is then accepted.
        """
        accepted = True
        if self.is_full():
            self.stats.full_stalls += 1
            self._drain_one()
            accepted = False
        self._queue.append(element)
        self.stats.writes += 1
        return accepted

    def _drain_one(self) -> None:
        if self._queue:
            self._queue.popleft()
            self.stats.drains += 1
            self.stats.bytes_written += self.element_bytes

    def flush(self) -> int:
        """Drain everything to DRAM; return the number of elements drained."""
        drained = 0
        while self._queue:
            self._drain_one()
            drained += 1
        return drained
